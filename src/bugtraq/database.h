// database.h — an in-memory vulnerability database with query and CSV
// round-trip. Stands in for the Bugtraq list at securityfocus.com, which
// the paper chose "because its vulnerability reports are better organized
// and more amenable to automatic processing and statistical study".
//
// Storage is row-major (`records_`) plus columnar category/class/remote
// vectors grown in add(): statistics sweeps touch 1 byte-ish columns
// instead of ~200-byte records, and the histogram sweeps shard across the
// parallel runtime (runtime/parallel.h) with per-shard accumulators
// merged in index order — results are byte-identical to a serial walk at
// any thread count. Histograms are cached and invalidated on mutation.
#ifndef DFSM_BUGTRAQ_DATABASE_H
#define DFSM_BUGTRAQ_DATABASE_H

#include <array>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bugtraq/record.h"
#include "runtime/parallel.h"

namespace dfsm::bugtraq {

class Database {
 public:
  Database() = default;

  /// Copies carry the data, not the cache (it refills on first use).
  Database(const Database& other)
      : records_(other.records_),
        index_(other.index_),
        category_col_(other.category_col_),
        class_col_(other.class_col_),
        remote_col_(other.remote_col_) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      records_ = other.records_;
      index_ = other.index_;
      category_col_ = other.category_col_;
      class_col_ = other.class_col_;
      remote_col_ = other.remote_col_;
      cache_ = std::make_unique<HistCache>();
    }
    return *this;
  }
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// Adds a record. Throws std::invalid_argument on a duplicate non-zero
  /// Bugtraq ID (real IDs are unique).
  void add(VulnRecord record);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<VulnRecord>& records() const noexcept {
    return records_;
  }

  /// Columnar projections, index-parallel to records(). Hot sweeps
  /// (histograms, remote/local splits) read these instead of records_.
  [[nodiscard]] const std::vector<Category>& categories() const noexcept {
    return category_col_;
  }
  [[nodiscard]] const std::vector<VulnClass>& classes() const noexcept {
    return class_col_;
  }
  [[nodiscard]] const std::vector<unsigned char>& remote_flags() const noexcept {
    return remote_col_;
  }

  /// Lookup by Bugtraq ID (non-zero IDs only).
  [[nodiscard]] const VulnRecord* by_id(int id) const;

  /// All records matching a predicate, in insertion order. The sweep is
  /// sharded across the runtime pool; per-shard hit lists concatenate in
  /// shard order, so the result equals the serial scan exactly.
  template <typename Pred>
  [[nodiscard]] std::vector<const VulnRecord*> query(Pred&& pred) const {
    const auto& recs = records_;
    return runtime::parallel_reduce(
        recs.size(), std::vector<const VulnRecord*>{},
        [&](std::size_t begin, std::size_t end) {
          std::vector<const VulnRecord*> hits;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) hits.push_back(&recs[i]);
          }
          return hits;
        },
        [](std::vector<const VulnRecord*>& acc,
           std::vector<const VulnRecord*>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count(Pred&& pred) const {
    const auto& recs = records_;
    return runtime::parallel_reduce(
        recs.size(), std::size_t{0},
        [&](std::size_t begin, std::size_t end) {
          std::size_t n = 0;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(recs[i])) ++n;
          }
          return n;
        },
        [](std::size_t& acc, std::size_t part) { acc += part; });
  }

  /// Type-erased forms kept for existing callers; they delegate to the
  /// templated overloads above (one std::function indirection per record
  /// instead of per call site).
  [[nodiscard]] std::vector<const VulnRecord*> query(
      const std::function<bool(const VulnRecord&)>& pred) const;
  [[nodiscard]] std::size_t count(
      const std::function<bool(const VulnRecord&)>& pred) const;

  /// Histogram over categories (every category present, possibly 0).
  /// Served from the cache; a miss shards the columnar sweep across the
  /// runtime pool.
  [[nodiscard]] std::map<Category, std::size_t> count_by_category() const;

  /// Histogram over vulnerability classes (only classes with a non-zero
  /// count appear, matching the historical row-walk behavior).
  [[nodiscard]] std::map<VulnClass, std::size_t> count_by_class() const;

  /// CSV serialization: header + one line per record (activities joined
  /// with ';'). Fields containing separators are quoted.
  [[nodiscard]] std::string to_csv() const;

  /// Parses a CSV produced by to_csv. Throws std::invalid_argument on a
  /// malformed header or row.
  [[nodiscard]] static Database from_csv(const std::string& csv);

  /// Merges another database into this one (duplicate-ID rules apply).
  void merge(const Database& other);

 private:
  struct HistCache {
    std::mutex mu;
    bool valid = false;
    std::array<std::size_t, kCategoryCount> by_category{};
    std::array<std::size_t, kVulnClassCount> by_class{};
  };

  /// Fills the cache if stale; returns it locked-consistent by value
  /// semantics (callers copy the arrays under the lock).
  void ensure_histograms(std::array<std::size_t, kCategoryCount>* categories,
                         std::array<std::size_t, kVulnClassCount>* classes) const;

  std::vector<VulnRecord> records_;
  std::map<int, std::size_t> index_;  // id -> position, non-zero ids only
  std::vector<Category> category_col_;
  std::vector<VulnClass> class_col_;
  std::vector<unsigned char> remote_col_;
  mutable std::unique_ptr<HistCache> cache_ = std::make_unique<HistCache>();
};

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_DATABASE_H
