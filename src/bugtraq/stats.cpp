#include "bugtraq/stats.h"

#include <algorithm>
#include <cmath>

#include "core/table.h"
#include "runtime/parallel.h"

namespace dfsm::bugtraq {

std::vector<CategoryShare> category_breakdown(const Database& db) {
  const auto counts = db.count_by_category();
  const double total = static_cast<double>(db.size());
  std::vector<CategoryShare> out;
  for (Category c : kAllCategories) {
    CategoryShare s;
    s.category = c;
    s.count = counts.at(c);
    s.percent = total == 0 ? 0.0 : 100.0 * static_cast<double>(s.count) / total;
    s.rounded_percent = static_cast<int>(std::lround(s.percent));
    out.push_back(s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CategoryShare& a, const CategoryShare& b) {
                     return a.count > b.count;
                   });
  return out;
}

StudiedShare studied_share(const Database& db) {
  StudiedShare out;
  out.total = db.size();
  const auto by_class = db.count_by_class();
  static constexpr VulnClass kStudied[] = {
      VulnClass::kStackBufferOverflow, VulnClass::kHeapOverflow,
      VulnClass::kIntegerOverflow,     VulnClass::kFormatString,
      VulnClass::kFileRaceCondition,
  };
  for (VulnClass c : kStudied) {
    ClassShare s;
    s.vuln_class = c;
    auto it = by_class.find(c);
    s.count = it == by_class.end() ? 0 : it->second;
    s.percent = out.total == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(s.count) /
                          static_cast<double>(out.total);
    out.studied_count += s.count;
    out.classes.push_back(s);
  }
  out.percent = out.total == 0 ? 0.0
                               : 100.0 * static_cast<double>(out.studied_count) /
                                     static_cast<double>(out.total);
  return out;
}

RemoteLocalSplit remote_local_split(const Database& db) {
  // Sharded sweep over the 1-byte remote column; per-shard sums merge in
  // index order (runtime/parallel.h), identical to the serial walk.
  const auto& remote = db.remote_flags();
  RemoteLocalSplit s;
  s.remote = runtime::parallel_reduce(
      remote.size(), std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t n = 0;
        for (std::size_t i = begin; i < end; ++i) n += remote[i] != 0;
        return n;
      },
      [](std::size_t& acc, std::size_t part) { acc += part; });
  s.local = db.size() - s.remote;
  return s;
}

std::vector<YearCount> by_year(const Database& db) {
  // Served from the database's cached columnar histogram (the per-call
  // record-walk map merge this used to do is gone — ROADMAP "histogram
  // cache breadth").
  const auto counts = db.count_by_year();
  std::vector<YearCount> out;
  out.reserve(counts.size());
  for (const auto& [year, count] : counts) out.push_back({year, count});
  return out;
}

std::vector<SoftwareCount> top_software(const Database& db, std::size_t n) {
  const auto counts = db.count_by_software();
  std::vector<SoftwareCount> out;
  out.reserve(counts.size());
  for (const auto& [software, count] : counts) out.push_back({software, count});
  std::stable_sort(out.begin(), out.end(),
                   [](const SoftwareCount& a, const SoftwareCount& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.software < b.software;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string render_figure1(const Database& db) {
  core::TextTable t{{"Category", "Count", "Share", "Pie label"}};
  t.title("Figure 1: Breakdown of " + std::to_string(db.size()) +
          " Bugtraq vulnerabilities");
  for (const auto& s : category_breakdown(db)) {
    char exact[16];
    std::snprintf(exact, sizeof exact, "%.2f%%", s.percent);
    t.add_row({to_string(s.category), std::to_string(s.count), exact,
               std::to_string(s.rounded_percent) + "%"});
  }
  return t.to_string();
}

}  // namespace dfsm::bugtraq
