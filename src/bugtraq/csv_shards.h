// csv_shards.h — the on-disk sharded corpus format: a database split into
// K CSV files, each carrying the standard header plus one contiguous
// record range. Shard boundaries are the static_blocks partition of
// (record count, shard count) — a pure function of those two numbers,
// never of DFSM_THREADS — so the files a corpus serializes to are
// byte-identical on every machine. Reading concatenates shards in path
// order and parses rows on the runtime pool; the resulting database
// equals a serial read exactly at any thread count.
//
// This is the ingest path for 10^6+-record corpora (ROADMAP "corpus
// scaling"): tools/gen_corpus emits shards, benches and sweeps read them
// back through Database::add_batch in one bulk ingest.
#ifndef DFSM_BUGTRAQ_CSV_SHARDS_H
#define DFSM_BUGTRAQ_CSV_SHARDS_H

#include <cstddef>
#include <string>
#include <vector>

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

/// Canonical shard file name: "<base>-00003-of-00008.csv".
[[nodiscard]] std::string shard_path(const std::string& base, std::size_t index,
                                     std::size_t count);

/// All `count` shard paths for `base`, in shard order.
[[nodiscard]] std::vector<std::string> shard_paths(const std::string& base,
                                                   std::size_t count);

/// Writes the database as `shards` CSV files under `base` (0 is treated
/// as 1). Every file exists even when the database has fewer records
/// than shards — the tail shards are header-only. Returns the paths in
/// shard order. Throws std::runtime_error if a file cannot be written.
std::vector<std::string> write_csv_shards(const Database& db,
                                          const std::string& base,
                                          std::size_t shards);

/// Reads shard files in path order into one database (one bulk
/// add_batch). Each file must carry the standard header; header-only
/// files contribute zero records. Throws std::runtime_error on an
/// unreadable file, std::invalid_argument on malformed CSV.
[[nodiscard]] Database read_csv_shards(const std::vector<std::string>& paths);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CSV_SHARDS_H
