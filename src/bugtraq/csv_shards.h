// csv_shards.h — the on-disk sharded corpus format: a database split into
// K CSV files, each carrying the standard header plus one contiguous
// record range. Shard boundaries are the static_blocks partition of
// (record count, shard count) — a pure function of those two numbers,
// never of DFSM_THREADS — so the files a corpus serializes to are
// byte-identical on every machine. Reading concatenates shards in path
// order and parses rows on the runtime pool; the resulting database
// equals a serial read exactly at any thread count.
//
// This is the ingest path for 10^6+-record corpora (ROADMAP "corpus
// scaling"): tools/gen_corpus emits shards, benches and sweeps read them
// back through Database::add_batch in one bulk ingest.
#ifndef DFSM_BUGTRAQ_CSV_SHARDS_H
#define DFSM_BUGTRAQ_CSV_SHARDS_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

/// Canonical shard file name: "<base>-00003-of-00008.csv".
[[nodiscard]] std::string shard_path(const std::string& base, std::size_t index,
                                     std::size_t count);

/// All `count` shard paths for `base`, in shard order.
[[nodiscard]] std::vector<std::string> shard_paths(const std::string& base,
                                                   std::size_t count);

/// Writes the database as `shards` CSV files under `base` (0 is treated
/// as 1). Every file exists even when the database has fewer records
/// than shards — the tail shards are header-only. Returns the paths in
/// shard order. Throws std::runtime_error if a file cannot be written.
std::vector<std::string> write_csv_shards(const Database& db,
                                          const std::string& base,
                                          std::size_t shards);

/// Reads shard files in path order into one database (one bulk
/// add_batch). Each file must carry the standard header; header-only
/// files contribute zero records. Throws std::runtime_error on an
/// unreadable file, std::invalid_argument on malformed CSV (the message
/// carries "<shard path>:<line>: <reason>").
[[nodiscard]] Database read_csv_shards(const std::vector<std::string>& paths);

/// Knobs for the policy-aware shard reader (DESIGN.md §9).
struct IngestOptions {
  IngestPolicy policy = IngestPolicy::kStrict;

  /// Open/read attempts per shard before giving up (≥1). Transient I/O
  /// failures (NFS hiccups, torn writes) commonly clear on re-open.
  std::size_t max_attempts = 3;

  /// Backoff before retry k (1-based) is min(backoff_base_ms << (k-1),
  /// backoff_cap_ms) — bounded exponential. 0 disables sleeping (tests
  /// and fault campaigns exercise the retry loop without wall-clock
  /// cost).
  std::size_t backoff_base_ms = 0;
  std::size_t backoff_cap_ms = 100;

  /// Test/fault-injection seam: when set, attempt k (1-based) on `path`
  /// fails as if the file were unreadable whenever it returns true. The
  /// hook must be deterministic for reproducible campaigns.
  std::function<bool(const std::string& path, std::size_t attempt)> fault_hook;
};

/// Outcome of a policy-aware shard read: the (possibly partial) database
/// plus the structured ingest report.
struct ShardIngestResult {
  Database db;
  IngestReport report;
};

/// Policy-aware shard reader. Strict behaves like read_csv_shards but
/// retries transient open/read failures per IngestOptions before
/// throwing; lenient quarantines shards that stay unreadable after
/// max_attempts (and malformed rows/headers, via from_csv_parts) into
/// the report and returns the partial database. Deterministic: the
/// database bytes and the report are identical at any DFSM_THREADS.
[[nodiscard]] ShardIngestResult read_csv_shards(
    const std::vector<std::string>& paths, const IngestOptions& options);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CSV_SHARDS_H
