#include "bugtraq/csv_shards.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "runtime/parallel.h"

namespace dfsm::bugtraq {

std::string shard_path(const std::string& base, std::size_t index,
                       std::size_t count) {
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "-%05zu-of-%05zu.csv", index, count);
  return base + suffix;
}

std::vector<std::string> shard_paths(const std::string& base, std::size_t count) {
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) paths.push_back(shard_path(base, i, count));
  return paths;
}

std::vector<std::string> write_csv_shards(const Database& db,
                                          const std::string& base,
                                          std::size_t shards) {
  if (shards == 0) shards = 1;
  // The record ranges are the static partition of (size, shards): at most
  // `shards` non-empty blocks, padded with empty tail ranges so exactly
  // `shards` files always exist.
  auto blocks = runtime::static_blocks(db.size(), shards);
  while (blocks.size() < shards) blocks.push_back({db.size(), db.size()});
  // Shard bodies serialize concurrently (each one a contiguous range);
  // their contents depend only on the partition, not the thread count.
  const auto bodies = runtime::parallel_map<std::string>(
      shards, [&](std::size_t i) { return db.to_csv(blocks[i].begin, blocks[i].end); });
  const auto paths = shard_paths(base, shards);
  for (std::size_t i = 0; i < shards; ++i) {
    std::ofstream out{paths[i], std::ios::binary | std::ios::trunc};
    if (!out || !(out << bodies[i]) || !out.flush()) {
      throw std::runtime_error("cannot write corpus shard: " + paths[i]);
    }
  }
  return paths;
}

Database read_csv_shards(const std::vector<std::string>& paths) {
  std::vector<std::string> parts;
  parts.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw std::runtime_error("cannot read corpus shard: " + path);
    std::string text{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
    if (in.bad()) throw std::runtime_error("cannot read corpus shard: " + path);
    parts.push_back(std::move(text));
  }
  return Database::from_csv_parts(parts);
}

}  // namespace dfsm::bugtraq
