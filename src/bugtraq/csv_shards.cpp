#include "bugtraq/csv_shards.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "runtime/parallel.h"

namespace dfsm::bugtraq {

std::string shard_path(const std::string& base, std::size_t index,
                       std::size_t count) {
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "-%05zu-of-%05zu.csv", index, count);
  return base + suffix;
}

std::vector<std::string> shard_paths(const std::string& base, std::size_t count) {
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) paths.push_back(shard_path(base, i, count));
  return paths;
}

std::vector<std::string> write_csv_shards(const Database& db,
                                          const std::string& base,
                                          std::size_t shards) {
  if (shards == 0) shards = 1;
  // The record ranges are the static partition of (size, shards): at most
  // `shards` non-empty blocks, padded with empty tail ranges so exactly
  // `shards` files always exist.
  auto blocks = runtime::static_blocks(db.size(), shards);
  while (blocks.size() < shards) blocks.push_back({db.size(), db.size()});
  // Shard bodies serialize concurrently (each one a contiguous range);
  // their contents depend only on the partition, not the thread count.
  const auto bodies = runtime::parallel_map<std::string>(
      shards, [&](std::size_t i) { return db.to_csv(blocks[i].begin, blocks[i].end); });
  const auto paths = shard_paths(base, shards);
  for (std::size_t i = 0; i < shards; ++i) {
    std::ofstream out{paths[i], std::ios::binary | std::ios::trunc};
    if (!out || !(out << bodies[i]) || !out.flush()) {
      throw std::runtime_error("cannot write corpus shard: " + paths[i]);
    }
  }
  return paths;
}

namespace {

/// One shard's read attempt loop: up to max_attempts opens with bounded
/// exponential backoff between them. Never throws — the caller decides
/// whether a persistent failure throws (strict) or quarantines (lenient).
struct ReadOutcome {
  bool ok = false;
  std::string text;
  std::size_t attempts = 0;
  std::string reason;
};

ReadOutcome read_shard(const std::string& path, const IngestOptions& opt) {
  const std::size_t max_attempts = opt.max_attempts == 0 ? 1 : opt.max_attempts;
  ReadOutcome out;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    if (attempt > 1 && opt.backoff_base_ms != 0) {
      // Retry k (1-based) waits min(base << (k-1), cap) milliseconds.
      const std::size_t shift = attempt - 2;
      std::size_t delay = shift < 32 ? opt.backoff_base_ms << shift
                                     : opt.backoff_cap_ms;
      if (delay > opt.backoff_cap_ms) delay = opt.backoff_cap_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    if (opt.fault_hook && opt.fault_hook(path, attempt)) {
      out.reason = "cannot read corpus shard (injected fault)";
      continue;
    }
    std::ifstream in{path, std::ios::binary};
    if (!in) {
      out.reason = "cannot open corpus shard";
      continue;
    }
    std::string text{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
    if (in.bad()) {
      out.reason = "read error on corpus shard";
      continue;
    }
    out.ok = true;
    out.text = std::move(text);
    return out;
  }
  return out;
}

}  // namespace

Database read_csv_shards(const std::vector<std::string>& paths) {
  return read_csv_shards(paths, IngestOptions{}).db;
}

ShardIngestResult read_csv_shards(const std::vector<std::string>& paths,
                                  const IngestOptions& options) {
  ShardIngestResult result;
  std::vector<std::string> parts;
  std::vector<std::string> names;
  parts.reserve(paths.size());
  names.reserve(paths.size());
  std::vector<QuarantinedShard> unreadable;  // path-traversal order
  for (const auto& path : paths) {
    ReadOutcome got = read_shard(path, options);
    result.report.retries += got.attempts - 1;
    if (!got.ok) {
      if (options.policy == IngestPolicy::kStrict) {
        throw std::runtime_error(got.reason + ": " + path + " (after " +
                                 std::to_string(got.attempts) + " attempts)");
      }
      unreadable.push_back({path, got.reason, got.attempts, 0});
      continue;
    }
    parts.push_back(std::move(got.text));
    names.push_back(path);
  }
  if (options.policy == IngestPolicy::kStrict) {
    result.db = Database::from_csv_parts(parts, names, options.policy);
    result.report.ingested = result.db.size();
    return result;
  }
  IngestReport parse_report;
  result.db =
      Database::from_csv_parts(parts, names, options.policy, &parse_report);
  result.report.ingested = parse_report.ingested;
  result.report.rows = std::move(parse_report.rows);
  // Interleave unreadable-shard and bad-header quarantines back into the
  // order the paths were given (each list is already a subsequence of it).
  std::size_t io_i = 0;
  std::size_t hdr_i = 0;
  for (const auto& path : paths) {
    if (io_i < unreadable.size() && unreadable[io_i].shard == path) {
      result.report.shards.push_back(std::move(unreadable[io_i++]));
    } else if (hdr_i < parse_report.shards.size() &&
               parse_report.shards[hdr_i].shard == path) {
      result.report.shards.push_back(std::move(parse_report.shards[hdr_i++]));
    }
  }
  return result;
}

}  // namespace dfsm::bugtraq
