// category.h — the twelve Bugtraq vulnerability categories of Figure 1,
// with the definitions the paper reprints, and the vulnerability *classes*
// (root-cause families) whose ambiguity against the categories is the
// subject of Table 1.
#ifndef DFSM_BUGTRAQ_CATEGORY_H
#define DFSM_BUGTRAQ_CATEGORY_H

#include <array>
#include <optional>
#include <string>

namespace dfsm::bugtraq {

/// The 12 Bugtraq classification categories (Figure 1).
enum class Category {
  kAccessValidationError,
  kAtomicityError,
  kBoundaryConditionError,
  kConfigurationError,
  kDesignError,
  kEnvironmentError,
  kFailureToHandleExceptionalConditions,
  kInputValidationError,
  kOriginValidationError,
  kRaceConditionError,
  kSerializationError,
  kUnknown,
};

inline constexpr std::size_t kCategoryCount = 12;

inline constexpr std::array<Category, kCategoryCount> kAllCategories = {
    Category::kAccessValidationError,
    Category::kAtomicityError,
    Category::kBoundaryConditionError,
    Category::kConfigurationError,
    Category::kDesignError,
    Category::kEnvironmentError,
    Category::kFailureToHandleExceptionalConditions,
    Category::kInputValidationError,
    Category::kOriginValidationError,
    Category::kRaceConditionError,
    Category::kSerializationError,
    Category::kUnknown,
};

[[nodiscard]] const char* to_string(Category c) noexcept;

/// The Figure 1 definition text for each category ("an operation on an
/// object outside its access domain", ...).
[[nodiscard]] const char* definition(Category c) noexcept;

/// Parses the exact to_string form; nullopt otherwise.
[[nodiscard]] std::optional<Category> category_from_string(const std::string& s);

/// Root-cause vulnerability classes. The classes studied in depth by the
/// paper (stack/heap buffer overflow, integer overflow, format string,
/// file race condition) "constitute 22% of all vulnerabilities in the
/// Bugtraq database" (§1).
enum class VulnClass {
  kStackBufferOverflow,
  kHeapOverflow,
  kIntegerOverflow,
  kFormatString,
  kFileRaceCondition,
  kPathTraversal,
  kOther,
};

inline constexpr std::size_t kVulnClassCount = 7;

[[nodiscard]] const char* to_string(VulnClass c) noexcept;
[[nodiscard]] std::optional<VulnClass> vuln_class_from_string(const std::string& s);

/// True for the classes the paper studies in depth (the 22% set).
[[nodiscard]] bool is_studied_class(VulnClass c) noexcept;

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CATEGORY_H
