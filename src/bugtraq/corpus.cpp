#include "bugtraq/corpus.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/parallel.h"

namespace dfsm::bugtraq {

namespace {
constexpr std::uint64_t kSplitmixGamma = 0x9E3779B97F4A7C15ull;
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += kSplitmixGamma);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::size_t CorpusPlan::total() const {
  return input_validation + boundary_condition + design + failure_to_handle +
         access_validation + race_condition + configuration + origin_validation +
         atomicity + environment + serialization + unknown;
}

std::size_t CorpusPlan::studied_total() const {
  return stack_overflow + heap_overflow + format_string + file_race +
         integer_overflow_input + integer_overflow_boundary +
         integer_overflow_access;
}

namespace {

constexpr std::array<const char*, 16> kSoftware = {
    "Sendmail",  "Apache httpd", "wu-ftpd",    "BIND",      "OpenSSH",
    "IIS",       "ProFTPD",      "Squid",      "rpc.statd", "lpd",
    "telnetd",   "imapd",        "Null HTTPD", "GHTTPD",    "xterm",
    "rwalld",
};

/// One contiguous run of identically-shaped records in the emission order.
struct Segment {
  std::size_t count = 0;
  Category category = Category::kUnknown;
  VulnClass vuln_class = VulnClass::kOther;
  const char* noun = "";
};

/// The emission order is part of the byte-identity contract: studied
/// classes first (inside their host categories), then each category's
/// remainder as class Other, in the historical order below.
std::vector<Segment> emission_segments(const CorpusPlan& plan) {
  std::vector<Segment> segs;
  segs.reserve(19);
  auto seg = [&](std::size_t n, Category cat, VulnClass cls, const char* noun) {
    segs.push_back({n, cat, cls, noun});
  };
  seg(plan.stack_overflow, Category::kBoundaryConditionError,
      VulnClass::kStackBufferOverflow, "stack buffer overflow");
  seg(plan.heap_overflow, Category::kBoundaryConditionError,
      VulnClass::kHeapOverflow, "heap overflow");
  seg(plan.integer_overflow_boundary, Category::kBoundaryConditionError,
      VulnClass::kIntegerOverflow, "signed integer overflow");
  seg(plan.integer_overflow_input, Category::kInputValidationError,
      VulnClass::kIntegerOverflow, "signed integer overflow");
  seg(plan.integer_overflow_access, Category::kAccessValidationError,
      VulnClass::kIntegerOverflow, "signed integer overflow");
  seg(plan.format_string, Category::kInputValidationError,
      VulnClass::kFormatString, "format string");
  seg(plan.file_race, Category::kRaceConditionError,
      VulnClass::kFileRaceCondition, "file race condition");

  seg(plan.boundary_condition - plan.stack_overflow - plan.heap_overflow -
          plan.integer_overflow_boundary,
      Category::kBoundaryConditionError, VulnClass::kOther, "boundary condition");
  seg(plan.input_validation - plan.format_string - plan.integer_overflow_input,
      Category::kInputValidationError, VulnClass::kOther, "input validation");
  seg(plan.access_validation - plan.integer_overflow_access,
      Category::kAccessValidationError, VulnClass::kOther, "access validation");
  seg(plan.race_condition - plan.file_race, Category::kRaceConditionError,
      VulnClass::kOther, "race condition");
  seg(plan.design, Category::kDesignError, VulnClass::kOther, "design");
  seg(plan.failure_to_handle, Category::kFailureToHandleExceptionalConditions,
      VulnClass::kOther, "exception handling");
  seg(plan.configuration, Category::kConfigurationError, VulnClass::kOther,
      "configuration");
  seg(plan.origin_validation, Category::kOriginValidationError, VulnClass::kOther,
      "origin validation");
  seg(plan.atomicity, Category::kAtomicityError, VulnClass::kOther, "atomicity");
  seg(plan.environment, Category::kEnvironmentError, VulnClass::kOther,
      "environment");
  seg(plan.serialization, Category::kSerializationError, VulnClass::kOther,
      "serialization");
  seg(plan.unknown, Category::kUnknown, VulnClass::kOther, "unclassified");
  return segs;
}

void validate_plan_consistency(const CorpusPlan& plan) {
  if (plan.stack_overflow + plan.heap_overflow + plan.integer_overflow_boundary >
          plan.boundary_condition ||
      plan.format_string + plan.integer_overflow_input > plan.input_validation ||
      plan.integer_overflow_access > plan.access_validation ||
      plan.file_race > plan.race_condition) {
    throw std::invalid_argument("studied-class counts exceed their host categories");
  }
}

/// Record `index`'s bits: splitmix64 advances its state by a fixed gamma
/// per draw, so the i-th draw from `seed` is a pure function of
/// seed + i*gamma — the anchor that lets generation fan out over the pool
/// while staying byte-identical to a serial emit loop.
std::uint64_t record_bits(std::uint64_t seed, std::size_t index) {
  std::uint64_t state = seed + static_cast<std::uint64_t>(index) * kSplitmixGamma;
  return splitmix64(state);
}

VulnRecord make_record(std::uint64_t seed, std::size_t index, const Segment& seg) {
  VulnRecord r;
  r.id = 100000 + static_cast<int>(index);
  const std::uint64_t bits = record_bits(seed, index);
  const auto& software = kSoftware[bits % kSoftware.size()];
  r.software = software;
  r.title = std::string(software) + " " + seg.noun + " vulnerability (synthetic #" +
            std::to_string(r.id) + ")";
  r.year = 1999 + static_cast<int>((bits >> 8) % 4);  // 1999..2002
  r.remote = ((bits >> 16) & 1) != 0;
  r.category = seg.category;
  r.vuln_class = seg.vuln_class;
  r.description = std::string("Synthetic stand-in record in category '") +
                  to_string(seg.category) + "'";
  return r;
}

Database generate(std::uint64_t seed, const CorpusPlan& plan) {
  validate_plan_consistency(plan);
  const auto segs = emission_segments(plan);
  // Segment start offsets in the global emission index space.
  std::vector<std::size_t> starts;
  starts.reserve(segs.size());
  std::size_t off = 0;
  for (const auto& s : segs) {
    starts.push_back(off);
    off += s.count;
  }
  const std::size_t n = off;
  auto records = runtime::parallel_map<VulnRecord>(n, [&](std::size_t i) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), i);
    const auto& seg = segs[static_cast<std::size_t>(it - starts.begin()) - 1];
    return make_record(seed, i, seg);
  });
  Database db;
  db.add_batch(std::move(records));
  return db;
}

}  // namespace

CorpusPlan scaled_plan(std::size_t n) {
  if (n == kBugtraqSize2002) return CorpusPlan{};
  const CorpusPlan base;
  const std::array<std::size_t, kCategoryCount> defaults = {
      base.input_validation, base.boundary_condition, base.design,
      base.failure_to_handle, base.access_validation, base.race_condition,
      base.configuration,     base.origin_validation, base.atomicity,
      base.environment,       base.serialization,     base.unknown,
  };
  // Largest-remainder (Hamilton) apportionment of n seats to the Figure-1
  // fractions d_i/5925: floor quotas first, then one extra seat per
  // category in descending remainder order (ties to the earlier category).
  std::array<std::size_t, kCategoryCount> counts{};
  std::array<std::size_t, kCategoryCount> remainders{};
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const std::size_t scaled = defaults[i] * n;
    counts[i] = scaled / kBugtraqSize2002;
    remainders[i] = scaled % kBugtraqSize2002;
    assigned += counts[i];
  }
  std::array<std::size_t, kCategoryCount> order{};
  for (std::size_t i = 0; i < kCategoryCount; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] > remainders[b];
  });
  for (std::size_t k = 0; assigned < n; ++k) {
    ++counts[order[k % kCategoryCount]];
    ++assigned;
  }

  CorpusPlan p;
  p.input_validation = counts[0];
  p.boundary_condition = counts[1];
  p.design = counts[2];
  p.failure_to_handle = counts[3];
  p.access_validation = counts[4];
  p.race_condition = counts[5];
  p.configuration = counts[6];
  p.origin_validation = counts[7];
  p.atomicity = counts[8];
  p.environment = counts[9];
  p.serialization = counts[10];
  p.unknown = counts[11];

  // Studied sub-counts scale by floor: floor(a)+floor(b) <= floor(a+b)
  // and every category got at least its floor quota, so the host-category
  // constraints hold at every n.
  auto floor_scale = [&](std::size_t d) { return d * n / kBugtraqSize2002; };
  p.stack_overflow = floor_scale(base.stack_overflow);
  p.heap_overflow = floor_scale(base.heap_overflow);
  p.format_string = floor_scale(base.format_string);
  p.file_race = floor_scale(base.file_race);
  p.integer_overflow_input = floor_scale(base.integer_overflow_input);
  p.integer_overflow_boundary = floor_scale(base.integer_overflow_boundary);
  p.integer_overflow_access = floor_scale(base.integer_overflow_access);
  return p;
}

Database synthetic_corpus(std::uint64_t seed, const CorpusPlan& plan) {
  if (plan.total() != kBugtraqSize2002) {
    throw std::invalid_argument("corpus plan totals " + std::to_string(plan.total()) +
                                ", expected " + std::to_string(kBugtraqSize2002));
  }
  return generate(seed, plan);
}

Database synthetic_corpus_n(std::size_t n, std::uint64_t seed) {
  return generate(seed, scaled_plan(n));
}

}  // namespace dfsm::bugtraq
