#include "bugtraq/corpus.h"

#include <array>
#include <stdexcept>

namespace dfsm::bugtraq {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::size_t CorpusPlan::total() const {
  return input_validation + boundary_condition + design + failure_to_handle +
         access_validation + race_condition + configuration + origin_validation +
         atomicity + environment + serialization + unknown;
}

std::size_t CorpusPlan::studied_total() const {
  return stack_overflow + heap_overflow + format_string + file_race +
         integer_overflow_input + integer_overflow_boundary +
         integer_overflow_access;
}

namespace {

constexpr std::array<const char*, 16> kSoftware = {
    "Sendmail",  "Apache httpd", "wu-ftpd",    "BIND",      "OpenSSH",
    "IIS",       "ProFTPD",      "Squid",      "rpc.statd", "lpd",
    "telnetd",   "imapd",        "Null HTTPD", "GHTTPD",    "xterm",
    "rwalld",
};

struct Emitter {
  Database& db;
  std::uint64_t rng_state;
  int next_id = 100000;

  void emit(std::size_t n, Category cat, VulnClass cls, const char* noun) {
    for (std::size_t i = 0; i < n; ++i) {
      VulnRecord r;
      r.id = next_id++;
      const std::uint64_t bits = splitmix64(rng_state);
      const auto& software = kSoftware[bits % kSoftware.size()];
      r.software = software;
      r.title = std::string(software) + " " + noun + " vulnerability (synthetic #" +
                std::to_string(r.id) + ")";
      r.year = 1999 + static_cast<int>((bits >> 8) % 4);  // 1999..2002
      r.remote = ((bits >> 16) & 1) != 0;
      r.category = cat;
      r.vuln_class = cls;
      r.description = std::string("Synthetic stand-in record in category '") +
                      to_string(cat) + "'";
      db.add(std::move(r));
    }
  }
};

}  // namespace

Database synthetic_corpus(std::uint64_t seed, const CorpusPlan& plan) {
  if (plan.total() != kBugtraqSize2002) {
    throw std::invalid_argument("corpus plan totals " + std::to_string(plan.total()) +
                                ", expected " + std::to_string(kBugtraqSize2002));
  }
  if (plan.stack_overflow + plan.heap_overflow + plan.integer_overflow_boundary >
          plan.boundary_condition ||
      plan.format_string + plan.integer_overflow_input > plan.input_validation ||
      plan.integer_overflow_access > plan.access_validation ||
      plan.file_race > plan.race_condition) {
    throw std::invalid_argument("studied-class counts exceed their host categories");
  }

  Database db;
  Emitter e{db, seed, 100000};

  // Studied classes first (they sit inside their host categories).
  e.emit(plan.stack_overflow, Category::kBoundaryConditionError,
         VulnClass::kStackBufferOverflow, "stack buffer overflow");
  e.emit(plan.heap_overflow, Category::kBoundaryConditionError,
         VulnClass::kHeapOverflow, "heap overflow");
  e.emit(plan.integer_overflow_boundary, Category::kBoundaryConditionError,
         VulnClass::kIntegerOverflow, "signed integer overflow");
  e.emit(plan.integer_overflow_input, Category::kInputValidationError,
         VulnClass::kIntegerOverflow, "signed integer overflow");
  e.emit(plan.integer_overflow_access, Category::kAccessValidationError,
         VulnClass::kIntegerOverflow, "signed integer overflow");
  e.emit(plan.format_string, Category::kInputValidationError,
         VulnClass::kFormatString, "format string");
  e.emit(plan.file_race, Category::kRaceConditionError,
         VulnClass::kFileRaceCondition, "file race condition");

  // Remainder of each category as class Other.
  auto rest = [&](std::size_t category_total, std::size_t used, Category cat,
                  const char* noun) {
    e.emit(category_total - used, cat, VulnClass::kOther, noun);
  };
  rest(plan.boundary_condition,
       plan.stack_overflow + plan.heap_overflow + plan.integer_overflow_boundary,
       Category::kBoundaryConditionError, "boundary condition");
  rest(plan.input_validation, plan.format_string + plan.integer_overflow_input,
       Category::kInputValidationError, "input validation");
  rest(plan.access_validation, plan.integer_overflow_access,
       Category::kAccessValidationError, "access validation");
  rest(plan.race_condition, plan.file_race, Category::kRaceConditionError,
       "race condition");
  rest(plan.design, 0, Category::kDesignError, "design");
  rest(plan.failure_to_handle, 0, Category::kFailureToHandleExceptionalConditions,
       "exception handling");
  rest(plan.configuration, 0, Category::kConfigurationError, "configuration");
  rest(plan.origin_validation, 0, Category::kOriginValidationError,
       "origin validation");
  rest(plan.atomicity, 0, Category::kAtomicityError, "atomicity");
  rest(plan.environment, 0, Category::kEnvironmentError, "environment");
  rest(plan.serialization, 0, Category::kSerializationError, "serialization");
  rest(plan.unknown, 0, Category::kUnknown, "unclassified");

  return db;
}

}  // namespace dfsm::bugtraq
