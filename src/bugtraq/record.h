// record.h — one Bugtraq vulnerability report, with the fields the paper's
// analysis consumes: "version number of the vulnerable software, date of
// discovery, an assigned vulnerability ID, cause of the vulnerability, and
// possible exploits" (§3.1), plus the elementary-activity annotation the
// Table 1 analysis derives from in-depth report reading.
#ifndef DFSM_BUGTRAQ_RECORD_H
#define DFSM_BUGTRAQ_RECORD_H

#include <string>
#include <vector>

#include "bugtraq/category.h"

namespace dfsm::bugtraq {

/// The elementary activities observed across the studied vulnerability
/// classes (paper §3.2, Observation 1).
enum class ElementaryActivity {
  kGetInput,             ///< get an input integer / input string / filename
  kUseAsArrayIndex,      ///< use the integer as the index to an array
  kCopyToBuffer,         ///< copy the string to a buffer
  kHandleFollowingData,  ///< handle data (e.g. return address) following the buffer
  kExecuteViaPointer,    ///< execute code referred to by a function pointer / ret addr
  kCheckPermission,      ///< check the caller's permission on an object
  kOpenFile,             ///< open a file by (possibly re-bindable) name
  kDecodeName,           ///< decode an encoded filename / request
  kWriteToFile,          ///< write a message to a named file
  kFreeBuffer,           ///< free a heap buffer (unlink of chunk links)
};

[[nodiscard]] const char* to_string(ElementaryActivity a) noexcept;

/// One vulnerability report.
struct VulnRecord {
  int id = 0;                 ///< Bugtraq ID (0 = advisory without one)
  std::string title;
  std::string software;
  int year = 2002;
  bool remote = false;        ///< remotely exploitable vs local-user
  Category category = Category::kUnknown;
  VulnClass vuln_class = VulnClass::kOther;
  std::string description;
  /// In-depth analysis annotation: the chain of elementary activities an
  /// exploit passes through (empty for bulk synthetic records).
  std::vector<ElementaryActivity> activities;
  /// Which activity the original analyst used as the reference point when
  /// assigning `category` (index into `activities`; -1 = unknown).
  int reference_activity = -1;

  [[nodiscard]] bool studied() const { return is_studied_class(vuln_class); }
};

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_RECORD_H
