// curated.h — the concrete vulnerability reports the paper cites, with
// their real Bugtraq IDs, titles, category assignments and the
// elementary-activity chains the in-depth analysis (paper §3.2, Table 1,
// §4-§5) attributes to them.
#ifndef DFSM_BUGTRAQ_CURATED_H
#define DFSM_BUGTRAQ_CURATED_H

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

/// All paper-cited reports: #3163, #5493, #3958 (Table 1); #6157, #5960,
/// #4479 (buffer-overflow activity chain); #1387, #2210, #2264, #1480
/// (format string); #5774, #6255 (NULL HTTPD); #2708 (IIS); plus the
/// xterm log-file race and Solaris rwall advisories (CERT CA-1994-06 era,
/// no Bugtraq IDs — stored with id 0).
[[nodiscard]] Database curated_records();

/// The three Table 1 rows in order: #3163, #5493, #3958.
[[nodiscard]] std::vector<VulnRecord> table1_records();

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CURATED_H
