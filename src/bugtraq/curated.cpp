#include "bugtraq/curated.h"

namespace dfsm::bugtraq {

namespace {

using EA = ElementaryActivity;

VulnRecord make(int id, std::string title, std::string software, int year,
                bool remote, Category cat, VulnClass cls, std::string desc,
                std::vector<EA> activities, int reference_activity) {
  VulnRecord r;
  r.id = id;
  r.title = std::move(title);
  r.software = std::move(software);
  r.year = year;
  r.remote = remote;
  r.category = cat;
  r.vuln_class = cls;
  r.description = std::move(desc);
  r.activities = std::move(activities);
  r.reference_activity = reference_activity;
  return r;
}

}  // namespace

std::vector<VulnRecord> table1_records() {
  // The three signed-integer-overflow reports of Table 1: the same root
  // cause, classified three different ways depending on which elementary
  // activity the analyst used as the reference point.
  return {
      make(3163, "Sendmail Debugging Function Signed Integer Overflow",
           "Sendmail", 2001, false, Category::kInputValidationError,
           VulnClass::kIntegerOverflow,
           "A negative input integer accepted as an array index",
           {EA::kGetInput, EA::kUseAsArrayIndex, EA::kExecuteViaPointer},
           /*reference_activity=*/0),
      make(5493, "FreeBSD System Call Signed Integer Buffer Overflow",
           "FreeBSD", 2002, false, Category::kBoundaryConditionError,
           VulnClass::kIntegerOverflow,
           "A negative value supplied for the argument allowing exceeding the "
           "boundary of an array",
           {EA::kGetInput, EA::kUseAsArrayIndex, EA::kExecuteViaPointer},
           /*reference_activity=*/1),
      make(3958, "rsync Signed Array Index Remote Code Execution",
           "rsync", 2002, true, Category::kAccessValidationError,
           VulnClass::kIntegerOverflow,
           "A remotely supplied signed value used as an array index, allowing "
           "the corruption of a function pointer or a return address",
           {EA::kGetInput, EA::kUseAsArrayIndex, EA::kExecuteViaPointer},
           /*reference_activity=*/2),
  };
}

Database curated_records() {
  Database db;
  for (auto& r : table1_records()) db.add(r);

  // Buffer-overflow activity chain (§3.2): three reports, three different
  // reference activities for the same class.
  db.add(make(6157, "Buffer overflow interpreted as input validation error",
              "Multiple", 2002, true, Category::kInputValidationError,
              VulnClass::kStackBufferOverflow,
              "Get input string (elementary activity 1)",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kHandleFollowingData}, 0));
  db.add(make(5960, "GHTTPD Log() Function Buffer Overflow", "GHTTPD", 2002,
              true, Category::kBoundaryConditionError,
              VulnClass::kStackBufferOverflow,
              "Copy the string to a buffer (elementary activity 2); return "
              "address smashed via vsprintf into a 200-byte stack buffer",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kExecuteViaPointer}, 1));
  db.add(make(4479, "Buffer overflow interpreted as failure to handle "
                    "exceptional conditions",
              "Multiple", 2002, true,
              Category::kFailureToHandleExceptionalConditions,
              VulnClass::kStackBufferOverflow,
              "Handle data (e.g., return address) following the buffer "
              "(elementary activity 3)",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kHandleFollowingData}, 2));

  // Format-string family (§3.2).
  db.add(make(1387, "wu-ftpd Remote Format String Stack Overwrite", "wu-ftpd",
              2000, true, Category::kInputValidationError,
              VulnClass::kFormatString,
              "User input string containing format directives reaches *printf",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kExecuteViaPointer}, 0));
  db.add(make(2210, "splitvt Format String Vulnerability", "splitvt", 2001,
              false, Category::kAccessValidationError, VulnClass::kFormatString,
              "Format directives in input lead to arbitrary write",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kExecuteViaPointer}, 2));
  db.add(make(2264, "icecast print_client() Format String Vulnerability",
              "icecast", 2001, true, Category::kBoundaryConditionError,
              VulnClass::kFormatString,
              "Format directives expand past the output buffer",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kExecuteViaPointer}, 1));
  db.add(make(1480, "Multiple Linux Vendor rpc.statd Remote Format String",
              "rpc.statd", 2000, true, Category::kInputValidationError,
              VulnClass::kFormatString,
              "User-controlled filename passed to syslog() as the format "
              "string; %n overwrites the return address",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kExecuteViaPointer}, 0));

  // NULL HTTPD heap overflows (Figure 4).
  db.add(make(5774, "Null HTTPD Remote Heap Overflow", "Null HTTPD", 2002,
              true, Category::kBoundaryConditionError, VulnClass::kHeapOverflow,
              "Negative Content-Length undersizes the calloc'd POST buffer; "
              "overflow corrupts free-chunk fd/bk links; unlink on free() "
              "overwrites the GOT entry of free() with the Mcode address",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kFreeBuffer,
               EA::kExecuteViaPointer}, 1));
  db.add(make(6255, "Null HTTPD ReadPOSTData Heap Overflow (discovered while "
                    "constructing the FSM model)",
              "Null HTTPD", 2002, true, Category::kBoundaryConditionError,
              VulnClass::kHeapOverflow,
              "Logic error in the recv loop termination condition ('||' "
              "instead of '&&'): recv never terminates before the entire "
              "input is read, so a correct contentLen with an oversized body "
              "still overflows PostData",
              {EA::kGetInput, EA::kCopyToBuffer, EA::kFreeBuffer,
               EA::kExecuteViaPointer}, 1));

  // IIS superfluous decoding (Figure 7).
  db.add(make(2708, "Microsoft IIS CGI Filename Superfluous Decoding",
              "IIS", 2001, true, Category::kInputValidationError,
              VulnClass::kPathTraversal,
              "'..%252f' passes the traversal check applied after the first "
              "decode; the second decode turns it into '../' (exploited by "
              "the Nimda worm)",
              {EA::kGetInput, EA::kDecodeName, EA::kDecodeName}, 1));

  // Pre-Bugtraq advisories modeled in Figures 5 and 6 (id 0).
  db.add(make(0, "xterm Log File Symlink Race Condition", "xterm", 1993,
              false, Category::kRaceConditionError, VulnClass::kFileRaceCondition,
              "Time-of-check-to-time-of-use window between the log-file "
              "permission check and the open; a symlink planted in the window "
              "redirects root's write to /etc/passwd",
              {EA::kCheckPermission, EA::kOpenFile, EA::kWriteToFile}, 1));
  db.add(make(0, "Solaris rwall Arbitrary File Corruption (CERT CA-1994-06)",
              "rwalld", 1994, true, Category::kAccessValidationError,
              VulnClass::kOther,
              "World-writable /etc/utmp lets any user add '../etc/passwd'; "
              "rwalld writes user messages to it without checking the target "
              "is a terminal",
              {EA::kCheckPermission, EA::kGetInput, EA::kWriteToFile}, 0));
  return db;
}

}  // namespace dfsm::bugtraq
