#include "bugtraq/colsnap.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/fingerprint.h"
#include "runtime/parallel.h"

namespace dfsm::bugtraq {

namespace {

constexpr char kMagic[8] = {'D', 'F', 'S', 'M', 'C', 'S', 'N', 'P'};

/// The fixed column order. The loader requires exactly this sequence,
/// which pins the byte layout and lets every defect be attributed to a
/// named column.
constexpr const char* kColumns[] = {
    "software_table", "id",        "year",
    "remote",         "category",  "class",
    "software",       "reference_activity",
    "title",          "description", "activities",
};
constexpr std::size_t kColumnCount = sizeof(kColumns) / sizeof(kColumns[0]);

constexpr std::size_t kActivityCodeCount =
    static_cast<std::size_t>(ElementaryActivity::kFreeBuffer) + 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) {
    out.push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
  }
}

void put_i32(std::string& out, int v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint64_t checksum_of(std::string_view payload) {
  // Striped FNV-1a: column payloads run to tens of MB at 10^6 records,
  // and the single-chain mix() would serialize one multiply per byte —
  // the checksum, not the parse, would dominate reload.
  core::Fingerprinter f;
  f.mix_striped(payload);
  return f.digest();
}

void append_block(std::string& out, std::string_view name,
                  const std::string& payload) {
  put_u32(out, static_cast<std::uint32_t>(name.size()));
  out.append(name);
  put_u64(out, payload.size());
  put_u64(out, checksum_of(payload));
  out.append(payload);
}

/// Bounds-checked little-endian reader over one shard's bytes. Every
/// failure throws "<file>:<column>: <reason>" — `column` is whatever
/// the caller says is being decoded ("header", a column name, or
/// "trailer").
struct Cursor {
  const std::string& bytes;
  const std::string& file;
  std::size_t pos = 0;
  std::string column = "header";

  [[noreturn]] void fail(const std::string& reason) const {
    throw std::invalid_argument(file + ":" + column + ": " + reason);
  }

  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }

  void need(std::size_t n, const char* what) {
    if (remaining() < n) {
      fail(std::string("truncated ") + what + " (need " + std::to_string(n) +
           " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int k = 3; k >= 0; --k) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(k)]);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int k = 7; k >= 0; --k) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(k)]);
    }
    pos += 8;
    return v;
  }

  int i32(const char* what) { return static_cast<int>(u32(what)); }

  std::string_view raw(std::size_t n, const char* what) {
    need(n, what);
    std::string_view v{bytes.data() + pos, n};
    pos += n;
    return v;
  }
};

/// Little-endian u32 at `p` — written as explicit byte assembly (the
/// compiler load-combines it) so the bulk column loops stay
/// endian-correct without per-element Cursor bounds checks.
inline std::uint32_t le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Phase-one output per shard: the parsed header, the shard-LOCAL
/// software name table, and the byte position of the first record
/// column. Phase two decodes the record columns of every shard straight
/// into its slice of the merged bulk columns — no per-shard staging
/// vectors, no post-hoc merge pass.
struct ShardPrelude {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t records = 0;
  std::uint64_t total = 0;
  std::uint64_t epoch = 0;
  std::vector<std::string> software_names;
  std::size_t body_pos = 0;  ///< first record-column block
};

/// Reads one column block, verifying name, framing, and checksum.
/// Returns the payload bytes.
std::string_view read_block(Cursor& cur, const char* expect) {
  cur.column = expect;
  const std::uint32_t name_len = cur.u32("block header");
  if (name_len > 64 || name_len > cur.remaining()) {
    cur.fail("bad column name length " + std::to_string(name_len));
  }
  const std::string_view name = cur.raw(name_len, "column name");
  if (name != expect) {
    cur.fail("unexpected column '" + std::string(name) + "'");
  }
  const std::uint64_t payload_len = cur.u64("block header");
  const std::uint64_t stored = cur.u64("block header");
  if (payload_len > cur.remaining()) {
    cur.fail("truncated column block (need " + std::to_string(payload_len) +
             " bytes, have " + std::to_string(cur.remaining()) + ")");
  }
  const std::string_view payload =
      cur.raw(static_cast<std::size_t>(payload_len), "column payload");
  const std::uint64_t computed = checksum_of(payload);
  if (computed != stored) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "stored %016llx, computed %016llx",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(computed));
    cur.fail(std::string("checksum mismatch (") + buf + ")");
  }
  return payload;
}

ShardPrelude decode_prelude(const std::string& bytes, const std::string& file) {
  Cursor cur{bytes, file};
  cur.need(kColsnapHeaderSize, "header");
  if (std::string_view(bytes.data(), 8) != std::string_view(kMagic, 8)) {
    cur.fail("bad magic (not a corpus snapshot)");
  }
  cur.pos = 8;
  const std::uint32_t version = cur.u32("header");
  if (version != kColsnapVersion) {
    cur.fail("unsupported snapshot version " + std::to_string(version));
  }
  ShardPrelude pre;
  pre.shard_index = cur.u32("header");
  pre.shard_count = cur.u32("header");
  (void)cur.u32("header");  // reserved
  pre.records = cur.u64("header");
  pre.total = cur.u64("header");
  pre.epoch = cur.u64("header");

  // software_table: u32 count, then u32 len + bytes per name.
  {
    std::string_view p = read_block(cur, "software_table");
    Cursor pc{bytes, file, static_cast<std::size_t>(p.data() - bytes.data()),
              "software_table"};
    const std::size_t limit = pc.pos + p.size();
    const std::uint32_t count = pc.u32("software table");
    pre.software_names.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (pc.pos >= limit) pc.fail("truncated software table");
      const std::uint32_t len = pc.u32("software table");
      if (pc.pos + len > limit) pc.fail("truncated software table entry");
      pre.software_names.emplace_back(pc.raw(len, "software name"));
    }
    if (pc.pos != limit) {
      pc.fail("software table has " +
              std::to_string(limit - pc.pos) + " trailing bytes");
    }
  }
  pre.body_pos = cur.pos;
  return pre;
}

/// Decodes one shard's record columns into rows [off, off + records) of
/// the merged bulk columns. `remap` carries shard-local software ids to
/// global ids; `all` is pre-sized, and shards write disjoint slices, so
/// this runs concurrently across shards with no shared mutable state.
void decode_columns_into(const std::string& bytes, const std::string& file,
                         const ShardPrelude& pre,
                         const std::vector<std::uint32_t>& remap,
                         Database::BulkColumns& all, std::size_t off) {
  const std::size_t n = static_cast<std::size_t>(pre.records);
  Cursor cur{bytes, file, pre.body_pos};
  VulnRecord* recs = all.records.data() + off;

  const auto fixed_column = [&](const char* name, std::size_t elem) {
    std::string_view p = read_block(cur, name);
    if (p.size() != n * elem) {
      cur.fail("payload length " + std::to_string(p.size()) + " != " +
               std::to_string(elem) + " x " + std::to_string(n) + " records");
    }
    return reinterpret_cast<const unsigned char*>(p.data());
  };

  // id / year: n x i32.
  {
    const unsigned char* b = fixed_column("id", 4);
    for (std::size_t i = 0; i < n; ++i) {
      recs[i].id = static_cast<int>(le32(b + 4 * i));
    }
  }
  {
    const unsigned char* b = fixed_column("year", 4);
    int* years = all.years.data() + off;
    for (std::size_t i = 0; i < n; ++i) {
      years[i] = static_cast<int>(le32(b + 4 * i));
      recs[i].year = years[i];
    }
  }
  // remote / category / class: n x u8 with range checks.
  {
    const unsigned char* b = fixed_column("remote", 1);
    unsigned char* rm = all.remote.data() + off;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char v = b[i];
      if (v > 1) {
        cur.column = "remote";
        cur.fail("bad remote flag " + std::to_string(v) + " at record " +
                 std::to_string(i));
      }
      rm[i] = v;
      recs[i].remote = v != 0;
    }
  }
  {
    const unsigned char* b = fixed_column("category", 1);
    Category* cats = all.categories.data() + off;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char v = b[i];
      if (v >= kCategoryCount) {
        cur.column = "category";
        cur.fail("bad category code " + std::to_string(v) + " at record " +
                 std::to_string(i));
      }
      cats[i] = static_cast<Category>(v);
      recs[i].category = cats[i];
    }
  }
  {
    const unsigned char* b = fixed_column("class", 1);
    VulnClass* clss = all.classes.data() + off;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char v = b[i];
      if (v >= kVulnClassCount) {
        cur.column = "class";
        cur.fail("bad class code " + std::to_string(v) + " at record " +
                 std::to_string(i));
      }
      clss[i] = static_cast<VulnClass>(v);
      recs[i].vuln_class = clss[i];
    }
  }
  // software: n x u32 local ids, remapped to the global table.
  {
    const unsigned char* b = fixed_column("software", 4);
    std::uint32_t* sw = all.software.data() + off;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t sid = le32(b + 4 * i);
      if (sid >= remap.size()) {
        cur.column = "software";
        cur.fail("software id " + std::to_string(sid) + " out of range (" +
                 std::to_string(remap.size()) + " names) at record " +
                 std::to_string(i));
      }
      sw[i] = remap[sid];
      recs[i].software = all.software_names[sw[i]];
    }
  }
  {
    const unsigned char* b = fixed_column("reference_activity", 4);
    for (std::size_t i = 0; i < n; ++i) {
      recs[i].reference_activity = static_cast<int>(le32(b + 4 * i));
    }
  }
  // title / description: n x u32 sizes, then the concatenated blob. The
  // size sum is validated against the payload up front, so the assign
  // pass can walk a raw pointer.
  const auto string_column = [&](const char* name, auto assign) {
    std::string_view p = read_block(cur, name);
    Cursor pc{bytes, file, static_cast<std::size_t>(p.data() - bytes.data()),
              name};
    if (p.size() < 4 * n) {
      pc.fail("payload too short for " + std::to_string(n) + " size entries");
    }
    const auto* b = reinterpret_cast<const unsigned char*>(p.data());
    std::uint64_t blob = 0;
    for (std::size_t i = 0; i < n; ++i) blob += le32(b + 4 * i);
    if (4 * n + blob != p.size()) {
      pc.pos += 4 * n;
      pc.fail("string sizes sum to " + std::to_string(blob) + " but blob has " +
              std::to_string(p.size() - 4 * n) + " bytes");
    }
    const char* s = p.data() + 4 * n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t len = le32(b + 4 * i);
      assign(i, std::string_view{s, len});
      s += len;
    }
  };
  string_column("title", [&](std::size_t i, std::string_view s) {
    recs[i].title.assign(s);
  });
  string_column("description", [&](std::size_t i, std::string_view s) {
    recs[i].description.assign(s);
  });
  // activities: n x u16 counts, then one u8 code per activity.
  {
    std::string_view p = read_block(cur, "activities");
    Cursor pc{bytes, file, static_cast<std::size_t>(p.data() - bytes.data()),
              "activities"};
    const std::size_t limit = pc.pos + p.size();
    if (p.size() < 2 * n) {
      pc.fail("payload too short for " + std::to_string(n) + " count entries");
    }
    std::uint64_t codes = 0;
    const auto* b = reinterpret_cast<const unsigned char*>(p.data());
    for (std::size_t i = 0; i < n; ++i) {
      codes += static_cast<std::uint16_t>(b[2 * i] | (b[2 * i + 1] << 8));
    }
    pc.pos += 2 * n;
    if (pc.pos + codes != limit) {
      pc.fail("activity counts sum to " + std::to_string(codes) +
              " but code blob has " + std::to_string(limit - pc.pos) + " bytes");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto count = static_cast<std::uint16_t>(b[2 * i] | (b[2 * i + 1] << 8));
      auto& acts = recs[i].activities;
      acts.reserve(count);
      for (std::uint16_t k = 0; k < count; ++k) {
        const unsigned char code = static_cast<unsigned char>(bytes[pc.pos++]);
        if (code >= kActivityCodeCount) {
          pc.fail("bad activity code " + std::to_string(code) + " at record " +
                  std::to_string(i));
        }
        acts.push_back(static_cast<ElementaryActivity>(code));
      }
    }
  }

  if (cur.pos != bytes.size()) {
    cur.column = "trailer";
    cur.fail(std::to_string(bytes.size() - cur.pos) + " trailing bytes");
  }
}

}  // namespace

std::string colsnap_shard_path(const std::string& base, std::size_t index,
                               std::size_t count) {
  char suffix[64];
  std::snprintf(suffix, sizeof suffix, "-%05zu-of-%05zu.colsnap", index, count);
  return base + suffix;
}

std::vector<std::string> colsnap_shard_paths(const std::string& base,
                                             std::size_t count) {
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    paths.push_back(colsnap_shard_path(base, i, count));
  }
  return paths;
}

std::string encode_colsnap_shard(const CorpusSnapshot& snap, std::size_t index,
                                 std::size_t count) {
  if (count == 0) count = 1;
  if (index >= count) {
    throw std::invalid_argument("encode_colsnap_shard: shard " +
                                std::to_string(index) + " of " +
                                std::to_string(count));
  }
  auto blocks = runtime::static_blocks(snap.size(), count);
  while (blocks.size() < count) blocks.push_back({snap.size(), snap.size()});
  const std::size_t begin = blocks[index].begin;
  const std::size_t end = blocks[index].end;
  const std::size_t n = end - begin;

  const auto recs = snap.records();
  const auto soft = snap.software_ids();

  // Shard-local software interning: global ids remap to dense local ids
  // in first-use order, so each shard is self-contained (share-nothing
  // encode) and small shards carry small tables.
  constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> remap(snap.software_count(), kUnmapped);
  std::vector<std::uint32_t> local_ids(n);
  std::vector<std::uint32_t> local_names;  // local id -> global id
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t gid = soft[begin + i];
    if (remap[gid] == kUnmapped) {
      remap[gid] = static_cast<std::uint32_t>(local_names.size());
      local_names.push_back(gid);
    }
    local_ids[i] = remap[gid];
  }

  std::string out;
  out.reserve(kColsnapHeaderSize + 64 * n);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kColsnapVersion);
  put_u32(out, static_cast<std::uint32_t>(index));
  put_u32(out, static_cast<std::uint32_t>(count));
  put_u32(out, 0);  // reserved
  put_u64(out, n);
  put_u64(out, snap.size());
  put_u64(out, snap.epoch());

  std::string payload;
  // software_table
  put_u32(payload, static_cast<std::uint32_t>(local_names.size()));
  for (const std::uint32_t gid : local_names) {
    const std::string& name = snap.software_name(gid);
    put_u32(payload, static_cast<std::uint32_t>(name.size()));
    payload.append(name);
  }
  append_block(out, "software_table", payload);
  // id
  payload.clear();
  for (std::size_t i = 0; i < n; ++i) put_i32(payload, recs[begin + i].id);
  append_block(out, "id", payload);
  // year
  payload.clear();
  for (std::size_t i = 0; i < n; ++i) put_i32(payload, recs[begin + i].year);
  append_block(out, "year", payload);
  // remote
  payload.clear();
  const auto rem = snap.remote_flags();
  payload.assign(reinterpret_cast<const char*>(rem.data() + begin), n);
  append_block(out, "remote", payload);
  // category
  payload.clear();
  const auto cats = snap.categories();
  for (std::size_t i = 0; i < n; ++i) {
    payload.push_back(static_cast<char>(cats[begin + i]));
  }
  append_block(out, "category", payload);
  // class
  payload.clear();
  const auto clss = snap.classes();
  for (std::size_t i = 0; i < n; ++i) {
    payload.push_back(static_cast<char>(clss[begin + i]));
  }
  append_block(out, "class", payload);
  // software (local ids)
  payload.clear();
  for (std::size_t i = 0; i < n; ++i) put_u32(payload, local_ids[i]);
  append_block(out, "software", payload);
  // reference_activity
  payload.clear();
  for (std::size_t i = 0; i < n; ++i) {
    put_i32(payload, recs[begin + i].reference_activity);
  }
  append_block(out, "reference_activity", payload);
  // title / description: sizes then blob.
  const auto string_column = [&](auto field) {
    payload.clear();
    for (std::size_t i = 0; i < n; ++i) {
      put_u32(payload,
              static_cast<std::uint32_t>(field(recs[begin + i]).size()));
    }
    for (std::size_t i = 0; i < n; ++i) payload.append(field(recs[begin + i]));
  };
  string_column([](const VulnRecord& r) -> const std::string& { return r.title; });
  append_block(out, "title", payload);
  string_column(
      [](const VulnRecord& r) -> const std::string& { return r.description; });
  append_block(out, "description", payload);
  // activities: u16 counts then u8 codes.
  payload.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t count_i = recs[begin + i].activities.size();
    if (count_i > std::numeric_limits<std::uint16_t>::max()) {
      throw std::invalid_argument(
          "encode_colsnap_shard: record has too many activities");
    }
    payload.push_back(static_cast<char>(count_i & 0xFF));
    payload.push_back(static_cast<char>((count_i >> 8) & 0xFF));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const ElementaryActivity a : recs[begin + i].activities) {
      payload.push_back(static_cast<char>(static_cast<int>(a)));
    }
  }
  append_block(out, "activities", payload);

  return out;
}

std::vector<std::string> encode_colsnap_shards(const CorpusSnapshot& snap,
                                               std::size_t count) {
  if (count == 0) count = 1;
  return runtime::parallel_map<std::string>(count, [&](std::size_t i) {
    return encode_colsnap_shard(snap, i, count);
  });
}

std::vector<std::string> write_colsnap_shards(const Database& db,
                                              const std::string& base,
                                              std::size_t shards) {
  if (shards == 0) shards = 1;
  const CorpusSnapshotPtr snap = db.snapshot();
  const auto bodies = encode_colsnap_shards(*snap, shards);
  const auto paths = colsnap_shard_paths(base, shards);
  for (std::size_t i = 0; i < shards; ++i) {
    std::ofstream out{paths[i], std::ios::binary | std::ios::trunc};
    if (!out || !(out << bodies[i]) || !out.flush()) {
      throw std::runtime_error("cannot write corpus snapshot shard: " +
                               paths[i]);
    }
  }
  return paths;
}

Database decode_colsnap_shards(const std::vector<std::string>& contents,
                               const std::vector<std::string>& names) {
  if (contents.size() != names.size()) {
    throw std::invalid_argument("decode_colsnap_shards: " +
                                std::to_string(contents.size()) +
                                " shards but " + std::to_string(names.size()) +
                                " names");
  }
  if (contents.empty()) {
    throw std::invalid_argument("decode_colsnap_shards: no shards");
  }

  // Phase one (serial, cheap): headers and shard-local software tables.
  // Cross-shard consistency — one snapshot, one epoch, one total, files
  // in shard order — is checked BEFORE any record column is touched, so
  // a torn publish is refused without decoding megabytes of payload.
  std::vector<ShardPrelude> pre(contents.size());
  for (std::size_t i = 0; i < contents.size(); ++i) {
    pre[i] = decode_prelude(contents[i], names[i]);
  }
  const auto header_fail = [&](std::size_t i, const std::string& reason) {
    throw std::invalid_argument(names[i] + ":header: " + reason);
  };
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    const ShardPrelude& s = pre[i];
    if (s.shard_count != pre.size()) {
      header_fail(i, "shard count " + std::to_string(s.shard_count) +
                         " does not match " + std::to_string(pre.size()) +
                         " files");
    }
    if (s.shard_index != i) {
      header_fail(i, "shard index " + std::to_string(s.shard_index) +
                         " at position " + std::to_string(i) +
                         " (reordered or mixed snapshot)");
    }
    if (s.epoch != pre[0].epoch) {
      header_fail(i, "snapshot epoch " + std::to_string(s.epoch) +
                         " does not match shard 0's " +
                         std::to_string(pre[0].epoch) + " (torn publish)");
    }
    if (s.total != pre[0].total) {
      header_fail(i, "record total " + std::to_string(s.total) +
                         " does not match shard 0's " +
                         std::to_string(pre[0].total));
    }
    sum += s.records;
  }
  if (sum != pre[0].total) {
    header_fail(0, "shard record counts sum to " + std::to_string(sum) +
                       ", header total is " + std::to_string(pre[0].total));
  }

  // Shard-local software tables intern into one global table in shard
  // order (first use wins), exactly as a sequential merge would.
  Database::BulkColumns all;
  std::map<std::string, std::uint32_t> global_ids;
  std::vector<std::vector<std::uint32_t>> remap(pre.size());
  for (std::size_t i = 0; i < pre.size(); ++i) {
    remap[i].resize(pre[i].software_names.size());
    for (std::size_t lid = 0; lid < pre[i].software_names.size(); ++lid) {
      const auto [it, inserted] = global_ids.emplace(
          std::move(pre[i].software_names[lid]),
          static_cast<std::uint32_t>(all.software_names.size()));
      if (inserted) all.software_names.push_back(it->first);
      remap[i][lid] = it->second;
    }
  }

  // Phase two: every shard decodes its record columns straight into its
  // slice of the merged columns, concurrently; on a defect the lowest
  // shard's error is the one thrown (cancel-after-error, like the CSV
  // reader).
  const std::size_t total = static_cast<std::size_t>(pre[0].total);
  all.records.resize(total);
  all.categories.resize(total);
  all.classes.resize(total);
  all.remote.resize(total);
  all.years.resize(total);
  all.software.resize(total);
  std::vector<std::size_t> off(pre.size());
  for (std::size_t i = 0, at = 0; i < pre.size(); ++i) {
    off[i] = at;
    at += static_cast<std::size_t>(pre[i].records);
  }
  const runtime::TaskErrors errs = runtime::parallel_for_collect(
      contents.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          decode_columns_into(contents[i], names[i], pre[i], remap[i], all,
                              off[i]);
        }
      },
      runtime::CancelPolicy::kCancelAfterError);
  if (!errs.ok()) std::rethrow_exception(errs.errors.front().error);

  return Database::from_columns(std::move(all));
}

Database read_colsnap_shards(const std::vector<std::string>& paths) {
  std::vector<std::string> contents(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Size the buffer from the stream and read in one block — a
    // byte-at-a-time istreambuf slurp costs more than the whole decode
    // at 10^6 records.
    std::ifstream in{paths[i], std::ios::binary | std::ios::ate};
    const std::streamoff size = in ? static_cast<std::streamoff>(in.tellg())
                                   : std::streamoff{-1};
    if (!in || size < 0) {
      throw std::runtime_error("cannot read corpus snapshot shard: " +
                               paths[i]);
    }
    std::string text(static_cast<std::size_t>(size), '\0');
    in.seekg(0);
    if (size > 0 && !in.read(text.data(), size)) {
      throw std::runtime_error("cannot read corpus snapshot shard: " +
                               paths[i]);
    }
    contents[i] = std::move(text);
  }
  return decode_colsnap_shards(contents, paths);
}

std::vector<ColsnapBlockRef> colsnap_block_refs(const std::string& bytes) {
  // In-memory bytes have no path; structural errors use a generic label.
  static const std::string kLabel = "<colsnap>";
  Cursor c{bytes, kLabel, 0, "header"};
  c.need(kColsnapHeaderSize, "header");
  c.pos = kColsnapHeaderSize;
  std::vector<ColsnapBlockRef> refs;
  for (std::size_t k = 0; k < kColumnCount; ++k) {
    ColsnapBlockRef ref;
    ref.block_offset = c.pos;
    c.column = kColumns[k];
    const std::uint32_t name_len = c.u32("block header");
    if (name_len > 64 || name_len > c.remaining()) {
      c.fail("bad column name length");
    }
    ref.name = std::string(c.raw(name_len, "column name"));
    const std::uint64_t payload_len = c.u64("block header");
    ref.checksum_offset = c.pos;
    (void)c.u64("block header");
    if (payload_len > c.remaining()) c.fail("truncated column block");
    ref.payload_offset = c.pos;
    ref.payload_len = static_cast<std::size_t>(payload_len);
    c.pos += ref.payload_len;
    refs.push_back(std::move(ref));
  }
  return refs;
}

}  // namespace dfsm::bugtraq
