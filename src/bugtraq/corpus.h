// corpus.h — a seeded synthetic Bugtraq corpus whose marginals reproduce
// Figure 1 exactly, at the published snapshot size or scaled to any N.
//
// Substitution (DESIGN.md §2): we cannot ship the 5925 proprietary
// securityfocus.com reports, but every number the paper derives from them
// is a function of the category/class marginals as of 2002-11-30. The
// generator emits a deterministic corpus with:
//   * exactly 5925 records,
//   * per-category counts whose rounded percentages equal Figure 1's
//     (Input Validation 23%, Boundary Condition 21%, Design 18%, Failure
//     to Handle Exceptional Conditions 11%, Access Validation 10%, Race
//     6%, Configuration 5%, Origin Validation 3%, Atomicity 2%,
//     Environment 1%, Serialization ~0%, Unknown ~0%),
//   * studied-class records (stack/heap overflow, integer overflow,
//     format string, file race) totalling 22.0% (§1's coverage claim),
//     with integer-overflow records deliberately split across three
//     categories the way Table 1 documents.
// Titles/software/remote flags are pseudo-random from the seed so query
// code has realistic variety to chew on.
//
// Corpus scaling (ROADMAP): `scaled_plan(n)` apportions the Figure-1
// fractions to any corpus size by largest-remainder rounding, and
// `synthetic_corpus_n` generates that plan — 10^6-record corpora for
// Massacci-scale sweeps keep every category within ±0.5% of Figure 1.
// Record i's pseudo-random bits are a pure function of (seed, i), so
// generation fans out over the runtime pool and is byte-identical to the
// serial emitter at any DFSM_THREADS.
#ifndef DFSM_BUGTRAQ_CORPUS_H
#define DFSM_BUGTRAQ_CORPUS_H

#include <cstdint>

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

/// The published database size as of 2002-11-30.
inline constexpr std::size_t kBugtraqSize2002 = 5925;

/// Per-category record counts used by the generator (sum == 5925).
struct CorpusPlan {
  std::size_t input_validation = 1363;
  std::size_t boundary_condition = 1244;
  std::size_t design = 1060;
  std::size_t failure_to_handle = 652;
  std::size_t access_validation = 593;
  std::size_t race_condition = 356;
  std::size_t configuration = 296;
  std::size_t origin_validation = 178;
  std::size_t atomicity = 119;
  std::size_t environment = 59;
  std::size_t serialization = 3;
  std::size_t unknown = 2;

  /// Studied-class sub-counts (each drawn from a host category):
  std::size_t stack_overflow = 700;   ///< within boundary condition
  std::size_t heap_overflow = 180;    ///< within boundary condition
  std::size_t format_string = 220;    ///< within input validation
  std::size_t file_race = 84;         ///< within race condition
  std::size_t integer_overflow_input = 40;     ///< Table 1 ambiguity:
  std::size_t integer_overflow_boundary = 40;  ///< same root cause spread
  std::size_t integer_overflow_access = 40;    ///< over three categories

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t studied_total() const;

  friend bool operator==(const CorpusPlan&, const CorpusPlan&) = default;
};

/// Apportions the default (Figure-1) plan to a corpus of `n` records:
/// category counts by largest-remainder rounding (sum is exactly `n`,
/// every share within 1/n of its Figure-1 fraction), studied sub-counts
/// by floor scaling (never exceeding their host categories). At
/// n == kBugtraqSize2002 this is the default plan, exactly.
[[nodiscard]] CorpusPlan scaled_plan(std::size_t n);

/// Generates the corpus. Deterministic in `seed` — equal seeds give
/// byte-identical databases at every thread count. Synthetic IDs start at
/// 100000 to avoid colliding with curated real Bugtraq IDs.
[[nodiscard]] Database synthetic_corpus(std::uint64_t seed = 0x20021130,
                                        const CorpusPlan& plan = {});

/// Size-parameterized generator: synthetic_corpus_n(kBugtraqSize2002, s)
/// is byte-identical to synthetic_corpus(s); other sizes generate
/// scaled_plan(n). Ingested in one bulk batch (Database::add_batch).
[[nodiscard]] Database synthetic_corpus_n(std::size_t n,
                                          std::uint64_t seed = 0x20021130);

/// splitmix64 — the corpus's deterministic PRNG step (exposed for tests).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_CORPUS_H
