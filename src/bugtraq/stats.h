// stats.h — the paper's statistical analysis (§3.1): the Figure 1 category
// breakdown and the §1 studied-class coverage share.
#ifndef DFSM_BUGTRAQ_STATS_H
#define DFSM_BUGTRAQ_STATS_H

#include <string>
#include <vector>

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

/// One Figure-1 slice.
struct CategoryShare {
  Category category = Category::kUnknown;
  std::size_t count = 0;
  double percent = 0.0;         ///< exact
  int rounded_percent = 0;      ///< what the pie chart labels show
};

/// The full breakdown, sorted by count descending (ties by enum order).
[[nodiscard]] std::vector<CategoryShare> category_breakdown(const Database& db);

/// One studied-class row.
struct ClassShare {
  VulnClass vuln_class = VulnClass::kOther;
  std::size_t count = 0;
  double percent = 0.0;
};

/// Per-class counts for the studied classes plus the combined share —
/// the "22% of all vulnerabilities" computation.
struct StudiedShare {
  std::vector<ClassShare> classes;
  std::size_t studied_count = 0;
  std::size_t total = 0;
  double percent = 0.0;
};

[[nodiscard]] StudiedShare studied_share(const Database& db);

/// Remote vs local split (the paper notes the studied set includes "both
/// those that can be exploited remotely ... and those that can be
/// exploited by local users").
struct RemoteLocalSplit {
  std::size_t remote = 0;
  std::size_t local = 0;
};

[[nodiscard]] RemoteLocalSplit remote_local_split(const Database& db);

/// Renders the Figure 1 breakdown as a text table (shared by the bench
/// and the example binary).
[[nodiscard]] std::string render_figure1(const Database& db);

/// Reports per discovery year, ascending (the §7-style longitudinal cut
/// an analyst would run next on the same database).
struct YearCount {
  int year = 0;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<YearCount> by_year(const Database& db);

/// The n most-reported software packages, descending (ties by name).
struct SoftwareCount {
  std::string software;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<SoftwareCount> top_software(const Database& db,
                                                      std::size_t n);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_STATS_H
