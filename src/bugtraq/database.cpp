#include "bugtraq/database.h"

#include <sstream>
#include <stdexcept>

namespace dfsm::bugtraq {

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Splits a whole CSV body into records of fields, honoring quotes —
/// including newlines inside quoted fields (descriptions may be
/// multi-line).
std::vector<std::vector<std::string>> csv_records(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> row;
  std::string cur;
  bool in_quotes = false;
  bool row_has_content = false;
  auto end_field = [&] {
    row.push_back(cur);
    cur.clear();
  };
  auto end_row = [&] {
    if (row_has_content || !row.empty() || !cur.empty()) {
      end_field();
      records.push_back(std::move(row));
      row.clear();
    }
    row_has_content = false;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\n') {
      end_row();
    } else {
      cur.push_back(c);
      row_has_content = true;
    }
  }
  end_row();
  return records;
}

constexpr const char* kHeader =
    "id,title,software,year,remote,category,class,description,activities,"
    "reference_activity";

}  // namespace

void Database::add(VulnRecord record) {
  if (record.id != 0 && index_.count(record.id) != 0) {
    throw std::invalid_argument("duplicate Bugtraq ID: " + std::to_string(record.id));
  }
  if (record.id != 0) index_[record.id] = records_.size();
  category_col_.push_back(record.category);
  class_col_.push_back(record.vuln_class);
  remote_col_.push_back(record.remote ? 1 : 0);
  records_.push_back(std::move(record));
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
}

const VulnRecord* Database::by_id(int id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second];
}

std::vector<const VulnRecord*> Database::query(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return query<const std::function<bool(const VulnRecord&)>&>(pred);
}

std::size_t Database::count(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return count<const std::function<bool(const VulnRecord&)>&>(pred);
}

void Database::ensure_histograms(
    std::array<std::size_t, kCategoryCount>* categories,
    std::array<std::size_t, kVulnClassCount>* classes) const {
  std::lock_guard<std::mutex> lock{cache_->mu};
  if (!cache_->valid) {
    struct Hist {
      std::array<std::size_t, kCategoryCount> cat{};
      std::array<std::size_t, kVulnClassCount> cls{};
    };
    const auto& cat_col = category_col_;
    const auto& cls_col = class_col_;
    const Hist h = runtime::parallel_reduce(
        cat_col.size(), Hist{},
        [&](std::size_t begin, std::size_t end) {
          Hist local;
          for (std::size_t i = begin; i < end; ++i) {
            ++local.cat[static_cast<std::size_t>(cat_col[i])];
            ++local.cls[static_cast<std::size_t>(cls_col[i])];
          }
          return local;
        },
        [](Hist& acc, const Hist& part) {
          for (std::size_t k = 0; k < kCategoryCount; ++k)
            acc.cat[k] += part.cat[k];
          for (std::size_t k = 0; k < kVulnClassCount; ++k)
            acc.cls[k] += part.cls[k];
        });
    cache_->by_category = h.cat;
    cache_->by_class = h.cls;
    cache_->valid = true;
  }
  if (categories) *categories = cache_->by_category;
  if (classes) *classes = cache_->by_class;
}

std::map<Category, std::size_t> Database::count_by_category() const {
  std::array<std::size_t, kCategoryCount> counts{};
  ensure_histograms(&counts, nullptr);
  std::map<Category, std::size_t> out;
  for (Category c : kAllCategories) out[c] = counts[static_cast<std::size_t>(c)];
  return out;
}

std::map<VulnClass, std::size_t> Database::count_by_class() const {
  std::array<std::size_t, kVulnClassCount> counts{};
  ensure_histograms(nullptr, &counts);
  std::map<VulnClass, std::size_t> out;
  for (std::size_t k = 0; k < kVulnClassCount; ++k) {
    if (counts[k] != 0) out[static_cast<VulnClass>(k)] = counts[k];
  }
  return out;
}

std::string Database::to_csv() const {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const auto& r : records_) {
    std::string acts;
    for (std::size_t i = 0; i < r.activities.size(); ++i) {
      if (i) acts += ';';
      acts += to_string(r.activities[i]);
    }
    os << r.id << ',' << csv_quote(r.title) << ',' << csv_quote(r.software) << ','
       << r.year << ',' << (r.remote ? 1 : 0) << ',' << csv_quote(to_string(r.category))
       << ',' << csv_quote(to_string(r.vuln_class)) << ','
       << csv_quote(r.description) << ',' << csv_quote(acts) << ','
       << r.reference_activity << '\n';
  }
  return os.str();
}

Database Database::from_csv(const std::string& csv) {
  const auto rows = csv_records(csv);
  if (rows.empty() || rows[0].size() != 10) {
    throw std::invalid_argument("bad CSV header");
  }
  {
    std::string joined;
    for (std::size_t i = 0; i < rows[0].size(); ++i) {
      if (i) joined += ',';
      joined += rows[0][i];
    }
    if (joined != kHeader) throw std::invalid_argument("bad CSV header");
  }
  Database db;
  for (std::size_t ri = 1; ri < rows.size(); ++ri) {
    const auto& fields = rows[ri];
    if (fields.size() != 10) {
      throw std::invalid_argument("bad CSV row " + std::to_string(ri));
    }
    VulnRecord r;
    r.id = std::stoi(fields[0]);
    r.title = fields[1];
    r.software = fields[2];
    r.year = std::stoi(fields[3]);
    r.remote = fields[4] == "1";
    auto cat = category_from_string(fields[5]);
    auto cls = vuln_class_from_string(fields[6]);
    if (!cat || !cls) {
      throw std::invalid_argument("bad category/class in CSV row " +
                                  std::to_string(ri));
    }
    r.category = *cat;
    r.vuln_class = *cls;
    r.description = fields[7];
    if (!fields[8].empty()) {
      std::istringstream as{fields[8]};
      std::string a;
      while (std::getline(as, a, ';')) {
        // Linear match against the enum's printable names.
        bool found = false;
        for (int k = 0; k <= static_cast<int>(ElementaryActivity::kFreeBuffer); ++k) {
          const auto act = static_cast<ElementaryActivity>(k);
          if (a == to_string(act)) {
            r.activities.push_back(act);
            found = true;
            break;
          }
        }
        if (!found) throw std::invalid_argument("bad activity: " + a);
      }
    }
    r.reference_activity = std::stoi(fields[9]);
    db.add(std::move(r));
  }
  return db;
}

void Database::merge(const Database& other) {
  for (const auto& r : other.records_) add(r);
}

}  // namespace dfsm::bugtraq
