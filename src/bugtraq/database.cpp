#include "bugtraq/database.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace dfsm::bugtraq {

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

constexpr const char* kHeader =
    "id,title,software,year,remote,category,class,description,activities,"
    "reference_activity";

/// Offsets [begin, end) of each non-empty CSV row of `text`: rows split
/// at newlines outside quotes, so quoted fields keep their embedded
/// newlines (descriptions may be multi-line). This boundary scan is the
/// only serial pass of the reader; field/record parsing fans out per row.
std::vector<std::pair<std::size_t, std::size_t>> row_spans(const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  bool in_quotes = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == '\n' && !in_quotes) {
      if (i > start) spans.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (text.size() > start) spans.emplace_back(start, text.size());
  return spans;
}

/// Splits one row span into its fields, honoring quotes ("" escapes a
/// literal quote inside a quoted field).
std::vector<std::string> parse_fields(const std::string& text, std::size_t begin,
                                      std::size_t end) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < end && text[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void check_header(const std::string& text,
                  const std::vector<std::pair<std::size_t, std::size_t>>& spans) {
  if (spans.empty()) throw std::invalid_argument("bad CSV header");
  const auto fields = parse_fields(text, spans[0].first, spans[0].second);
  if (fields.size() != 10) throw std::invalid_argument("bad CSV header");
  std::string joined;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) joined += ',';
    joined += fields[i];
  }
  if (joined != kHeader) throw std::invalid_argument("bad CSV header");
}

VulnRecord parse_record(const std::vector<std::string>& fields,
                        std::size_t row_number) {
  if (fields.size() != 10) {
    throw std::invalid_argument("bad CSV row " + std::to_string(row_number));
  }
  VulnRecord r;
  r.id = std::stoi(fields[0]);
  r.title = fields[1];
  r.software = fields[2];
  r.year = std::stoi(fields[3]);
  r.remote = fields[4] == "1";
  auto cat = category_from_string(fields[5]);
  auto cls = vuln_class_from_string(fields[6]);
  if (!cat || !cls) {
    throw std::invalid_argument("bad category/class in CSV row " +
                                std::to_string(row_number));
  }
  r.category = *cat;
  r.vuln_class = *cls;
  r.description = fields[7];
  if (!fields[8].empty()) {
    std::istringstream as{fields[8]};
    std::string a;
    while (std::getline(as, a, ';')) {
      // Linear match against the enum's printable names.
      bool found = false;
      for (int k = 0; k <= static_cast<int>(ElementaryActivity::kFreeBuffer); ++k) {
        const auto act = static_cast<ElementaryActivity>(k);
        if (a == to_string(act)) {
          r.activities.push_back(act);
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("bad activity: " + a);
    }
  }
  r.reference_activity = std::stoi(fields[9]);
  return r;
}

void append_csv_row(std::string& out, const VulnRecord& r) {
  std::string acts;
  for (std::size_t i = 0; i < r.activities.size(); ++i) {
    if (i) acts += ';';
    acts += to_string(r.activities[i]);
  }
  out += std::to_string(r.id);
  out += ',';
  out += csv_quote(r.title);
  out += ',';
  out += csv_quote(r.software);
  out += ',';
  out += std::to_string(r.year);
  out += ',';
  out += r.remote ? '1' : '0';
  out += ',';
  out += csv_quote(to_string(r.category));
  out += ',';
  out += csv_quote(to_string(r.vuln_class));
  out += ',';
  out += csv_quote(r.description);
  out += ',';
  out += csv_quote(acts);
  out += ',';
  out += std::to_string(r.reference_activity);
  out += '\n';
}

/// One data row of one CSV document: where it lives, and its 1-based row
/// number within that document (for error messages).
struct RowRef {
  const std::string* text = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t row_number = 0;
};

Database parse_csv_docs(const std::vector<const std::string*>& docs) {
  std::vector<RowRef> rows;
  for (const std::string* doc : docs) {
    const auto spans = row_spans(*doc);
    check_header(*doc, spans);
    rows.reserve(rows.size() + spans.size() - 1);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      rows.push_back({doc, spans[i].first, spans[i].second, i});
    }
  }
  // Row parsing shards across the pool; the pool rethrows the exception
  // of the lowest index that threw, so malformed input reports the same
  // first-bad-row error a serial scan would.
  auto records = runtime::parallel_map<VulnRecord>(rows.size(), [&](std::size_t i) {
    const RowRef& row = rows[i];
    return parse_record(parse_fields(*row.text, row.begin, row.end),
                        row.row_number);
  });
  Database db;
  db.add_batch(std::move(records));
  return db;
}

}  // namespace

std::uint32_t Database::intern_software(const std::string& name) {
  const auto [it, inserted] =
      software_ids_.emplace(name, static_cast<std::uint32_t>(software_names_.size()));
  if (inserted) software_names_.push_back(name);
  return it->second;
}

void Database::add(VulnRecord record) {
  if (record.id != 0 && index_.count(record.id) != 0) {
    throw std::invalid_argument("duplicate Bugtraq ID: " + std::to_string(record.id));
  }
  if (record.id != 0) index_[record.id] = records_.size();
  category_col_.push_back(record.category);
  class_col_.push_back(record.vuln_class);
  remote_col_.push_back(record.remote ? 1 : 0);
  year_col_.push_back(record.year);
  software_col_.push_back(intern_software(record.software));
  records_.push_back(std::move(record));
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
}

void Database::add_batch(std::vector<VulnRecord> batch) {
  if (batch.empty()) return;
  // Validate every ID before mutating anything, so a duplicate anywhere
  // in the batch leaves the database untouched.
  std::unordered_set<int> batch_ids;
  batch_ids.reserve(batch.size());
  for (const auto& r : batch) {
    if (r.id == 0) continue;
    if (index_.count(r.id) != 0 || !batch_ids.insert(r.id).second) {
      throw std::invalid_argument("duplicate Bugtraq ID: " + std::to_string(r.id));
    }
  }
  const std::size_t base = records_.size();
  records_.reserve(base + batch.size());
  category_col_.reserve(base + batch.size());
  class_col_.reserve(base + batch.size());
  remote_col_.reserve(base + batch.size());
  year_col_.reserve(base + batch.size());
  software_col_.reserve(base + batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    VulnRecord& r = batch[i];
    if (r.id != 0) index_[r.id] = base + i;
    category_col_.push_back(r.category);
    class_col_.push_back(r.vuln_class);
    remote_col_.push_back(r.remote ? 1 : 0);
    year_col_.push_back(r.year);
    software_col_.push_back(intern_software(r.software));
    records_.push_back(std::move(r));
  }
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
}

const VulnRecord* Database::by_id(int id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second];
}

std::vector<const VulnRecord*> Database::query(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return query<const std::function<bool(const VulnRecord&)>&>(pred);
}

std::size_t Database::count(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return count<const std::function<bool(const VulnRecord&)>&>(pred);
}

void Database::ensure_histograms(
    std::array<std::size_t, kCategoryCount>* categories,
    std::array<std::size_t, kVulnClassCount>* classes,
    std::map<int, std::size_t>* years,
    std::vector<std::size_t>* software) const {
  std::lock_guard<std::mutex> lock{cache_->mu};
  if (!cache_->valid) {
    struct Hist {
      std::array<std::size_t, kCategoryCount> cat{};
      std::array<std::size_t, kVulnClassCount> cls{};
      std::map<int, std::size_t> year;
      std::vector<std::size_t> software;
    };
    const auto& cat_col = category_col_;
    const auto& cls_col = class_col_;
    const auto& year_col = year_col_;
    const auto& soft_col = software_col_;
    const std::size_t software_count = software_names_.size();
    Hist identity;
    identity.software.assign(software_count, 0);
    const Hist h = runtime::parallel_reduce(
        cat_col.size(), std::move(identity),
        [&](std::size_t begin, std::size_t end) {
          Hist local;
          local.software.assign(software_count, 0);
          for (std::size_t i = begin; i < end; ++i) {
            ++local.cat[static_cast<std::size_t>(cat_col[i])];
            ++local.cls[static_cast<std::size_t>(cls_col[i])];
            ++local.year[year_col[i]];
            ++local.software[soft_col[i]];
          }
          return local;
        },
        [](Hist& acc, const Hist& part) {
          for (std::size_t k = 0; k < kCategoryCount; ++k)
            acc.cat[k] += part.cat[k];
          for (std::size_t k = 0; k < kVulnClassCount; ++k)
            acc.cls[k] += part.cls[k];
          for (const auto& [year, count] : part.year) acc.year[year] += count;
          for (std::size_t k = 0; k < part.software.size(); ++k)
            acc.software[k] += part.software[k];
        });
    cache_->by_category = h.cat;
    cache_->by_class = h.cls;
    cache_->by_year = h.year;
    cache_->by_software = h.software;
    cache_->valid = true;
  }
  if (categories) *categories = cache_->by_category;
  if (classes) *classes = cache_->by_class;
  if (years) *years = cache_->by_year;
  if (software) *software = cache_->by_software;
}

std::map<Category, std::size_t> Database::count_by_category() const {
  std::array<std::size_t, kCategoryCount> counts{};
  ensure_histograms(&counts, nullptr);
  std::map<Category, std::size_t> out;
  for (Category c : kAllCategories) out[c] = counts[static_cast<std::size_t>(c)];
  return out;
}

std::map<VulnClass, std::size_t> Database::count_by_class() const {
  std::array<std::size_t, kVulnClassCount> counts{};
  ensure_histograms(nullptr, &counts);
  std::map<VulnClass, std::size_t> out;
  for (std::size_t k = 0; k < kVulnClassCount; ++k) {
    if (counts[k] != 0) out[static_cast<VulnClass>(k)] = counts[k];
  }
  return out;
}

std::map<int, std::size_t> Database::count_by_year() const {
  std::map<int, std::size_t> counts;
  ensure_histograms(nullptr, nullptr, &counts);
  return counts;
}

std::map<std::string, std::size_t> Database::count_by_software() const {
  std::vector<std::size_t> counts;
  ensure_histograms(nullptr, nullptr, nullptr, &counts);
  std::map<std::string, std::size_t> out;
  for (std::size_t id = 0; id < counts.size(); ++id) {
    if (counts[id] != 0) out[software_names_[id]] = counts[id];
  }
  return out;
}

std::string Database::to_csv() const { return to_csv(0, records_.size()); }

std::string Database::to_csv(std::size_t begin, std::size_t end) const {
  if (begin > end || end > records_.size()) {
    throw std::out_of_range("bad record range for to_csv");
  }
  const auto& recs = records_;
  std::string out = std::string(kHeader) + '\n';
  // Per-block row strings concatenate in block order (runtime/parallel.h),
  // so the bytes equal a serial row walk at any thread count.
  out += runtime::parallel_reduce(
      end - begin, std::string{},
      [&](std::size_t b, std::size_t e) {
        std::string part;
        for (std::size_t i = b; i < e; ++i) {
          append_csv_row(part, recs[begin + i]);
        }
        return part;
      },
      [](std::string& acc, std::string&& part) { acc += part; });
  return out;
}

Database Database::from_csv(const std::string& csv) {
  return parse_csv_docs({&csv});
}

Database Database::from_csv_parts(const std::vector<std::string>& parts) {
  std::vector<const std::string*> docs;
  docs.reserve(parts.size());
  for (const auto& p : parts) docs.push_back(&p);
  return parse_csv_docs(docs);
}

void Database::merge(const Database& other) {
  add_batch(other.records_);
}

}  // namespace dfsm::bugtraq
