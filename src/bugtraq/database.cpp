#include "bugtraq/database.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace dfsm::bugtraq {

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

constexpr const char* kHeader =
    "id,title,software,year,remote,category,class,description,activities,"
    "reference_activity";

/// One non-empty CSV row of a document: its byte span and the 1-based
/// line number the span starts on (error messages and quarantine entries
/// report lines, not row ordinals, so multi-line quoted rows stay
/// locatable in an editor).
struct RowSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 1;
};

/// Spans of each non-empty CSV row of `text`: rows split at newlines
/// outside quotes, so quoted fields keep their embedded newlines
/// (descriptions may be multi-line). A UTF-8 BOM before the header and a
/// '\r' before each row-terminating '\n' (CRLF files) are excluded from
/// the spans. This boundary scan is the only serial pass of the reader;
/// field/record parsing fans out per row.
std::vector<RowSpan> row_spans(const std::string& text) {
  std::vector<RowSpan> spans;
  bool in_quotes = false;
  std::size_t start = text.rfind("\xEF\xBB\xBF", 0) == 0 ? 3 : 0;
  std::size_t line = 1;
  std::size_t start_line = 1;
  const auto emit = [&](std::size_t end) {
    // An unterminated quote swallows the file's final newline into the
    // last span; strip it (and a CRLF '\r') so quarantine line counts
    // reflect the source lines the span actually covers.
    if (end > start && text[end - 1] == '\n') --end;
    if (end > start && text[end - 1] == '\r') --end;
    if (end > start) spans.push_back({start, end, start_line});
  };
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == '\n') {
      if (!in_quotes) {
        emit(i);
        start = i + 1;
        start_line = line + 1;
      }
      ++line;
    }
  }
  emit(text.size());
  return spans;
}

/// Splits one row span into its fields, honoring quotes ("" escapes a
/// literal quote inside a quoted field).
std::vector<std::string> parse_fields(const std::string& text, std::size_t begin,
                                      std::size_t end) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < end && text[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool header_ok(const std::string& text, const std::vector<RowSpan>& spans) {
  if (spans.empty()) return false;
  const auto fields = parse_fields(text, spans[0].begin, spans[0].end);
  if (fields.size() != 10) return false;
  std::string joined;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) joined += ',';
    joined += fields[i];
  }
  return joined == kHeader;
}

/// Strict integer field: the whole field must be one base-10 integer
/// (std::stoi alone would accept "123abc", hiding corruption).
int parse_int_field(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos == s.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument(std::string("bad ") + what + " '" + s + "'");
}

/// Parses one data row's fields into a record. Reasons carry no location
/// — the caller prefixes "<shard>:<line>: " so the same parse serves
/// strict throws and lenient quarantine entries.
VulnRecord parse_record(const std::vector<std::string>& fields) {
  if (fields.size() != 10) {
    throw std::invalid_argument("bad CSV row: expected 10 fields, got " +
                                std::to_string(fields.size()));
  }
  VulnRecord r;
  r.id = parse_int_field(fields[0], "id");
  r.title = fields[1];
  r.software = fields[2];
  r.year = parse_int_field(fields[3], "year");
  r.remote = fields[4] == "1";
  auto cat = category_from_string(fields[5]);
  if (!cat) throw std::invalid_argument("bad category '" + fields[5] + "'");
  auto cls = vuln_class_from_string(fields[6]);
  if (!cls) {
    throw std::invalid_argument("bad vulnerability class '" + fields[6] + "'");
  }
  r.category = *cat;
  r.vuln_class = *cls;
  r.description = fields[7];
  if (!fields[8].empty()) {
    std::istringstream as{fields[8]};
    std::string a;
    while (std::getline(as, a, ';')) {
      // Linear match against the enum's printable names.
      bool found = false;
      for (int k = 0; k <= static_cast<int>(ElementaryActivity::kFreeBuffer); ++k) {
        const auto act = static_cast<ElementaryActivity>(k);
        if (a == to_string(act)) {
          r.activities.push_back(act);
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("bad activity '" + a + "'");
    }
  }
  r.reference_activity = parse_int_field(fields[9], "reference_activity");
  return r;
}

void append_csv_row(std::string& out, const VulnRecord& r) {
  std::string acts;
  for (std::size_t i = 0; i < r.activities.size(); ++i) {
    if (i) acts += ';';
    acts += to_string(r.activities[i]);
  }
  out += std::to_string(r.id);
  out += ',';
  out += csv_quote(r.title);
  out += ',';
  out += csv_quote(r.software);
  out += ',';
  out += std::to_string(r.year);
  out += ',';
  out += r.remote ? '1' : '0';
  out += ',';
  out += csv_quote(to_string(r.category));
  out += ',';
  out += csv_quote(to_string(r.vuln_class));
  out += ',';
  out += csv_quote(r.description);
  out += ',';
  out += csv_quote(acts);
  out += ',';
  out += std::to_string(r.reference_activity);
  out += '\n';
}

/// One data row of one CSV document: where it lives, which document it
/// came from, and the 1-based line its span starts on (for error
/// messages and quarantine entries).
struct RowRef {
  const std::string* text = nullptr;
  const std::string* name = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 0;
};

std::string located(const RowRef& row, const std::string& reason) {
  return *row.name + ":" + std::to_string(row.line) + ": " + reason;
}

Database parse_csv_docs(const std::vector<const std::string*>& docs,
                        const std::vector<std::string>& names,
                        IngestPolicy policy, IngestReport* report) {
  // Serial boundary pass: flatten every document's data rows into one
  // array so parsing shards evenly even when shard sizes are skewed.
  std::vector<RowRef> rows;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const std::string& doc = *docs[d];
    const auto spans = row_spans(doc);
    if (!header_ok(doc, spans)) {
      const std::size_t line = spans.empty() ? 1 : spans[0].line;
      if (policy == IngestPolicy::kStrict) {
        throw std::invalid_argument(names[d] + ":" + std::to_string(line) +
                                    ": bad CSV header");
      }
      report->shards.push_back({names[d], "bad CSV header", 1, spans.size()});
      continue;
    }
    rows.reserve(rows.size() + spans.size() - 1);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      rows.push_back({&doc, &names[d], spans[i].begin, spans[i].end,
                      spans[i].line});
    }
  }

  // Per-row result slots keep the outcome order-stable at any thread
  // count: slot i is written exactly once by whichever block owns row i.
  std::vector<VulnRecord> parsed(rows.size());
  std::vector<std::string> reasons(rows.size());  // empty => parsed OK
  const auto parse_rows = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const RowRef& row = rows[i];
      try {
        parsed[i] = parse_record(parse_fields(*row.text, row.begin, row.end));
      } catch (const std::exception& ex) {
        if (policy == IngestPolicy::kStrict) {
          // Contextualize and rethrow: cancellation keeps the remaining
          // blocks from parsing doomed work, and the lowest failing
          // block's first failure is the overall first bad row — the same
          // error a serial scan reports.
          throw std::invalid_argument(located(row, ex.what()));
        }
        reasons[i] = ex.what();
      }
    }
  };
  if (policy == IngestPolicy::kStrict) {
    const runtime::TaskErrors errs = runtime::parallel_for_collect(
        rows.size(), parse_rows, runtime::CancelPolicy::kCancelAfterError);
    if (!errs.ok()) std::rethrow_exception(errs.errors.front().error);
  } else {
    runtime::parallel_for(rows.size(), parse_rows);
  }

  Database db;
  std::vector<VulnRecord> batch;
  batch.reserve(rows.size());
  std::vector<std::size_t> origin;  // batch position -> global row index
  origin.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!reasons[i].empty()) continue;
    origin.push_back(i);
    batch.push_back(std::move(parsed[i]));
  }
  if (policy == IngestPolicy::kStrict) {
    db.add_batch(std::move(batch));
    return db;
  }
  // Lenient dedup: add_batch reports rejected batch positions; map them
  // back to source rows so the quarantine entry carries shard + line.
  for (const BatchReject& rej : db.add_batch(std::move(batch), policy)) {
    reasons[origin[rej.index]] = rej.reason;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (reasons[i].empty()) continue;
    const RowRef& row = rows[i];
    report->rows.push_back(
        {*row.name, row.line, reasons[i],
         row.text->substr(row.begin, row.end - row.begin)});
  }
  report->ingested = db.size();
  return db;
}

}  // namespace

const char* to_string(IngestPolicy p) noexcept {
  switch (p) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kLenient:
      return "lenient";
  }
  return "unknown";
}

std::size_t QuarantinedRow::lines_consumed() const {
  std::size_t lines = 1;
  for (char c : raw) {
    if (c == '\n') ++lines;
  }
  return lines;
}

std::size_t IngestReport::quarantined_lines() const {
  std::size_t total = 0;
  for (const auto& row : rows) total += row.lines_consumed();
  return total;
}

std::uint32_t Database::intern_software(const std::string& name) {
  const auto [it, inserted] =
      software_ids_.emplace(name, static_cast<std::uint32_t>(software_names_.size()));
  if (inserted) software_names_.push_back(name);
  return it->second;
}

void Database::add(VulnRecord record) {
  if (record.id != 0 && index_.count(record.id) != 0) {
    throw std::invalid_argument("duplicate Bugtraq ID: " + std::to_string(record.id));
  }
  if (record.id != 0) index_[record.id] = records_.size();
  category_col_.push_back(record.category);
  class_col_.push_back(record.vuln_class);
  remote_col_.push_back(record.remote ? 1 : 0);
  year_col_.push_back(record.year);
  software_col_.push_back(intern_software(record.software));
  records_.push_back(std::move(record));
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
}

void Database::add_batch(std::vector<VulnRecord> batch) {
  if (batch.empty()) return;
  // Validate every ID before mutating anything, so a duplicate anywhere
  // in the batch leaves the database untouched.
  std::unordered_set<int> batch_ids;
  batch_ids.reserve(batch.size());
  for (const auto& r : batch) {
    if (r.id == 0) continue;
    if (index_.count(r.id) != 0 || !batch_ids.insert(r.id).second) {
      throw std::invalid_argument("duplicate Bugtraq ID: " + std::to_string(r.id));
    }
  }
  const std::size_t base = records_.size();
  records_.reserve(base + batch.size());
  category_col_.reserve(base + batch.size());
  class_col_.reserve(base + batch.size());
  remote_col_.reserve(base + batch.size());
  year_col_.reserve(base + batch.size());
  software_col_.reserve(base + batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    VulnRecord& r = batch[i];
    if (r.id != 0) index_[r.id] = base + i;
    category_col_.push_back(r.category);
    class_col_.push_back(r.vuln_class);
    remote_col_.push_back(r.remote ? 1 : 0);
    year_col_.push_back(r.year);
    software_col_.push_back(intern_software(r.software));
    records_.push_back(std::move(r));
  }
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
}

std::vector<BatchReject> Database::add_batch(std::vector<VulnRecord> batch,
                                             IngestPolicy policy) {
  if (policy == IngestPolicy::kStrict) {
    add_batch(std::move(batch));
    return {};
  }
  // Lenient: one serial pass decides acceptance (first occurrence of a
  // non-zero ID wins, matching the order a strict ingest would commit),
  // then one bulk append extends the columnar store and invalidates the
  // histogram cache once, like the strict path.
  std::vector<BatchReject> rejects;
  std::vector<unsigned char> accept(batch.size(), 1);
  std::unordered_set<int> batch_ids;
  batch_ids.reserve(batch.size());
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const int id = batch[i].id;
    if (id != 0 && (index_.count(id) != 0 || !batch_ids.insert(id).second)) {
      accept[i] = 0;
      rejects.push_back({i, "duplicate Bugtraq ID: " + std::to_string(id)});
      continue;
    }
    ++accepted;
  }
  if (accepted == 0) return rejects;
  const std::size_t base = records_.size();
  records_.reserve(base + accepted);
  category_col_.reserve(base + accepted);
  class_col_.reserve(base + accepted);
  remote_col_.reserve(base + accepted);
  year_col_.reserve(base + accepted);
  software_col_.reserve(base + accepted);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!accept[i]) continue;
    VulnRecord& r = batch[i];
    if (r.id != 0) index_[r.id] = records_.size();
    category_col_.push_back(r.category);
    class_col_.push_back(r.vuln_class);
    remote_col_.push_back(r.remote ? 1 : 0);
    year_col_.push_back(r.year);
    software_col_.push_back(intern_software(r.software));
    records_.push_back(std::move(r));
  }
  std::lock_guard<std::mutex> lock{cache_->mu};
  cache_->valid = false;
  return rejects;
}

const VulnRecord* Database::by_id(int id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second];
}

std::vector<const VulnRecord*> Database::query(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return query<const std::function<bool(const VulnRecord&)>&>(pred);
}

std::size_t Database::count(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return count<const std::function<bool(const VulnRecord&)>&>(pred);
}

void Database::ensure_histograms(
    std::array<std::size_t, kCategoryCount>* categories,
    std::array<std::size_t, kVulnClassCount>* classes,
    std::map<int, std::size_t>* years,
    std::vector<std::size_t>* software) const {
  std::lock_guard<std::mutex> lock{cache_->mu};
  if (!cache_->valid) {
    struct Hist {
      std::array<std::size_t, kCategoryCount> cat{};
      std::array<std::size_t, kVulnClassCount> cls{};
      std::map<int, std::size_t> year;
      std::vector<std::size_t> software;
    };
    const auto& cat_col = category_col_;
    const auto& cls_col = class_col_;
    const auto& year_col = year_col_;
    const auto& soft_col = software_col_;
    const std::size_t software_count = software_names_.size();
    Hist identity;
    identity.software.assign(software_count, 0);
    const Hist h = runtime::parallel_reduce(
        cat_col.size(), std::move(identity),
        [&](std::size_t begin, std::size_t end) {
          Hist local;
          local.software.assign(software_count, 0);
          for (std::size_t i = begin; i < end; ++i) {
            ++local.cat[static_cast<std::size_t>(cat_col[i])];
            ++local.cls[static_cast<std::size_t>(cls_col[i])];
            ++local.year[year_col[i]];
            ++local.software[soft_col[i]];
          }
          return local;
        },
        [](Hist& acc, const Hist& part) {
          for (std::size_t k = 0; k < kCategoryCount; ++k)
            acc.cat[k] += part.cat[k];
          for (std::size_t k = 0; k < kVulnClassCount; ++k)
            acc.cls[k] += part.cls[k];
          for (const auto& [year, count] : part.year) acc.year[year] += count;
          for (std::size_t k = 0; k < part.software.size(); ++k)
            acc.software[k] += part.software[k];
        });
    cache_->by_category = h.cat;
    cache_->by_class = h.cls;
    cache_->by_year = h.year;
    cache_->by_software = h.software;
    cache_->valid = true;
  }
  if (categories) *categories = cache_->by_category;
  if (classes) *classes = cache_->by_class;
  if (years) *years = cache_->by_year;
  if (software) *software = cache_->by_software;
}

std::map<Category, std::size_t> Database::count_by_category() const {
  std::array<std::size_t, kCategoryCount> counts{};
  ensure_histograms(&counts, nullptr);
  std::map<Category, std::size_t> out;
  for (Category c : kAllCategories) out[c] = counts[static_cast<std::size_t>(c)];
  return out;
}

std::map<VulnClass, std::size_t> Database::count_by_class() const {
  std::array<std::size_t, kVulnClassCount> counts{};
  ensure_histograms(nullptr, &counts);
  std::map<VulnClass, std::size_t> out;
  for (std::size_t k = 0; k < kVulnClassCount; ++k) {
    if (counts[k] != 0) out[static_cast<VulnClass>(k)] = counts[k];
  }
  return out;
}

std::map<int, std::size_t> Database::count_by_year() const {
  std::map<int, std::size_t> counts;
  ensure_histograms(nullptr, nullptr, &counts);
  return counts;
}

std::map<std::string, std::size_t> Database::count_by_software() const {
  std::vector<std::size_t> counts;
  ensure_histograms(nullptr, nullptr, nullptr, &counts);
  std::map<std::string, std::size_t> out;
  for (std::size_t id = 0; id < counts.size(); ++id) {
    if (counts[id] != 0) out[software_names_[id]] = counts[id];
  }
  return out;
}

std::string Database::to_csv() const { return to_csv(0, records_.size()); }

std::string Database::to_csv(std::size_t begin, std::size_t end) const {
  if (begin > end || end > records_.size()) {
    throw std::out_of_range("bad record range for to_csv");
  }
  const auto& recs = records_;
  std::string out = std::string(kHeader) + '\n';
  // Per-block row strings concatenate in block order (runtime/parallel.h),
  // so the bytes equal a serial row walk at any thread count.
  out += runtime::parallel_reduce(
      end - begin, std::string{},
      [&](std::size_t b, std::size_t e) {
        std::string part;
        for (std::size_t i = b; i < e; ++i) {
          append_csv_row(part, recs[begin + i]);
        }
        return part;
      },
      [](std::string& acc, std::string&& part) { acc += part; });
  return out;
}

Database Database::from_csv(const std::string& csv) {
  return from_csv_parts({csv}, {"<csv>"}, IngestPolicy::kStrict);
}

Database Database::from_csv_parts(const std::vector<std::string>& parts) {
  std::vector<std::string> names;
  names.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    names.push_back("part " + std::to_string(i));
  }
  return from_csv_parts(parts, names, IngestPolicy::kStrict);
}

Database Database::from_csv_parts(const std::vector<std::string>& parts,
                                  const std::vector<std::string>& names,
                                  IngestPolicy policy, IngestReport* report) {
  if (parts.size() != names.size()) {
    throw std::invalid_argument("from_csv_parts: " + std::to_string(parts.size()) +
                                " parts but " + std::to_string(names.size()) +
                                " names");
  }
  if (policy == IngestPolicy::kLenient && report == nullptr) {
    throw std::invalid_argument("from_csv_parts: lenient ingest requires a report");
  }
  std::vector<const std::string*> docs;
  docs.reserve(parts.size());
  for (const auto& p : parts) docs.push_back(&p);
  return parse_csv_docs(docs, names, policy, report);
}

void Database::merge(const Database& other) {
  add_batch(other.records_);
}

}  // namespace dfsm::bugtraq
