#include "bugtraq/database.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace dfsm::bugtraq {

namespace detail {

/// The append-only backing storage snapshots point into. The writer may
/// push_back past the published size — capacity is guaranteed up front,
/// so the vectors never reallocate while a snapshot pins them and the
/// bytes in [0, published size) never move. Readers go through the raw
/// pointers a snapshot captured at publish time and never touch the
/// vector objects themselves (whose end pointers the writer mutates).
struct ColumnArena {
  std::vector<VulnRecord> records;
  std::vector<Category> category_col;
  std::vector<VulnClass> class_col;
  std::vector<unsigned char> remote_col;
  std::vector<int> year_col;
  std::vector<std::uint32_t> software_col;
  std::vector<std::string> software_names;  // id -> name

  /// The row count every column can hold without reallocating.
  [[nodiscard]] std::size_t row_capacity() const noexcept {
    return std::min({records.capacity(), category_col.capacity(),
                     class_col.capacity(), remote_col.capacity(),
                     year_col.capacity(), software_col.capacity()});
  }

  void reserve_rows(std::size_t n) {
    records.reserve(n);
    category_col.reserve(n);
    class_col.reserve(n);
    remote_col.reserve(n);
    year_col.reserve(n);
    software_col.reserve(n);
  }
};

}  // namespace detail

namespace {

/// The shared epoch-0 snapshot every fresh Database starts from.
const CorpusSnapshotPtr& empty_snapshot() {
  static const CorpusSnapshotPtr snap = std::make_shared<const CorpusSnapshot>();
  return snap;
}

/// Histogram sweep over index-parallel column spans, sharded on the
/// runtime pool. All merges are commutative sums, so the result is
/// identical at any thread count. `software_count` sizes by_software.
CorpusHistograms fold_columns(std::span<const Category> cat,
                              std::span<const VulnClass> cls,
                              std::span<const int> year,
                              std::span<const std::uint32_t> soft,
                              std::size_t software_count) {
  CorpusHistograms identity;
  identity.by_software.assign(software_count, 0);
  return runtime::parallel_reduce(
      cat.size(), std::move(identity),
      [&](std::size_t begin, std::size_t end) {
        CorpusHistograms local;
        local.by_software.assign(software_count, 0);
        for (std::size_t i = begin; i < end; ++i) {
          ++local.by_category[static_cast<std::size_t>(cat[i])];
          ++local.by_class[static_cast<std::size_t>(cls[i])];
          ++local.by_year[year[i]];
          ++local.by_software[soft[i]];
        }
        return local;
      },
      [](CorpusHistograms& acc, const CorpusHistograms& part) {
        for (std::size_t k = 0; k < kCategoryCount; ++k)
          acc.by_category[k] += part.by_category[k];
        for (std::size_t k = 0; k < kVulnClassCount; ++k)
          acc.by_class[k] += part.by_class[k];
        for (const auto& [y, c] : part.by_year) acc.by_year[y] += c;
        for (std::size_t k = 0; k < part.by_software.size(); ++k)
          acc.by_software[k] += part.by_software[k];
      });
}

/// Folds `delta` into `acc` (the incremental-maintenance merge). The
/// delta's by_software is sized to the NEW software count, so acc grows
/// to match before the add.
void merge_histograms(CorpusHistograms& acc, const CorpusHistograms& delta) {
  for (std::size_t k = 0; k < kCategoryCount; ++k)
    acc.by_category[k] += delta.by_category[k];
  for (std::size_t k = 0; k < kVulnClassCount; ++k)
    acc.by_class[k] += delta.by_class[k];
  for (const auto& [y, c] : delta.by_year) acc.by_year[y] += c;
  if (acc.by_software.size() < delta.by_software.size()) {
    acc.by_software.resize(delta.by_software.size(), 0);
  }
  for (std::size_t k = 0; k < delta.by_software.size(); ++k)
    acc.by_software[k] += delta.by_software[k];
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

constexpr const char* kHeader =
    "id,title,software,year,remote,category,class,description,activities,"
    "reference_activity";

/// One non-empty CSV row of a document: its byte span and the 1-based
/// line number the span starts on (error messages and quarantine entries
/// report lines, not row ordinals, so multi-line quoted rows stay
/// locatable in an editor).
struct RowSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 1;
};

/// Spans of each non-empty CSV row of `text`: rows split at newlines
/// outside quotes, so quoted fields keep their embedded newlines
/// (descriptions may be multi-line). A UTF-8 BOM before the header and a
/// '\r' before each row-terminating '\n' (CRLF files) are excluded from
/// the spans. This boundary scan is the only serial pass of the reader;
/// field/record parsing fans out per row.
std::vector<RowSpan> row_spans(const std::string& text) {
  std::vector<RowSpan> spans;
  bool in_quotes = false;
  std::size_t start = text.rfind("\xEF\xBB\xBF", 0) == 0 ? 3 : 0;
  std::size_t line = 1;
  std::size_t start_line = 1;
  const auto emit = [&](std::size_t end) {
    // An unterminated quote swallows the file's final newline into the
    // last span; strip it (and a CRLF '\r') so quarantine line counts
    // reflect the source lines the span actually covers.
    if (end > start && text[end - 1] == '\n') --end;
    if (end > start && text[end - 1] == '\r') --end;
    if (end > start) spans.push_back({start, end, start_line});
  };
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == '\n') {
      if (!in_quotes) {
        emit(i);
        start = i + 1;
        start_line = line + 1;
      }
      ++line;
    }
  }
  emit(text.size());
  return spans;
}

/// Splits one row span into its fields, honoring quotes ("" escapes a
/// literal quote inside a quoted field).
std::vector<std::string> parse_fields(const std::string& text, std::size_t begin,
                                      std::size_t end) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < end && text[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool header_ok(const std::string& text, const std::vector<RowSpan>& spans) {
  if (spans.empty()) return false;
  const auto fields = parse_fields(text, spans[0].begin, spans[0].end);
  if (fields.size() != 10) return false;
  std::string joined;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) joined += ',';
    joined += fields[i];
  }
  return joined == kHeader;
}

/// Strict integer field: the whole field must be one base-10 integer
/// (std::stoi alone would accept "123abc", hiding corruption).
int parse_int_field(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos == s.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument(std::string("bad ") + what + " '" + s + "'");
}

/// Parses one data row's fields into a record. Reasons carry no location
/// — the caller prefixes "<shard>:<line>: " so the same parse serves
/// strict throws and lenient quarantine entries.
VulnRecord parse_record(const std::vector<std::string>& fields) {
  if (fields.size() != 10) {
    throw std::invalid_argument("bad CSV row: expected 10 fields, got " +
                                std::to_string(fields.size()));
  }
  VulnRecord r;
  r.id = parse_int_field(fields[0], "id");
  r.title = fields[1];
  r.software = fields[2];
  r.year = parse_int_field(fields[3], "year");
  r.remote = fields[4] == "1";
  auto cat = category_from_string(fields[5]);
  if (!cat) throw std::invalid_argument("bad category '" + fields[5] + "'");
  auto cls = vuln_class_from_string(fields[6]);
  if (!cls) {
    throw std::invalid_argument("bad vulnerability class '" + fields[6] + "'");
  }
  r.category = *cat;
  r.vuln_class = *cls;
  r.description = fields[7];
  if (!fields[8].empty()) {
    std::istringstream as{fields[8]};
    std::string a;
    while (std::getline(as, a, ';')) {
      // Linear match against the enum's printable names.
      bool found = false;
      for (int k = 0; k <= static_cast<int>(ElementaryActivity::kFreeBuffer); ++k) {
        const auto act = static_cast<ElementaryActivity>(k);
        if (a == to_string(act)) {
          r.activities.push_back(act);
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("bad activity '" + a + "'");
    }
  }
  r.reference_activity = parse_int_field(fields[9], "reference_activity");
  return r;
}

void append_csv_row(std::string& out, const VulnRecord& r) {
  std::string acts;
  for (std::size_t i = 0; i < r.activities.size(); ++i) {
    if (i) acts += ';';
    acts += to_string(r.activities[i]);
  }
  out += std::to_string(r.id);
  out += ',';
  out += csv_quote(r.title);
  out += ',';
  out += csv_quote(r.software);
  out += ',';
  out += std::to_string(r.year);
  out += ',';
  out += r.remote ? '1' : '0';
  out += ',';
  out += csv_quote(to_string(r.category));
  out += ',';
  out += csv_quote(to_string(r.vuln_class));
  out += ',';
  out += csv_quote(r.description);
  out += ',';
  out += csv_quote(acts);
  out += ',';
  out += std::to_string(r.reference_activity);
  out += '\n';
}

/// One data row of one CSV document: where it lives, which document it
/// came from, and the 1-based line its span starts on (for error
/// messages and quarantine entries).
struct RowRef {
  const std::string* text = nullptr;
  const std::string* name = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 0;
};

std::string located(const RowRef& row, const std::string& reason) {
  return *row.name + ":" + std::to_string(row.line) + ": " + reason;
}

Database parse_csv_docs(const std::vector<const std::string*>& docs,
                        const std::vector<std::string>& names,
                        IngestPolicy policy, IngestReport* report) {
  // Serial boundary pass: flatten every document's data rows into one
  // array so parsing shards evenly even when shard sizes are skewed.
  std::vector<RowRef> rows;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const std::string& doc = *docs[d];
    const auto spans = row_spans(doc);
    if (!header_ok(doc, spans)) {
      const std::size_t line = spans.empty() ? 1 : spans[0].line;
      if (policy == IngestPolicy::kStrict) {
        throw std::invalid_argument(names[d] + ":" + std::to_string(line) +
                                    ": bad CSV header");
      }
      report->shards.push_back({names[d], "bad CSV header", 1, spans.size()});
      continue;
    }
    rows.reserve(rows.size() + spans.size() - 1);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      rows.push_back({&doc, &names[d], spans[i].begin, spans[i].end,
                      spans[i].line});
    }
  }

  // Per-row result slots keep the outcome order-stable at any thread
  // count: slot i is written exactly once by whichever block owns row i.
  std::vector<VulnRecord> parsed(rows.size());
  std::vector<std::string> reasons(rows.size());  // empty => parsed OK
  const auto parse_rows = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const RowRef& row = rows[i];
      try {
        parsed[i] = parse_record(parse_fields(*row.text, row.begin, row.end));
      } catch (const std::exception& ex) {
        if (policy == IngestPolicy::kStrict) {
          // Contextualize and rethrow: cancellation keeps the remaining
          // blocks from parsing doomed work, and the lowest failing
          // block's first failure is the overall first bad row — the same
          // error a serial scan reports.
          throw std::invalid_argument(located(row, ex.what()));
        }
        reasons[i] = ex.what();
      }
    }
  };
  if (policy == IngestPolicy::kStrict) {
    const runtime::TaskErrors errs = runtime::parallel_for_collect(
        rows.size(), parse_rows, runtime::CancelPolicy::kCancelAfterError);
    if (!errs.ok()) std::rethrow_exception(errs.errors.front().error);
  } else {
    runtime::parallel_for(rows.size(), parse_rows);
  }

  Database db;
  std::vector<VulnRecord> batch;
  batch.reserve(rows.size());
  std::vector<std::size_t> origin;  // batch position -> global row index
  origin.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!reasons[i].empty()) continue;
    origin.push_back(i);
    batch.push_back(std::move(parsed[i]));
  }
  if (policy == IngestPolicy::kStrict) {
    db.add_batch(std::move(batch));
    return db;
  }
  // Lenient dedup: add_batch reports rejected batch positions; map them
  // back to source rows so the quarantine entry carries shard + line.
  for (const BatchReject& rej : db.add_batch(std::move(batch), policy)) {
    reasons[origin[rej.index]] = rej.reason;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (reasons[i].empty()) continue;
    const RowRef& row = rows[i];
    report->rows.push_back(
        {*row.name, row.line, reasons[i],
         row.text->substr(row.begin, row.end - row.begin)});
  }
  report->ingested = db.size();
  return db;
}

}  // namespace

const char* to_string(IngestPolicy p) noexcept {
  switch (p) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kLenient:
      return "lenient";
  }
  return "unknown";
}

std::size_t QuarantinedRow::lines_consumed() const {
  std::size_t lines = 1;
  for (char c : raw) {
    if (c == '\n') ++lines;
  }
  return lines;
}

std::size_t IngestReport::quarantined_lines() const {
  std::size_t total = 0;
  for (const auto& row : rows) total += row.lines_consumed();
  return total;
}

// ---------------------------------------------------------------------------
// CorpusSnapshot

std::map<Category, std::size_t> CorpusSnapshot::count_by_category() const {
  std::map<Category, std::size_t> out;
  for (Category c : kAllCategories) {
    out[c] = hist_.by_category[static_cast<std::size_t>(c)];
  }
  return out;
}

std::map<VulnClass, std::size_t> CorpusSnapshot::count_by_class() const {
  std::map<VulnClass, std::size_t> out;
  for (std::size_t k = 0; k < kVulnClassCount; ++k) {
    if (hist_.by_class[k] != 0) out[static_cast<VulnClass>(k)] = hist_.by_class[k];
  }
  return out;
}

std::map<int, std::size_t> CorpusSnapshot::count_by_year() const {
  return hist_.by_year;
}

std::map<std::string, std::size_t> CorpusSnapshot::count_by_software() const {
  std::map<std::string, std::size_t> out;
  for (std::size_t id = 0; id < hist_.by_software.size(); ++id) {
    if (hist_.by_software[id] != 0) out[names_[id]] = hist_.by_software[id];
  }
  return out;
}

std::string CorpusSnapshot::to_csv() const { return to_csv(0, size_); }

std::string CorpusSnapshot::to_csv(std::size_t begin, std::size_t end) const {
  if (begin > end || end > size_) {
    throw std::out_of_range("bad record range for to_csv");
  }
  const auto recs = records();
  std::string out = std::string(kHeader) + '\n';
  // Per-block row strings concatenate in block order (runtime/parallel.h),
  // so the bytes equal a serial row walk at any thread count.
  out += runtime::parallel_reduce(
      end - begin, std::string{},
      [&](std::size_t b, std::size_t e) {
        std::string part;
        for (std::size_t i = b; i < e; ++i) {
          append_csv_row(part, recs[begin + i]);
        }
        return part;
      },
      [](std::string& acc, std::string&& part) { acc += part; });
  return out;
}

CorpusHistograms rebuild_histograms(const CorpusSnapshot& snap) {
  return fold_columns(snap.categories(), snap.classes(), snap.years(),
                      snap.software_ids(), snap.software_count());
}

// ---------------------------------------------------------------------------
// Database

Database::Database() : cell_(empty_snapshot()) {}

Database::~Database() = default;

Database::Database(const Database& other) : cell_(empty_snapshot()) {
  std::lock_guard<std::mutex> lock{other.writer_mu_};
  cell_.publish(other.cell_.acquire());
  base_index_ = other.base_index_;
  index_ = other.index_;
  base_rows_ = other.base_rows_;
  software_ids_ = other.software_ids_;
  // arena_ stays null: the first write copies-on-write off the shared
  // snapshot, so the source's arena is never appended to through a copy.
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  CorpusSnapshotPtr snap;
  std::vector<std::pair<int, std::size_t>> base;
  std::map<int, std::size_t> index;
  std::size_t base_rows = 0;
  std::map<std::string, std::uint32_t> ids;
  {
    std::lock_guard<std::mutex> lock{other.writer_mu_};
    snap = other.cell_.acquire();
    base = other.base_index_;
    index = other.index_;
    base_rows = other.base_rows_;
    ids = other.software_ids_;
  }
  std::lock_guard<std::mutex> lock{writer_mu_};
  arena_.reset();
  base_index_ = std::move(base);
  index_ = std::move(index);
  base_rows_ = base_rows;
  software_ids_ = std::move(ids);
  cell_.publish(std::move(snap));
  return *this;
}

Database::Database(Database&& other) noexcept
    : cell_(other.cell_.acquire()),
      arena_(std::move(other.arena_)),
      base_index_(std::move(other.base_index_)),
      index_(std::move(other.index_)),
      base_rows_(other.base_rows_),
      software_ids_(std::move(other.software_ids_)) {
  other.cell_.publish(empty_snapshot());
  other.base_index_.clear();
  other.index_.clear();
  other.base_rows_ = 0;
  other.software_ids_.clear();
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  cell_.publish(other.cell_.acquire());
  arena_ = std::move(other.arena_);
  base_index_ = std::move(other.base_index_);
  index_ = std::move(other.index_);
  base_rows_ = other.base_rows_;
  software_ids_ = std::move(other.software_ids_);
  other.cell_.publish(empty_snapshot());
  other.arena_.reset();
  other.base_index_.clear();
  other.index_.clear();
  other.base_rows_ = 0;
  other.software_ids_.clear();
  return *this;
}

std::shared_ptr<CorpusSnapshot> Database::make_snapshot(
    std::shared_ptr<detail::ColumnArena> arena, std::uint64_t epoch,
    std::size_t size, std::size_t software_count, CorpusHistograms hist) {
  auto next = std::make_shared<CorpusSnapshot>();
  const detail::ColumnArena& a = *arena;
  next->epoch_ = epoch;
  next->size_ = size;
  next->software_count_ = software_count;
  next->records_ = a.records.data();
  next->categories_ = a.category_col.data();
  next->classes_ = a.class_col.data();
  next->remote_ = a.remote_col.data();
  next->years_ = a.year_col.data();
  next->software_ = a.software_col.data();
  next->names_ = a.software_names.data();
  next->hist_ = std::move(hist);
  next->arena_ = std::move(arena);
  return next;
}

void Database::ensure_arena_locked(const CorpusSnapshot& cur,
                                   std::size_t need_rows,
                                   std::size_t need_names) {
  if (arena_ != nullptr && arena_->row_capacity() >= need_rows &&
      arena_->software_names.capacity() >= need_names) {
    return;  // capacity-sharing in-place append
  }
  // Copy-on-write growth: copy the published prefix into a fresh arena
  // with geometric headroom. Live snapshots keep the old arena alive;
  // nothing a reader can see moves or changes.
  const std::size_t row_cap = std::max(need_rows, 2 * cur.size());
  const std::size_t name_cap = std::max(need_names, 2 * cur.software_count());
  auto next = std::make_shared<detail::ColumnArena>();
  next->reserve_rows(row_cap);
  next->software_names.reserve(name_cap);
  const auto recs = cur.records();
  next->records.assign(recs.begin(), recs.end());
  const auto cats = cur.categories();
  next->category_col.assign(cats.begin(), cats.end());
  const auto clss = cur.classes();
  next->class_col.assign(clss.begin(), clss.end());
  const auto rem = cur.remote_flags();
  next->remote_col.assign(rem.begin(), rem.end());
  const auto yrs = cur.years();
  next->year_col.assign(yrs.begin(), yrs.end());
  const auto soft = cur.software_ids();
  next->software_col.assign(soft.begin(), soft.end());
  const auto names = cur.software_names();
  next->software_names.assign(names.begin(), names.end());
  arena_ = std::move(next);
}

void Database::rollback_writer_state_locked(const CorpusSnapshot& cur) {
  if (arena_ != nullptr && arena_->records.size() > cur.size()) {
    // Shrinking back to the published size never touches bytes a reader
    // can see: [0, cur.size()) stays in place.
    arena_->records.resize(cur.size());
    arena_->category_col.resize(cur.size());
    arena_->class_col.resize(cur.size());
    arena_->remote_col.resize(cur.size());
    arena_->year_col.resize(cur.size());
    arena_->software_col.resize(cur.size());
  }
  if (arena_ != nullptr &&
      arena_->software_names.size() > cur.software_count()) {
    arena_->software_names.resize(cur.software_count());
  }
  // Rebuild the writer-side maps from the published epoch (rare path:
  // only an allocation failure mid-append lands here). The base index
  // covers the immutable prefix [0, base_rows_) — positions there never
  // move — so only the overlay needs rebuilding.
  index_.clear();
  const auto recs = cur.records();
  for (std::size_t i = base_rows_; i < recs.size(); ++i) {
    if (recs[i].id != 0) index_[recs[i].id] = i;
  }
  software_ids_.clear();
  const auto names = cur.software_names();
  for (std::size_t id = 0; id < names.size(); ++id) {
    software_ids_.emplace(names[id], static_cast<std::uint32_t>(id));
  }
}

void Database::append_batch_locked(std::vector<VulnRecord>&& rows) {
  const CorpusSnapshotPtr cur = cell_.acquire();
  const std::size_t old_size = cur->size();
  const std::size_t old_names = cur->software_count();

  // Intern against the writer map first so the exact number of new names
  // is known before any arena capacity is committed.
  std::vector<std::uint32_t> sids(rows.size());
  std::vector<const std::string*> fresh;  // new names, in id order
  std::uint32_t next_id = static_cast<std::uint32_t>(old_names);
  try {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto [it, inserted] =
          software_ids_.emplace(rows[i].software, next_id);
      if (inserted) {
        fresh.push_back(&it->first);
        ++next_id;
      }
      sids[i] = it->second;
    }
    const std::size_t new_names = old_names + fresh.size();
    const std::size_t new_size = old_size + rows.size();

    ensure_arena_locked(*cur, new_size, new_names);
    detail::ColumnArena& a = *arena_;
    for (const std::string* name : fresh) a.software_names.push_back(*name);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      VulnRecord& r = rows[i];
      if (r.id != 0) index_[r.id] = old_size + i;
      a.category_col.push_back(r.category);
      a.class_col.push_back(r.vuln_class);
      a.remote_col.push_back(r.remote ? 1 : 0);
      a.year_col.push_back(r.year);
      a.software_col.push_back(sids[i]);
      a.records.push_back(std::move(r));
    }

    // Incremental histogram maintenance: fold ONLY the batch's rows
    // (sharded on the pool) into a copy of the published histograms —
    // rebuild_histograms() is the equivalence oracle for this fold.
    CorpusHistograms delta =
        fold_columns(std::span<const Category>(a.category_col).subspan(old_size),
                     std::span<const VulnClass>(a.class_col).subspan(old_size),
                     std::span<const int>(a.year_col).subspan(old_size),
                     std::span<const std::uint32_t>(a.software_col)
                         .subspan(old_size),
                     new_names);
    CorpusHistograms hist = cur->histograms();
    merge_histograms(hist, delta);

    cell_.publish(make_snapshot(arena_, cur->epoch() + 1, new_size, new_names,
                                std::move(hist)));
  } catch (...) {
    rollback_writer_state_locked(*cur);
    throw;
  }
}

const std::size_t* Database::find_id_locked(int id) const {
  const auto it = index_.find(id);
  if (it != index_.end()) return &it->second;
  const auto b = std::lower_bound(
      base_index_.begin(), base_index_.end(), id,
      [](const std::pair<int, std::size_t>& e, int v) { return e.first < v; });
  if (b != base_index_.end() && b->first == id) return &b->second;
  return nullptr;
}

void Database::add(VulnRecord record) {
  std::lock_guard<std::mutex> lock{writer_mu_};
  if (record.id != 0 && find_id_locked(record.id) != nullptr) {
    throw std::invalid_argument("duplicate Bugtraq ID: " +
                                std::to_string(record.id));
  }
  std::vector<VulnRecord> one;
  one.push_back(std::move(record));
  append_batch_locked(std::move(one));
}

void Database::add_batch(std::vector<VulnRecord> batch) {
  if (batch.empty()) return;  // true no-op: nothing validated, nothing published
  std::lock_guard<std::mutex> lock{writer_mu_};
  // Validate every ID before mutating anything, so a duplicate anywhere
  // in the batch leaves the database untouched.
  std::unordered_set<int> batch_ids;
  batch_ids.reserve(batch.size());
  for (const auto& r : batch) {
    if (r.id == 0) continue;
    if (find_id_locked(r.id) != nullptr || !batch_ids.insert(r.id).second) {
      throw std::invalid_argument("duplicate Bugtraq ID: " +
                                  std::to_string(r.id));
    }
  }
  append_batch_locked(std::move(batch));
}

std::vector<BatchReject> Database::add_batch(std::vector<VulnRecord> batch,
                                             IngestPolicy policy) {
  if (policy == IngestPolicy::kStrict) {
    add_batch(std::move(batch));
    return {};
  }
  if (batch.empty()) return {};
  std::lock_guard<std::mutex> lock{writer_mu_};
  // Lenient: one serial pass decides acceptance (first occurrence of a
  // non-zero ID wins, matching the order a strict ingest would commit),
  // then one bulk append publishes one new epoch.
  std::vector<BatchReject> rejects;
  std::vector<VulnRecord> accepted;
  accepted.reserve(batch.size());
  std::unordered_set<int> batch_ids;
  batch_ids.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const int id = batch[i].id;
    if (id != 0 &&
        (find_id_locked(id) != nullptr || !batch_ids.insert(id).second)) {
      rejects.push_back({i, "duplicate Bugtraq ID: " + std::to_string(id)});
      continue;
    }
    accepted.push_back(std::move(batch[i]));
  }
  // An all-rejected batch is a true no-op: no epoch is published.
  if (!accepted.empty()) append_batch_locked(std::move(accepted));
  return rejects;
}

const VulnRecord* Database::by_id(int id) const {
  std::lock_guard<std::mutex> lock{writer_mu_};
  const std::size_t* pos = find_id_locked(id);
  if (pos == nullptr) return nullptr;
  // Index positions never exceed the published size (appends publish
  // before releasing the writer lock, and failed appends roll back).
  return &cell_.acquire()->records()[*pos];
}

void Database::reserve(std::size_t capacity) {
  std::lock_guard<std::mutex> lock{writer_mu_};
  const CorpusSnapshotPtr cur = cell_.acquire();
  ensure_arena_locked(*cur, std::max(capacity, cur->size()),
                      cur->software_count());
}

std::vector<const VulnRecord*> Database::query(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return query<const std::function<bool(const VulnRecord&)>&>(pred);
}

std::size_t Database::count(
    const std::function<bool(const VulnRecord&)>& pred) const {
  return count<const std::function<bool(const VulnRecord&)>&>(pred);
}

Database Database::from_csv(const std::string& csv) {
  return from_csv_parts({csv}, {"<csv>"}, IngestPolicy::kStrict);
}

Database Database::from_csv_parts(const std::vector<std::string>& parts) {
  std::vector<std::string> names;
  names.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    names.push_back("part " + std::to_string(i));
  }
  return from_csv_parts(parts, names, IngestPolicy::kStrict);
}

Database Database::from_csv_parts(const std::vector<std::string>& parts,
                                  const std::vector<std::string>& names,
                                  IngestPolicy policy, IngestReport* report) {
  if (parts.size() != names.size()) {
    throw std::invalid_argument("from_csv_parts: " + std::to_string(parts.size()) +
                                " parts but " + std::to_string(names.size()) +
                                " names");
  }
  if (policy == IngestPolicy::kLenient && report == nullptr) {
    throw std::invalid_argument("from_csv_parts: lenient ingest requires a report");
  }
  std::vector<const std::string*> docs;
  docs.reserve(parts.size());
  for (const auto& p : parts) docs.push_back(&p);
  return parse_csv_docs(docs, names, policy, report);
}

Database Database::from_columns(BulkColumns&& columns) {
  const std::size_t n = columns.records.size();
  if (columns.categories.size() != n || columns.classes.size() != n ||
      columns.remote.size() != n || columns.years.size() != n ||
      columns.software.size() != n) {
    throw std::invalid_argument("from_columns: ragged column lengths");
  }
  const std::size_t name_count = columns.software_names.size();
  for (const std::uint32_t sid : columns.software) {
    if (sid >= name_count) {
      throw std::invalid_argument("from_columns: software id " +
                                  std::to_string(sid) + " out of range (" +
                                  std::to_string(name_count) + " names)");
    }
  }

  auto arena = std::make_shared<detail::ColumnArena>();
  arena->records = std::move(columns.records);
  arena->category_col = std::move(columns.categories);
  arena->class_col = std::move(columns.classes);
  arena->remote_col = std::move(columns.remote);
  arena->year_col = std::move(columns.years);
  arena->software_col = std::move(columns.software);
  arena->software_names = std::move(columns.software_names);
  const detail::ColumnArena& a = *arena;

  Database db;
  for (std::size_t id = 0; id < a.software_names.size(); ++id) {
    if (!db.software_ids_
             .emplace(a.software_names[id], static_cast<std::uint32_t>(id))
             .second) {
      throw std::invalid_argument("from_columns: duplicate software name '" +
                                  a.software_names[id] + "'");
    }
  }
  // Id index via one sort instead of n map inserts; adjacent equal ids
  // expose duplicates.
  std::vector<std::pair<int, std::size_t>> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a.records[i].id != 0) ids.emplace_back(a.records[i].id, i);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t k = 1; k < ids.size(); ++k) {
    if (ids[k].first == ids[k - 1].first) {
      throw std::invalid_argument("duplicate Bugtraq ID: " +
                                  std::to_string(ids[k].first));
    }
  }
  // The sorted pairs ARE the base index — adopted as-is, no node inserts.
  db.base_index_ = std::move(ids);
  db.base_rows_ = n;

  CorpusHistograms hist = fold_columns(
      std::span<const Category>(a.category_col),
      std::span<const VulnClass>(a.class_col), std::span<const int>(a.year_col),
      std::span<const std::uint32_t>(a.software_col), a.software_names.size());
  const std::size_t names_total = a.software_names.size();
  db.arena_ = arena;
  db.cell_.publish(
      make_snapshot(std::move(arena), 1, n, names_total, std::move(hist)));
  return db;
}

void Database::merge(const Database& other) {
  const CorpusSnapshotPtr snap = other.snapshot();
  const auto recs = snap->records();
  add_batch(std::vector<VulnRecord>(recs.begin(), recs.end()));
}

}  // namespace dfsm::bugtraq
