#include "bugtraq/record.h"

namespace dfsm::bugtraq {

const char* to_string(ElementaryActivity a) noexcept {
  switch (a) {
    case ElementaryActivity::kGetInput: return "get input";
    case ElementaryActivity::kUseAsArrayIndex: return "use the integer as an array index";
    case ElementaryActivity::kCopyToBuffer: return "copy the string to a buffer";
    case ElementaryActivity::kHandleFollowingData:
      return "handle data following the buffer";
    case ElementaryActivity::kExecuteViaPointer:
      return "execute code referred by a function pointer or a return address";
    case ElementaryActivity::kCheckPermission: return "check permission";
    case ElementaryActivity::kOpenFile: return "open file";
    case ElementaryActivity::kDecodeName: return "decode filename";
    case ElementaryActivity::kWriteToFile: return "write to file";
    case ElementaryActivity::kFreeBuffer: return "free the buffer";
  }
  return "?";
}

}  // namespace dfsm::bugtraq
