#include "bugtraq/classifier.h"

#include <algorithm>

namespace dfsm::bugtraq {

Category category_for_activity(ElementaryActivity a) noexcept {
  switch (a) {
    case ElementaryActivity::kGetInput:
      return Category::kInputValidationError;
    case ElementaryActivity::kUseAsArrayIndex:
    case ElementaryActivity::kCopyToBuffer:
    case ElementaryActivity::kFreeBuffer:
      return Category::kBoundaryConditionError;
    case ElementaryActivity::kHandleFollowingData:
      return Category::kFailureToHandleExceptionalConditions;
    case ElementaryActivity::kExecuteViaPointer:
    case ElementaryActivity::kCheckPermission:
      return Category::kAccessValidationError;
    case ElementaryActivity::kOpenFile:
    case ElementaryActivity::kWriteToFile:
      return Category::kRaceConditionError;
    case ElementaryActivity::kDecodeName:
      return Category::kInputValidationError;
  }
  return Category::kUnknown;
}

std::vector<Category> plausible_categories(const VulnRecord& r) {
  std::vector<Category> out;
  for (ElementaryActivity a : r.activities) {
    const Category c = category_for_activity(a);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

bool classification_consistent(const VulnRecord& r) {
  if (r.reference_activity < 0 ||
      r.reference_activity >= static_cast<int>(r.activities.size())) {
    return false;
  }
  return category_for_activity(
             r.activities[static_cast<std::size_t>(r.reference_activity)]) ==
         r.category;
}

bool classification_ambiguous(const VulnRecord& r) {
  return plausible_categories(r).size() >= 2;
}

}  // namespace dfsm::bugtraq
