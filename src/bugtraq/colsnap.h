// colsnap.h — the binary columnar snapshot format: a corpus epoch
// serialized as K shard files of length-delimited, per-column
// checksummed blocks, so reload is I/O-bound instead of parse-bound
// (DESIGN.md §15 has the wire-format table).
//
// Each shard carries one contiguous record range — the same
// static_blocks(size, count) partition csv_shards.h uses, so the two
// formats shard identically and a corpus round-trips byte-for-byte
// between them. Shard bodies encode and decode concurrently on the
// runtime pool (per-shard buffers, no shared mutable state), and the
// bytes are a pure function of (snapshot contents, shard count): the
// same corpus writes the same files at any DFSM_THREADS.
//
// Wire format, all integers little-endian:
//
//   header (48 bytes): magic "DFSMCSNP" | u32 version | u32 shard_index
//     | u32 shard_count | u32 reserved | u64 shard_records
//     | u64 total_records | u64 epoch
//   then 11 column blocks in fixed order, each:
//     u32 name_len | name | u64 payload_len | u64 fnv_checksum | payload
//
// The checksum is core::Fingerprinter::mix_striped over the payload
// bytes: eight interleaved FNV-1a lanes folded with the payload length
// (fingerprint.h) — chosen over plain mix() because a serial FNV chain
// is latency-bound at ~1.5 ns/byte, which alone would eat half the
// reload budget at 10^6 records. The loader refuses any defect with
// "<file>:<column>: <reason>" — checksum mismatch, truncated block, bad
// code, ragged sizes — and cross-checks shard headers (index, count,
// record total, epoch) so a torn publish (shards from different epochs)
// is refused as "<file>:header: ...". Loading is all-or-nothing: a
// refused shard set contributes zero records.
//
// The string columns (title, description, software table) are interned/
// length-prefixed per shard; software ids are shard-local and remapped
// to one global table at merge, which keeps shard encoding embarrassingly
// parallel (per-core buffers, Corey-style share-nothing).
#ifndef DFSM_BUGTRAQ_COLSNAP_H
#define DFSM_BUGTRAQ_COLSNAP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bugtraq/database.h"

namespace dfsm::bugtraq {

inline constexpr std::uint32_t kColsnapVersion = 1;
inline constexpr std::size_t kColsnapHeaderSize = 48;

/// Byte offset of the u64 epoch field inside a shard header (the
/// stale-epoch fault mutator edits it in place).
[[nodiscard]] constexpr std::size_t colsnap_epoch_offset() noexcept {
  return 40;
}

/// Canonical shard file name: "<base>-00003-of-00008.colsnap".
[[nodiscard]] std::string colsnap_shard_path(const std::string& base,
                                             std::size_t index,
                                             std::size_t count);

/// All `count` shard paths for `base`, in shard order.
[[nodiscard]] std::vector<std::string> colsnap_shard_paths(
    const std::string& base, std::size_t count);

/// Encodes shard `index` of `count` for the snapshot (the record range
/// is the static_blocks partition of (size, count)). Pure: same inputs,
/// same bytes, at any thread count.
[[nodiscard]] std::string encode_colsnap_shard(const CorpusSnapshot& snap,
                                               std::size_t index,
                                               std::size_t count);

/// All `count` shard bodies (0 is treated as 1), encoded concurrently
/// on the runtime pool.
[[nodiscard]] std::vector<std::string> encode_colsnap_shards(
    const CorpusSnapshot& snap, std::size_t count);

/// Writes the database's current epoch as `shards` snapshot files under
/// `base`. Every file exists even when the corpus has fewer records than
/// shards (tail shards carry zero records). Returns the paths in shard
/// order. Throws std::runtime_error if a file cannot be written.
std::vector<std::string> write_colsnap_shards(const Database& db,
                                              const std::string& base,
                                              std::size_t shards);

/// Decodes in-memory shard bodies (`names[i]` labels `contents[i]` in
/// error messages). Shards decode concurrently; headers are cross-checked
/// (index order, shard count, record total, one epoch) and local software
/// tables merge into one global interning. Throws std::invalid_argument
/// as "<name>:<column>: <reason>" on any defect — all-or-nothing.
[[nodiscard]] Database decode_colsnap_shards(
    const std::vector<std::string>& contents,
    const std::vector<std::string>& names);

/// Reads shard files in path order and decodes them. Throws
/// std::runtime_error on an unreadable file, std::invalid_argument
/// ("<path>:<column>: <reason>") on malformed or corrupt contents.
[[nodiscard]] Database read_colsnap_shards(
    const std::vector<std::string>& paths);

/// Structural index of one shard's column blocks — offsets only, no
/// checksum verification (the fault mutators edit bytes through this).
/// Throws std::invalid_argument if the overall block framing is broken.
struct ColsnapBlockRef {
  std::string name;
  std::size_t block_offset = 0;     ///< offset of the u32 name_len field
  std::size_t checksum_offset = 0;  ///< offset of the u64 checksum field
  std::size_t payload_offset = 0;
  std::size_t payload_len = 0;
};

[[nodiscard]] std::vector<ColsnapBlockRef> colsnap_block_refs(
    const std::string& bytes);

}  // namespace dfsm::bugtraq

#endif  // DFSM_BUGTRAQ_COLSNAP_H
