#include "staticlint/emit.h"

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <sstream>

namespace dfsm::staticlint {

namespace {

constexpr const char* kToolName = "dfsm_lint";
constexpr const char* kToolVersion = "1.0.0";
constexpr const char* kToolUri =
    "https://github.com/paper-repro/dfsm/blob/main/DESIGN.md";
constexpr const char* kSarifSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
    "sarif-schema-2.1.0.json";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "none";
}

std::size_t rule_index(const std::string& id) {
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (id == rules[i].info.id) return i;
  }
  return 0;
}

/// Synthetic artifact URI for findings on models WITHOUT a source hint
/// (discovery-built chains, fault-campaign mutants, compound
/// compositions): "models/<slug>" from the model name, lowercased,
/// non-alphanumerics collapsed to single dashes. A stable URI per model
/// so GitHub code scanning can group and track findings it cannot
/// anchor to a real file.
std::string synthetic_uri(const std::string& model) {
  std::string slug;
  slug.reserve(model.size());
  bool pending_dash = false;
  for (const char c : model) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      if (pending_dash && !slug.empty()) slug += '-';
      pending_dash = false;
      slug += static_cast<char>(std::tolower(u));
    } else {
      pending_dash = true;
    }
  }
  if (slug.empty()) slug = "unnamed";
  return "models/" + slug;
}

}  // namespace

std::string emit_text(const LintRun& run) {
  std::ostringstream os;
  os << kToolName << ": checked " << run.models_checked << " model(s) against "
     << run.rules_run << " rule(s)\n";
  if (run.memoized) {
    os << "memo: " << run.rules_executed << " rule execution(s), "
       << run.memo_hits << " hit(s), " << run.memo_misses << " miss(es), "
       << run.memo_invalidated << " invalidated\n";
  }
  for (const auto& d : run.findings) {
    os << to_string(d.severity) << " " << d.rule_id << ": "
       << d.where.qualified() << ": " << d.message << "\n";
    if (!d.hint.empty()) os << "    hint: " << d.hint << "\n";
  }
  if (run.findings.empty()) {
    os << "no findings\n";
  } else {
    os << run.errors() << " error(s), " << run.warnings() << " warning(s), "
       << run.count(Severity::kNote) << " note(s)\n";
  }
  return os.str();
}

std::string emit_json(const LintRun& run) {
  std::ostringstream os;
  os << "{\n"
     << "  \"tool\": \"" << kToolName << "\",\n"
     << "  \"version\": \"" << kToolVersion << "\",\n"
     << "  \"models_checked\": " << run.models_checked << ",\n"
     << "  \"rules_run\": " << run.rules_run << ",\n"
     << "  \"memoized\": " << (run.memoized ? "true" : "false") << ",\n"
     << "  \"rules_executed\": " << run.rules_executed << ",\n"
     << "  \"memo_hits\": " << run.memo_hits << ",\n"
     << "  \"memo_misses\": " << run.memo_misses << ",\n"
     << "  \"memo_invalidated\": " << run.memo_invalidated << ",\n"
     << "  \"errors\": " << run.errors() << ",\n"
     << "  \"warnings\": " << run.warnings() << ",\n"
     << "  \"findings\": [";
  for (std::size_t i = 0; i < run.findings.size(); ++i) {
    const auto& d = run.findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"rule\": \"" << json_escape(d.rule_id) << "\", "
       << "\"severity\": \"" << to_string(d.severity) << "\", "
       << "\"model\": \"" << json_escape(d.where.model) << "\", "
       << "\"operation\": \"" << json_escape(d.where.operation) << "\", "
       << "\"pfsm\": \"" << json_escape(d.where.pfsm) << "\", "
       << "\"message\": \"" << json_escape(d.message) << "\", "
       << "\"hint\": \"" << json_escape(d.hint) << "\", "
       << "\"source\": \"" << json_escape(d.source_hint) << "\"}";
  }
  os << (run.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

std::string emit_sarif(const LintRun& run) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"" << kSarifSchema << "\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"" << kToolName << "\",\n"
     << "          \"version\": \"" << kToolVersion << "\",\n"
     << "          \"informationUri\": \"" << kToolUri << "\",\n"
     << "          \"rules\": [";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const auto& info = rules[i].info;
    os << (i == 0 ? "\n" : ",\n")
       << "            {\"id\": \"" << info.id << "\", "
       << "\"shortDescription\": {\"text\": \"" << json_escape(info.summary)
       << "\"}, "
       << "\"defaultConfiguration\": {\"level\": \""
       << sarif_level(info.severity) << "\"}, "
       << "\"properties\": {\"group\": \"" << info.group << "\"}}";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (std::size_t i = 0; i < run.findings.size(); ++i) {
    const auto& d = run.findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << "        {\"ruleId\": \"" << json_escape(d.rule_id) << "\", "
       << "\"ruleIndex\": " << rule_index(d.rule_id) << ", "
       << "\"level\": \"" << sarif_level(d.severity) << "\", "
       << "\"message\": {\"text\": \"" << json_escape(d.message) << "\"}, "
       << "\"locations\": [{";
    // Models without a source hint still get a physicalLocation: a
    // stable synthetic "models/<slug>" URI so code scanning can group
    // runtime-built chains instead of dropping the location entirely.
    const std::string uri =
        d.source_hint.empty() ? synthetic_uri(d.where.model) : d.source_hint;
    os << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(uri) << "\", \"uriBaseId\": \"%SRCROOT%\"}, "
       << "\"region\": {\"startLine\": 1}}, ";
    os << "\"logicalLocations\": [{\"fullyQualifiedName\": \""
       << json_escape(d.where.qualified()) << "\", \"kind\": \"object\"}]"
       << "}]}";
  }
  os << (run.findings.empty() ? "]\n" : "\n      ]\n")
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace dfsm::staticlint
