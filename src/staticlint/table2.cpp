#include "staticlint/table2.h"

#include <array>
#include <utility>

namespace dfsm::staticlint {

namespace {

struct Row {
  std::string_view name;
  Table2Entry entry;
};

// One row per registered model, keyed by the model's exact name.
// Counts are {object type, content/attribute, reference consistency}.
// The seven paper models total 16 pFSMs (Table 2); the format-string
// family rows follow the paper's §3.2 three-activity argument with the
// same two-operation shape as rpc.statd.
constexpr std::array<Row, 10> kTable2 = {{
    {"Sendmail Signed Integer Overflow (Figure 3)", {1, 1, 1}},
    {"NULL HTTPD Heap Overflow (Figure 4)", {0, 2, 2}},
    {"xterm Log File Race Condition (Figure 5)", {0, 1, 1}},
    {"Solaris Rwall Arbitrary File Corruption (Figure 6)", {1, 1, 0}},
    {"IIS Filename Superfluous Decoding (Figure 7)", {0, 1, 0}},
    {"GHTTPD Log() Buffer Overflow on Stack ([21])", {0, 1, 1}},
    {"rpc.statd Remote Format String ([21])", {0, 1, 1}},
    {"format-string family: wu-ftpd #1387 (SITE EXEC)", {0, 1, 1}},
    {"format-string family: splitvt #2210 (setuid)", {0, 1, 1}},
    {"format-string family: icecast #2264 (print_client)", {0, 1, 1}},
}};

}  // namespace

std::optional<Table2Entry> table2_entry(std::string_view model_name) {
  for (const auto& row : kTable2) {
    if (row.name == model_name) return row.entry;
  }
  return std::nullopt;
}

}  // namespace dfsm::staticlint
