#include "staticlint/registry.h"

#include <array>

#include "apps/models.h"

namespace dfsm::staticlint {

namespace {

struct Origin {
  std::string_view needle;  ///< substring of the model name
  std::string_view file;
};

constexpr std::array<Origin, 8> kOrigins = {{
    {"Sendmail", "src/apps/sendmail.cpp"},
    {"NULL HTTPD", "src/apps/nullhttpd.cpp"},
    {"xterm", "src/apps/xterm.cpp"},
    {"Rwall", "src/apps/rwall.cpp"},
    {"IIS", "src/apps/iis.cpp"},
    {"GHTTPD", "src/apps/ghttpd.cpp"},
    {"rpc.statd", "src/apps/rpcstatd.cpp"},
    {"format-string family", "src/apps/fmtfamily.cpp"},
}};

}  // namespace

std::string source_hint_for(std::string_view model_name) {
  for (const auto& o : kOrigins) {
    if (model_name.find(o.needle) != std::string_view::npos) {
      return std::string{o.file};
    }
  }
  return "";
}

std::vector<LintModel> curated_lint_models() {
  std::vector<LintModel> out;
  for (const auto& m : apps::all_models()) {
    out.push_back(LintModel::from_model(m, source_hint_for(m.name())));
  }
  return out;
}

}  // namespace dfsm::staticlint
