// registry.h — the curated model set the linter and the dfsm_lint CLI
// sweep, with source hints for SARIF physical locations.
#ifndef DFSM_STATICLINT_REGISTRY_H
#define DFSM_STATICLINT_REGISTRY_H

#include <string>
#include <string_view>
#include <vector>

#include "staticlint/model_ir.h"

namespace dfsm::staticlint {

/// IR snapshots of every curated model (apps::all_models(): the seven
/// paper case studies plus the three format-string-family profiles),
/// each tagged with the src/apps file that defines it.
[[nodiscard]] std::vector<LintModel> curated_lint_models();

/// Repo-relative file defining a curated model, or "" if unknown.
[[nodiscard]] std::string source_hint_for(std::string_view model_name);

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_REGISTRY_H
