// memo.h — the fingerprint-keyed lint memo store (DESIGN.md §13).
//
// lint_chain() turns every runtime-built chain — discovery probes,
// fault-campaign trials, attack_graph compound compositions, loadgen
// monitor models — into a lint pass, and most of those chains are
// IDENTICAL from lint's point of view from one invocation to the next.
// A LintMemoStore keeps per-(model, rule) findings alive across lint()
// calls, so re-linting an unchanged model executes ZERO rules: every
// cell is a pure cache hit (telemetry-asserted in tests).
//
// Keying and soundness (same contract as analysis::SweepMemoStore):
//   * the FULL key is (model name, rule id), compared by exact equality;
//     the 64-bit hash only buckets, so a hash collision cannot alias
//     entries by construction;
//   * every entry carries the model's structural fingerprint
//     (staticlint::fingerprint over EVERY IR field a rule can read). A
//     lookup whose caller-side fingerprint differs finds a STALE entry:
//     the model changed since the entry was written. The entry is
//     dropped atomically (SharedLruStore::erase_if), counted in
//     Stats::invalidated, and the lookup misses — so editing one model
//     invalidates exactly that model's cells and nothing else;
//   * rules are pure functions of the IR (rules.h contract), so a cell
//     keyed by (name, rule) and validated by the full-IR fingerprint can
//     never serve findings the current model would not produce. Reusing
//     one model NAME for structurally different chains is fine — the
//     fingerprint catches it; that is the invalidation path the fault
//     campaign's fingerprint-thrash trials exercise.
#ifndef DFSM_STATICLINT_MEMO_H
#define DFSM_STATICLINT_MEMO_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "runtime/shared_store.h"
#include "staticlint/diagnostic.h"

namespace dfsm::staticlint {

/// Full structural key of one memoized lint cell.
struct LintMemoKey {
  std::string model;  ///< LintModel::name
  std::string rule;   ///< rule id, e.g. "DR001"

  [[nodiscard]] bool operator==(const LintMemoKey&) const = default;
};

struct LintMemoKeyHash {
  [[nodiscard]] std::size_t operator()(const LintMemoKey& k) const noexcept {
    core::Fingerprinter fp;
    fp.mix(k.model).mix(k.rule);
    return static_cast<std::size_t>(fp.digest());
  }
};

/// One cached cell: the rule's findings on the model, validated by the
/// model's full-IR fingerprint.
struct LintMemoEntry {
  std::uint64_t model_fingerprint = 0;
  std::vector<Diagnostic> findings;
};

/// Thread-safe cross-lint memo store. Individually thread-safe
/// operations; deterministic hit/miss/invalidation COUNTS are a caller
/// contract — the linter's three-phase fill (serial lookup, parallel
/// rule execution, serial insert) is the canonical user, mirroring the
/// sweep engine (DESIGN.md §11).
class LintMemoStore {
 public:
  struct Stats {
    std::size_t hits = 0;         ///< fresh-fingerprint lookups served
    std::size_t misses = 0;       ///< absent entries
    std::size_t invalidated = 0;  ///< stale entries dropped on lookup
    std::size_t evictions = 0;    ///< entries dropped by the LRU budget
    std::size_t size = 0;
    std::size_t max_entries = 0;
  };

  /// @param max_entries LRU entry budget; 0 = unbounded.
  explicit LintMemoStore(std::size_t max_entries = 0)
      : store_(max_entries) {}

  /// Returns the cell when present AND its fingerprint matches
  /// `model_fingerprint`. A mismatch erases the stale cell atomically,
  /// counts an invalidation, and reports a miss. `invalidated`, when
  /// non-null, is set to whether THIS lookup dropped a stale cell.
  [[nodiscard]] std::optional<LintMemoEntry> lookup(
      const LintMemoKey& key, std::uint64_t model_fingerprint,
      bool* invalidated = nullptr);

  /// Inserts (or refreshes) a cell; `entry.model_fingerprint` must
  /// already be set by the caller.
  void insert(const LintMemoKey& key, LintMemoEntry entry) {
    store_.put(key, std::move(entry));
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  void clear();

  /// Keys most-recently-used first (test hook; see SharedLruStore).
  [[nodiscard]] std::vector<LintMemoKey> keys_by_recency() const {
    return store_.keys_by_recency();
  }

 private:
  runtime::SharedLruStore<LintMemoKey, LintMemoEntry, LintMemoKeyHash> store_;
  mutable std::mutex counters_mu_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t invalidated_ = 0;
};

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_MEMO_H
