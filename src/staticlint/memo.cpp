#include "staticlint/memo.h"

namespace dfsm::staticlint {

std::optional<LintMemoEntry> LintMemoStore::lookup(
    const LintMemoKey& key, std::uint64_t model_fingerprint,
    bool* invalidated) {
  if (invalidated != nullptr) *invalidated = false;
  auto entry = store_.get(key);
  if (entry && entry->model_fingerprint != model_fingerprint) {
    // Stale: the model changed since this cell was written. Only this
    // model's cells can carry the old fingerprint, so invalidation never
    // touches a neighbour. The erase re-validates under the store lock
    // so a fresh cell re-inserted by a concurrent writer between the get
    // and here survives, and only the thread that actually dropped the
    // cell counts an invalidation.
    const bool erased = store_.erase_if(key, [&](const LintMemoEntry& e) {
      return e.model_fingerprint != model_fingerprint;
    });
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (erased) ++invalidated_;
    ++misses_;
    if (invalidated != nullptr) *invalidated = erased;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  if (!entry) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return entry;
}

LintMemoStore::Stats LintMemoStore::stats() const {
  const auto lru = store_.stats();
  Stats s;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    s.hits = hits_;
    s.misses = misses_;
    s.invalidated = invalidated_;
  }
  s.evictions = lru.evictions;
  s.size = store_.size();
  s.max_entries = store_.max_entries();
  return s;
}

void LintMemoStore::clear() { store_.clear(); }

}  // namespace dfsm::staticlint
