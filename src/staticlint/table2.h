// table2.h — the paper's Table 2 pFSM inventory, as lint ground truth.
//
// Table 2 lists, for every case-study vulnerability, how many pFSMs of
// each Figure-8 generic type its model contains. Rule TX002 cross-checks
// a registered model's actual inventory against this census: a model
// that drifts from its published row (a pFSM added, dropped, or
// retyped) is flagged before any object is ever evaluated through it.
#ifndef DFSM_STATICLINT_TABLE2_H
#define DFSM_STATICLINT_TABLE2_H

#include <cstddef>
#include <optional>
#include <string_view>

namespace dfsm::staticlint {

/// Expected pFSM counts per generic type for one Table 2 row.
struct Table2Entry {
  std::size_t object_type = 0;
  std::size_t content_attribute = 0;
  std::size_t reference_consistency = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return object_type + content_attribute + reference_consistency;
  }
};

/// The Table 2 row for a registered model name, if the paper covers it.
/// Models without a row (user-authored chains) are simply not checked.
[[nodiscard]] std::optional<Table2Entry> table2_entry(
    std::string_view model_name);

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_TABLE2_H
