#include "staticlint/baseline.h"

#include <cstddef>
#include <stdexcept>

namespace dfsm::staticlint {

namespace {

/// Reads the JSON string literal following `"key":` at/after `pos`.
/// Returns false when the key does not occur at/after pos; `pos` is
/// advanced past the closing quote on success.
bool read_string_after_key(const std::string& text, const std::string& key,
                           std::size_t& pos, std::string& out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, pos);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
          text[i] == '\r' || text[i] == ':')) {
    ++i;
  }
  if (i >= text.size() || text[i] != '"') return false;
  ++i;
  out.clear();
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char esc = text[i + 1];
      switch (esc) {
        case '"': out += '"'; i += 2; break;
        case '\\': out += '\\'; i += 2; break;
        case '/': out += '/'; i += 2; break;
        case 'n': out += '\n'; i += 2; break;
        case 'r': out += '\r'; i += 2; break;
        case 't': out += '\t'; i += 2; break;
        case 'u': {
          // Our emitter only \u-escapes control characters; decode the
          // low byte and move on.
          unsigned value = 0;
          std::size_t j = i + 2;
          for (; j < i + 6 && j < text.size(); ++j) {
            const char c = text[j];
            value <<= 4;
            if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
          }
          out += static_cast<char>(value & 0xff);
          i = j;
          break;
        }
        default: out += esc; i += 2; break;
      }
    } else {
      out += text[i++];
    }
  }
  if (i >= text.size()) return false;
  pos = i + 1;  // past the closing quote
  return true;
}

}  // namespace

Baseline Baseline::from_sarif(const std::string& sarif_text) {
  const std::size_t results_at = sarif_text.find("\"results\"");
  if (results_at == std::string::npos) {
    throw std::invalid_argument(
        "baseline file is not SARIF: no \"results\" array");
  }
  Baseline b;
  // Scan result objects in document order. Each of our results writes
  // "ruleId" first and its logicalLocations "fullyQualifiedName" after;
  // the driver's rule descriptors use "id", so "ruleId" never matches
  // anything but a result.
  std::size_t pos = results_at;
  std::string rule_id;
  while (read_string_after_key(sarif_text, "ruleId", pos, rule_id)) {
    // The qualified name belongs to THIS result only if it appears
    // before the next result's ruleId.
    const std::size_t next_rule = sarif_text.find("\"ruleId\"", pos);
    std::size_t qn_pos = pos;
    std::string qualified;
    if (read_string_after_key(sarif_text, "fullyQualifiedName", qn_pos,
                              qualified) &&
        (next_rule == std::string::npos || qn_pos <= next_rule)) {
      pos = qn_pos;
    } else {
      qualified.clear();
    }
    b.entries_.emplace_back(rule_id, qualified);
  }
  return b;
}

bool Baseline::contains(const Diagnostic& d) const {
  const std::string qualified = d.where.qualified();
  for (const auto& [rule, name] : entries_) {
    if (rule == d.rule_id && name == qualified) return true;
  }
  return false;
}

BaselineSplit apply_baseline(const LintRun& run, const Baseline& baseline) {
  BaselineSplit split;
  for (const auto& d : run.findings) {
    (baseline.contains(d) ? split.suppressed : split.fresh).push_back(d);
  }
  return split;
}

}  // namespace dfsm::staticlint
