// baseline.h — SARIF baseline suppression for campaign-generated lint.
//
// Campaigns mint thousands of models, and some carry findings BY DESIGN
// (the curated xterm/rwall race notes, fixture mutants). Gating CI on
// "no findings at all" would freeze those legitimate fixtures; gating on
// nothing lets regressions through. The middle path is the classic
// baseline workflow: a previous run's SARIF is the accepted state, and
// only findings NOT in the baseline count against the gate
// (`dfsm_lint --baseline old.sarif`).
//
// A finding is identified by (ruleId, fullyQualifiedName) — the rule
// plus the model/operation/pfsm logical path, the two fields our own
// SARIF always emits for every result. Message text is deliberately NOT
// part of the identity, so rewording a diagnostic does not un-suppress
// the finding. The parser reads exactly the SARIF our emitter writes
// (and any SARIF that keeps ruleId before locations inside each
// result object); it is a scanner, not a general JSON parser.
#ifndef DFSM_STATICLINT_BASELINE_H
#define DFSM_STATICLINT_BASELINE_H

#include <string>
#include <utility>
#include <vector>

#include "staticlint/diagnostic.h"
#include "staticlint/linter.h"

namespace dfsm::staticlint {

/// The set of known (ruleId, fullyQualifiedName) findings of a previous
/// SARIF run.
class Baseline {
 public:
  /// Parses baseline identities out of SARIF text. Results with no
  /// logical location contribute (ruleId, "") entries. Throws
  /// std::invalid_argument when the text has no SARIF results array.
  [[nodiscard]] static Baseline from_sarif(const std::string& sarif_text);

  [[nodiscard]] bool contains(const Diagnostic& d) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// A lint run split against a baseline.
struct BaselineSplit {
  std::vector<Diagnostic> fresh;       ///< findings NOT in the baseline
  std::vector<Diagnostic> suppressed;  ///< findings the baseline covers
};

/// Partitions `run.findings` (order-preserving in both halves). Exit
/// logic should consider `fresh` only.
[[nodiscard]] BaselineSplit apply_baseline(const LintRun& run,
                                           const Baseline& baseline);

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_BASELINE_H
