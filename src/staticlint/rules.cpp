#include "staticlint/rules.h"

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <utility>

#include "fssim/schedule.h"
#include "staticlint/table2.h"

namespace dfsm::staticlint {

namespace {

using core::PfsmType;
using core::PredicateKind;

Diagnostic make(const RuleInfo& info, Location where, std::string message,
                std::string hint) {
  Diagnostic d;
  d.rule_id = info.id;
  d.severity = info.severity;
  d.where = std::move(where);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

// --- structural --------------------------------------------------------

void st001_chain_empty(const RuleInfo& info, const LintModel& m,
                       std::vector<Diagnostic>& out) {
  if (!m.operations.empty()) return;
  out.push_back(make(info, Location{m.name, "", ""},
                     "the exploit chain has no operations",
                     "add at least one operation (paper §4 step 3: a chain "
                     "cascades one or more vulnerable operations)"));
}

void st002_gate_arity(const RuleInfo& info, const LintModel& m,
                      std::vector<Diagnostic>& out) {
  if (m.gates.size() == m.operations.size()) return;
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the chain has " + std::to_string(m.operations.size()) +
          " operations but " + std::to_string(m.gates.size()) +
          " propagation gates",
      "pair exactly one gate with each operation; the last gate carries "
      "the attack consequence"));
}

void st003_operation_empty(const RuleInfo& info, const LintModel& m,
                           std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    if (!op.pfsms.empty()) continue;
    out.push_back(make(info, Location{m.name, op.name, ""},
                       "the operation contains no pFSMs",
                       "model at least one elementary activity (Observation "
                       "2: an operation is a series of pFSMs)"));
  }
}

void st004_duplicate_operation(const RuleInfo& info, const LintModel& m,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < m.operations.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (m.operations[j].name != m.operations[i].name) continue;
      out.push_back(make(info, Location{m.name, m.operations[i].name, ""},
                         "duplicate operation name (also used by operation " +
                             std::to_string(j + 1) + " of the chain)",
                         "rename one of the operations; names locate "
                         "findings and Table 2 rows"));
      break;
    }
  }
}

void st005_duplicate_pfsm(const RuleInfo& info, const LintModel& m,
                          std::vector<Diagnostic>& out) {
  std::vector<std::pair<std::string, std::string>> seen;  // (pfsm, op)
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      bool dup = false;
      for (const auto& [name, first_op] : seen) {
        if (name != p.name) continue;
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "duplicate pFSM name (first used in operation '" +
                               first_op + "')",
                           "number pFSMs uniquely across the model, as the "
                           "paper figures do (pFSM1, pFSM2, ...)"));
        dup = true;
        break;
      }
      if (!dup) seen.emplace_back(p.name, op.name);
    }
  }
}

void st006_empty_activity(const RuleInfo& info, const LintModel& m,
                          std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.activity.empty()) continue;
      out.push_back(make(info, Location{m.name, op.name, p.name},
                         "the pFSM has no elementary-activity description",
                         "describe the activity the pFSM models (e.g. "
                         "\"write i to tTvect[x]\")"));
    }
  }
}

void st007_empty_predicate(const RuleInfo& info, const LintModel& m,
                           std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (p.spec.description.empty() || p.spec.description == "-") {
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "the specification predicate has no description",
                           "state the security predicate in question form "
                           "(the Table 2 'question' column)"));
      }
      // "-" is the documented placeholder for "no implementation check
      // exists" (Pfsm::unchecked); only a truly empty label is flagged.
      if (p.impl.description.empty()) {
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "the implementation predicate has no description",
                           "describe what the code actually enforces, or "
                           "use \"-\" for an absent check"));
      }
    }
  }
}

void st008_missing_consequence(const RuleInfo& info, const LintModel& m,
                               std::vector<Diagnostic>& out) {
  if (m.gates.empty() || m.gates.size() != m.operations.size()) return;
  if (!m.gates.back().empty()) return;
  out.push_back(make(info, Location{m.name, "", ""},
                     "the final propagation gate names no consequence",
                     "name the attack consequence on the last gate (e.g. "
                     "\"Execute Mcode\")"));
}

// --- lemma -------------------------------------------------------------

void lm001_all_secure(const RuleInfo& info, const LintModel& m,
                      std::vector<Diagnostic>& out) {
  if (!m.has_metadata || m.operations.empty()) return;
  std::size_t pfsms = 0;
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.declared_secure) return;
      ++pfsms;
    }
  }
  if (pfsms == 0) return;
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the model is registered as a vulnerability but every pFSM is "
      "declared secure; per the Lemma it cannot be exploited",
      "mark the pFSM(s) whose implementation deviates from the spec as "
      "vulnerable (Pfsm::unchecked or an explicit impl predicate)"));
}

void lm002_secure_impl_mismatch(const RuleInfo& info, const LintModel& m,
                                std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.declared_secure) continue;
      if (p.spec.description == p.impl.description &&
          p.spec.kind == p.impl.kind) {
        continue;
      }
      out.push_back(make(
          info, Location{m.name, op.name, p.name},
          "the pFSM is declared secure but its implementation predicate "
          "('" + p.impl.description + "', " + to_string(p.impl.kind) +
              ") differs from its spec ('" + p.spec.description + "', " +
              to_string(p.spec.kind) + ")",
          "a secure pFSM enforces exactly its specification (Lemma "
          "statement 1); construct it with Pfsm::secure"));
    }
  }
}

void lm003_unreachable(const RuleInfo& info, const LintModel& m,
                       std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 1 < m.operations.size(); ++i) {
    for (const auto& p : m.operations[i].pfsms) {
      if (p.spec.kind != PredicateKind::kRejectAll ||
          p.impl.kind != PredicateKind::kRejectAll) {
        continue;
      }
      const std::size_t downstream = m.operations.size() - i - 1;
      out.push_back(make(
          info, Location{m.name, m.operations[i].name, p.name},
          "the pFSM rejects every object by construction, so this "
          "operation always foils the chain and the " +
              std::to_string(downstream) +
              " downstream operation(s) are unreachable dead weight",
          "drop the unreachable operations or replace the reject-all "
          "predicate with the real check (Lemma statement 2: one secure "
          "operation already foils the cascade)"));
      return;  // downstream operations are dead; deeper findings are noise
    }
  }
}

// --- taxonomy ----------------------------------------------------------

/// The Figure 8 trio maps question forms to generic types: reference-
/// consistency questions ask whether a binding is unchanged between
/// check and use; object-type questions ask whether the object is of the
/// operation's expected type; everything else verifies content or
/// attributes (the paper's dominant, unmarked case).
enum class QuestionForm { kReference, kObjectType, kContentAttribute };

bool contains_any(const std::string& text,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (text.find(n) != std::string::npos) return true;
  }
  return false;
}

QuestionForm question_form(const std::string& q) {
  if (contains_any(q, {"unchanged", "re-bound", "rebound", "between check",
                       "not modified since"})) {
    return QuestionForm::kReference;
  }
  if (contains_any(q, {"represents a", "represents an", " is of type",
                       " is a ", " is an "})) {
    return QuestionForm::kObjectType;
  }
  return QuestionForm::kContentAttribute;
}

PfsmType expected_type(QuestionForm f) {
  switch (f) {
    case QuestionForm::kReference: return PfsmType::kReferenceConsistencyCheck;
    case QuestionForm::kObjectType: return PfsmType::kObjectTypeCheck;
    case QuestionForm::kContentAttribute:
      return PfsmType::kContentAttributeCheck;
  }
  return PfsmType::kContentAttributeCheck;
}

void tx001_type_question(const RuleInfo& info, const LintModel& m,
                         std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      const PfsmType want = expected_type(question_form(p.spec.description));
      if (want == p.type) continue;
      out.push_back(make(
          info, Location{m.name, op.name, p.name},
          std::string("the question '") + p.spec.description +
              "' reads as a " + to_string(want) + " but the pFSM is typed " +
              to_string(p.type),
          "retype the pFSM or rephrase the question so the Figure 8 "
          "classification and the predicate agree"));
    }
  }
}

void tx002_table2_census(const RuleInfo& info, const LintModel& m,
                         std::vector<Diagnostic>& out) {
  const auto expected = table2_entry(m.name);
  if (!expected) return;
  std::array<std::size_t, 3> actual{};
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      actual[static_cast<std::size_t>(p.type)]++;
    }
  }
  const std::array<std::size_t, 3> want = {
      expected->object_type, expected->content_attribute,
      expected->reference_consistency};
  if (actual == want) return;
  const auto census = [](const std::array<std::size_t, 3>& c) {
    return std::to_string(c[0]) + " object type / " + std::to_string(c[1]) +
           " content-attribute / " + std::to_string(c[2]) +
           " reference-consistency";
  };
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the model's pFSM inventory (" + census(actual) +
          ") does not match its Table 2 row (" + census(want) + ")",
      "restore the published inventory, or update the Table 2 census in "
      "staticlint/table2.cpp if the model legitimately changed"));
}

// --- race (static TOCTOU over the fssim schedule surface) --------------

/// True for the pFSM types that CHECK something about an object (the
/// "time of check" half of a TOCTOU window). Reference-consistency pFSMs
/// are the "use" half: they assert the binding is unchanged at use time.
bool is_checking_type(PfsmType t) {
  return t == PfsmType::kObjectTypeCheck ||
         t == PfsmType::kContentAttributeCheck;
}

void dr001_check_then_use(const RuleInfo& info, const LintModel& m,
                          std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (std::size_t j = 0; j < op.pfsms.size(); ++j) {
      const auto& use = op.pfsms[j];
      if (use.type != PfsmType::kReferenceConsistencyCheck) continue;
      if (use.declared_secure) continue;
      if (!fssim::crosses_schedule_surface(use.activity)) continue;
      // An earlier checking pFSM in the same operation is the "check"
      // half; the yielding, unchecked reference-consistency pFSM is the
      // "use" half the scheduler can race.
      for (std::size_t i = 0; i < j; ++i) {
        if (!is_checking_type(op.pfsms[i].type)) continue;
        const auto yields = fssim::yield_points(use.activity);
        out.push_back(make(
            info, Location{m.name, op.name, use.name},
            "check-then-use window: '" + op.pfsms[i].name +
                "' validates the object, then this unchecked "
                "reference-consistency step crosses the schedule surface "
                "(" + yields.front().verb + " " + yields.front().path +
                ") where the binding can be switched",
            "re-validate the binding at use time (fstat-after-open "
            "discipline) or declare the pFSM secure once the "
            "implementation pins the checked object (paper Figure 5)"));
        break;  // one finding per use-half pFSM
      }
    }
  }
}

void dr002_shared_object_across_operations(const RuleInfo& info,
                                           const LintModel& m,
                                           std::vector<Diagnostic>& out) {
  // Collect, per (operation, pfsm), the unchecked path touches.
  struct Touch {
    std::size_t op;
    std::size_t pfsm;
    std::string path;
  };
  std::vector<Touch> touches;
  for (std::size_t oi = 0; oi < m.operations.size(); ++oi) {
    for (std::size_t pi = 0; pi < m.operations[oi].pfsms.size(); ++pi) {
      const auto& p = m.operations[oi].pfsms[pi];
      if (p.declared_secure) continue;
      for (const auto& yp : fssim::yield_points(p.activity)) {
        touches.push_back(Touch{oi, pi, yp.path});
      }
    }
  }
  // A later operation re-touching a path an earlier operation touched,
  // both unchecked, is the rwall Figure 6 shape: the object can change
  // between the two gate-ordered touches.
  for (std::size_t b = 0; b < touches.size(); ++b) {
    for (std::size_t a = 0; a < b; ++a) {
      if (touches[a].op >= touches[b].op) continue;
      if (touches[a].path != touches[b].path) continue;
      const auto& earlier = m.operations[touches[a].op];
      const auto& later = m.operations[touches[b].op];
      const auto& use = later.pfsms[touches[b].pfsm];
      out.push_back(make(
          info, Location{m.name, later.name, use.name},
          "shared object " + touches[b].path +
              " is re-read here without a consistency check after "
              "operation '" + earlier.name + "' (pFSM '" +
              earlier.pfsms[touches[a].pfsm].name + "') touched it; the "
              "object can change between the gate-ordered touches",
          "re-validate the shared object at the second touch or bind it "
          "once and pass the binding through the gate (paper Figure 6)"));
      // One finding per use-half pFSM: skip remaining earlier touches
      // and remaining paths of this same pfsm.
      const std::size_t op = touches[b].op, pf = touches[b].pfsm;
      while (b + 1 < touches.size() && touches[b + 1].op == op &&
             touches[b + 1].pfsm == pf) {
        ++b;
      }
      break;
    }
  }
}

void dr003_vestigial_guard(const RuleInfo& info, const LintModel& m,
                           std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    bool any_yield = false;
    for (const auto& p : op.pfsms) {
      if (fssim::crosses_schedule_surface(p.activity)) {
        any_yield = true;
        break;
      }
    }
    if (any_yield) continue;
    for (const auto& p : op.pfsms) {
      if (p.type != PfsmType::kReferenceConsistencyCheck) continue;
      if (!p.declared_secure) continue;
      out.push_back(make(
          info, Location{m.name, op.name, p.name},
          "declared-secure reference-consistency check guards an "
          "operation in which no activity crosses the schedule surface; "
          "the guard has nothing to re-validate",
          "drop the vestigial guard or name the filesystem step (verb + "
          "absolute path) whose binding it pins"));
    }
  }
}

void dr004_unguarded_yields(const RuleInfo& info, const LintModel& m,
                            std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    std::size_t yielding = 0;
    bool has_ref_check = false;
    for (const auto& p : op.pfsms) {
      if (fssim::crosses_schedule_surface(p.activity)) ++yielding;
      if (p.type == PfsmType::kReferenceConsistencyCheck) {
        has_ref_check = true;
      }
    }
    if (yielding < 2 || has_ref_check) continue;
    out.push_back(make(
        info, Location{m.name, op.name, ""},
        "the operation crosses the schedule surface " +
            std::to_string(yielding) +
            " times with no reference-consistency check between the "
            "touches",
        "add a reference-consistency pFSM pinning the binding across the "
        "yield points, or merge the touches into one atomic step"));
  }
}

// --- graph (attack_graph compound-composition consistency) -------------

/// Privilege lattice rank for GR003: none < user < root. Unknown names
/// rank highest so fixture typos don't mask a real mismatch.
std::size_t privilege_rank(const std::string& p) {
  if (p == "none") return 0;
  if (p == "user") return 1;
  if (p == "root") return 2;
  return 3;
}

void gr001_dangling_precondition(const RuleInfo& info, const LintModel& m,
                                 std::vector<Diagnostic>& out) {
  for (std::size_t k = 1; k < m.compound.size(); ++k) {
    const auto& step = m.compound[k];
    if (step.pre_privilege == "none") continue;  // attacker-held baseline
    bool produced = false;
    for (std::size_t j = 0; j < m.compound.size(); ++j) {
      if (j == k) continue;
      if (m.compound[j].con_host == step.pre_host) {
        produced = true;
        break;
      }
    }
    if (produced) continue;
    out.push_back(make(
        info, Location{m.name, step.model, ""},
        "dangling precondition: step " + std::to_string(k + 1) +
            " requires " + step.pre_privilege + "@" + step.pre_host +
            " but no step in the composition establishes anything on "
            "host '" + step.pre_host + "'",
        "compose a producing exploit step for the host first, or start "
        "the path from a fact the attacker already holds"));
  }
}

void gr002_cyclic_precondition(const RuleInfo& info, const LintModel& m,
                               std::vector<Diagnostic>& out) {
  for (std::size_t k = 1; k < m.compound.size(); ++k) {
    const auto& step = m.compound[k];
    if (step.pre_privilege == "none") continue;
    bool upstream = false;
    bool downstream = false;
    for (std::size_t j = 0; j < m.compound.size(); ++j) {
      if (j == k) continue;
      if (m.compound[j].con_host != step.pre_host) continue;
      (j < k ? upstream : downstream) = true;
    }
    if (upstream || !downstream) continue;  // GR001 covers the no-producer case
    out.push_back(make(
        info, Location{m.name, step.model, ""},
        "cyclic precondition: step " + std::to_string(k + 1) +
            " requires " + step.pre_privilege + "@" + step.pre_host +
            " which is only established by a LATER step of the "
            "composition",
        "reorder the composition so producers precede consumers; an "
        "attack path consumes facts in edge order"));
  }
}

void gr003_privilege_mismatch(const RuleInfo& info, const LintModel& m,
                              std::vector<Diagnostic>& out) {
  for (std::size_t k = 1; k < m.compound.size(); ++k) {
    const auto& step = m.compound[k];
    if (step.pre_privilege == "none") continue;
    const std::size_t need = privilege_rank(step.pre_privilege);
    bool any_upstream = false;
    std::size_t best = 0;
    std::string best_priv;
    for (std::size_t j = 0; j < k; ++j) {
      if (m.compound[j].con_host != step.pre_host) continue;
      const std::size_t got = privilege_rank(m.compound[j].con_privilege);
      if (!any_upstream || got > best) {
        best = got;
        best_priv = m.compound[j].con_privilege;
      }
      any_upstream = true;
    }
    if (!any_upstream || best >= need) continue;  // GR001/GR002 own absence
    out.push_back(make(
        info, Location{m.name, step.model, ""},
        "consequence/precondition mismatch: step " + std::to_string(k + 1) +
            " requires " + step.pre_privilege + "@" + step.pre_host +
            " but the strongest upstream consequence on that host is "
            "only '" + best_priv + "'",
        "insert a privilege-escalation step on the host, or weaken the "
        "consuming rule's precondition to what the producer delivers"));
  }
}

const std::vector<Rule>& registry() {
  static const std::vector<Rule> rules = {
      {{"ST001", "structural", Severity::kError,
        "exploit chain has no operations"},
       st001_chain_empty},
      {{"ST002", "structural", Severity::kError,
        "propagation gates do not pair 1:1 with operations"},
       st002_gate_arity},
      {{"ST003", "structural", Severity::kError,
        "operation has no pFSMs"},
       st003_operation_empty},
      {{"ST004", "structural", Severity::kError,
        "duplicate operation name within a chain"},
       st004_duplicate_operation},
      {{"ST005", "structural", Severity::kError,
        "duplicate pFSM name within a model"},
       st005_duplicate_pfsm},
      {{"ST006", "structural", Severity::kWarning,
        "pFSM has an empty elementary-activity description"},
       st006_empty_activity},
      {{"ST007", "structural", Severity::kWarning,
        "predicate has an empty description"},
       st007_empty_predicate},
      {{"ST008", "structural", Severity::kError,
        "final propagation gate names no consequence"},
       st008_missing_consequence},
      {{"LM001", "lemma", Severity::kError,
        "vulnerability model in which every pFSM is declared secure"},
       lm001_all_secure},
      {{"LM002", "lemma", Severity::kError,
        "declared-secure pFSM whose implementation differs from its spec"},
       lm002_secure_impl_mismatch},
      {{"LM003", "lemma", Severity::kWarning,
        "operations unreachable behind a reject-all pFSM"},
       lm003_unreachable},
      {{"TX001", "taxonomy", Severity::kWarning,
        "pFSM type disagrees with its question form"},
       tx001_type_question},
      {{"TX002", "taxonomy", Severity::kError,
        "pFSM inventory disagrees with the model's Table 2 row"},
       tx002_table2_census},
      // DR001/DR002 are notes by design: they mark the two KNOWN curated
      // races (xterm Figure 5, rwall Figure 6) without tripping
      // `--fail-on warning` gates over the registry.
      {{"DR001", "race", Severity::kNote,
        "check-then-use window across the schedule surface (TOCTOU)"},
       dr001_check_then_use},
      {{"DR002", "race", Severity::kNote,
        "shared object re-touched across gate-ordered operations"},
       dr002_shared_object_across_operations},
      {{"DR003", "race", Severity::kWarning,
        "declared-secure consistency check with nothing to re-validate"},
       dr003_vestigial_guard},
      {{"DR004", "race", Severity::kWarning,
        "multiple schedule-surface crossings with no consistency check"},
       dr004_unguarded_yields},
      {{"GR001", "graph", Severity::kError,
        "compound step precondition no composed step produces"},
       gr001_dangling_precondition},
      {{"GR002", "graph", Severity::kError,
        "compound step precondition produced only downstream (cycle)"},
       gr002_cyclic_precondition},
      {{"GR003", "graph", Severity::kError,
        "upstream consequence privilege below step precondition"},
       gr003_privilege_mismatch},
  };
  return rules;
}

}  // namespace

const std::vector<Rule>& all_rules() { return registry(); }

const Rule* find_rule(std::string_view id) {
  for (const auto& r : all_rules()) {
    if (id == r.info.id) return &r;
  }
  return nullptr;
}

}  // namespace dfsm::staticlint
