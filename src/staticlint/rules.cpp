#include "staticlint/rules.h"

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <utility>

#include "staticlint/table2.h"

namespace dfsm::staticlint {

namespace {

using core::PfsmType;
using core::PredicateKind;

Diagnostic make(const RuleInfo& info, Location where, std::string message,
                std::string hint) {
  Diagnostic d;
  d.rule_id = info.id;
  d.severity = info.severity;
  d.where = std::move(where);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

// --- structural --------------------------------------------------------

void st001_chain_empty(const RuleInfo& info, const LintModel& m,
                       std::vector<Diagnostic>& out) {
  if (!m.operations.empty()) return;
  out.push_back(make(info, Location{m.name, "", ""},
                     "the exploit chain has no operations",
                     "add at least one operation (paper §4 step 3: a chain "
                     "cascades one or more vulnerable operations)"));
}

void st002_gate_arity(const RuleInfo& info, const LintModel& m,
                      std::vector<Diagnostic>& out) {
  if (m.gates.size() == m.operations.size()) return;
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the chain has " + std::to_string(m.operations.size()) +
          " operations but " + std::to_string(m.gates.size()) +
          " propagation gates",
      "pair exactly one gate with each operation; the last gate carries "
      "the attack consequence"));
}

void st003_operation_empty(const RuleInfo& info, const LintModel& m,
                           std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    if (!op.pfsms.empty()) continue;
    out.push_back(make(info, Location{m.name, op.name, ""},
                       "the operation contains no pFSMs",
                       "model at least one elementary activity (Observation "
                       "2: an operation is a series of pFSMs)"));
  }
}

void st004_duplicate_operation(const RuleInfo& info, const LintModel& m,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < m.operations.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (m.operations[j].name != m.operations[i].name) continue;
      out.push_back(make(info, Location{m.name, m.operations[i].name, ""},
                         "duplicate operation name (also used by operation " +
                             std::to_string(j + 1) + " of the chain)",
                         "rename one of the operations; names locate "
                         "findings and Table 2 rows"));
      break;
    }
  }
}

void st005_duplicate_pfsm(const RuleInfo& info, const LintModel& m,
                          std::vector<Diagnostic>& out) {
  std::vector<std::pair<std::string, std::string>> seen;  // (pfsm, op)
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      bool dup = false;
      for (const auto& [name, first_op] : seen) {
        if (name != p.name) continue;
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "duplicate pFSM name (first used in operation '" +
                               first_op + "')",
                           "number pFSMs uniquely across the model, as the "
                           "paper figures do (pFSM1, pFSM2, ...)"));
        dup = true;
        break;
      }
      if (!dup) seen.emplace_back(p.name, op.name);
    }
  }
}

void st006_empty_activity(const RuleInfo& info, const LintModel& m,
                          std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.activity.empty()) continue;
      out.push_back(make(info, Location{m.name, op.name, p.name},
                         "the pFSM has no elementary-activity description",
                         "describe the activity the pFSM models (e.g. "
                         "\"write i to tTvect[x]\")"));
    }
  }
}

void st007_empty_predicate(const RuleInfo& info, const LintModel& m,
                           std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (p.spec.description.empty() || p.spec.description == "-") {
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "the specification predicate has no description",
                           "state the security predicate in question form "
                           "(the Table 2 'question' column)"));
      }
      // "-" is the documented placeholder for "no implementation check
      // exists" (Pfsm::unchecked); only a truly empty label is flagged.
      if (p.impl.description.empty()) {
        out.push_back(make(info, Location{m.name, op.name, p.name},
                           "the implementation predicate has no description",
                           "describe what the code actually enforces, or "
                           "use \"-\" for an absent check"));
      }
    }
  }
}

void st008_missing_consequence(const RuleInfo& info, const LintModel& m,
                               std::vector<Diagnostic>& out) {
  if (m.gates.empty() || m.gates.size() != m.operations.size()) return;
  if (!m.gates.back().empty()) return;
  out.push_back(make(info, Location{m.name, "", ""},
                     "the final propagation gate names no consequence",
                     "name the attack consequence on the last gate (e.g. "
                     "\"Execute Mcode\")"));
}

// --- lemma -------------------------------------------------------------

void lm001_all_secure(const RuleInfo& info, const LintModel& m,
                      std::vector<Diagnostic>& out) {
  if (!m.has_metadata || m.operations.empty()) return;
  std::size_t pfsms = 0;
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.declared_secure) return;
      ++pfsms;
    }
  }
  if (pfsms == 0) return;
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the model is registered as a vulnerability but every pFSM is "
      "declared secure; per the Lemma it cannot be exploited",
      "mark the pFSM(s) whose implementation deviates from the spec as "
      "vulnerable (Pfsm::unchecked or an explicit impl predicate)"));
}

void lm002_secure_impl_mismatch(const RuleInfo& info, const LintModel& m,
                                std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      if (!p.declared_secure) continue;
      if (p.spec.description == p.impl.description &&
          p.spec.kind == p.impl.kind) {
        continue;
      }
      out.push_back(make(
          info, Location{m.name, op.name, p.name},
          "the pFSM is declared secure but its implementation predicate "
          "('" + p.impl.description + "', " + to_string(p.impl.kind) +
              ") differs from its spec ('" + p.spec.description + "', " +
              to_string(p.spec.kind) + ")",
          "a secure pFSM enforces exactly its specification (Lemma "
          "statement 1); construct it with Pfsm::secure"));
    }
  }
}

void lm003_unreachable(const RuleInfo& info, const LintModel& m,
                       std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 1 < m.operations.size(); ++i) {
    for (const auto& p : m.operations[i].pfsms) {
      if (p.spec.kind != PredicateKind::kRejectAll ||
          p.impl.kind != PredicateKind::kRejectAll) {
        continue;
      }
      const std::size_t downstream = m.operations.size() - i - 1;
      out.push_back(make(
          info, Location{m.name, m.operations[i].name, p.name},
          "the pFSM rejects every object by construction, so this "
          "operation always foils the chain and the " +
              std::to_string(downstream) +
              " downstream operation(s) are unreachable dead weight",
          "drop the unreachable operations or replace the reject-all "
          "predicate with the real check (Lemma statement 2: one secure "
          "operation already foils the cascade)"));
      return;  // downstream operations are dead; deeper findings are noise
    }
  }
}

// --- taxonomy ----------------------------------------------------------

/// The Figure 8 trio maps question forms to generic types: reference-
/// consistency questions ask whether a binding is unchanged between
/// check and use; object-type questions ask whether the object is of the
/// operation's expected type; everything else verifies content or
/// attributes (the paper's dominant, unmarked case).
enum class QuestionForm { kReference, kObjectType, kContentAttribute };

bool contains_any(const std::string& text,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (text.find(n) != std::string::npos) return true;
  }
  return false;
}

QuestionForm question_form(const std::string& q) {
  if (contains_any(q, {"unchanged", "re-bound", "rebound", "between check",
                       "not modified since"})) {
    return QuestionForm::kReference;
  }
  if (contains_any(q, {"represents a", "represents an", " is of type",
                       " is a ", " is an "})) {
    return QuestionForm::kObjectType;
  }
  return QuestionForm::kContentAttribute;
}

PfsmType expected_type(QuestionForm f) {
  switch (f) {
    case QuestionForm::kReference: return PfsmType::kReferenceConsistencyCheck;
    case QuestionForm::kObjectType: return PfsmType::kObjectTypeCheck;
    case QuestionForm::kContentAttribute:
      return PfsmType::kContentAttributeCheck;
  }
  return PfsmType::kContentAttributeCheck;
}

void tx001_type_question(const RuleInfo& info, const LintModel& m,
                         std::vector<Diagnostic>& out) {
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      const PfsmType want = expected_type(question_form(p.spec.description));
      if (want == p.type) continue;
      out.push_back(make(
          info, Location{m.name, op.name, p.name},
          std::string("the question '") + p.spec.description +
              "' reads as a " + to_string(want) + " but the pFSM is typed " +
              to_string(p.type),
          "retype the pFSM or rephrase the question so the Figure 8 "
          "classification and the predicate agree"));
    }
  }
}

void tx002_table2_census(const RuleInfo& info, const LintModel& m,
                         std::vector<Diagnostic>& out) {
  const auto expected = table2_entry(m.name);
  if (!expected) return;
  std::array<std::size_t, 3> actual{};
  for (const auto& op : m.operations) {
    for (const auto& p : op.pfsms) {
      actual[static_cast<std::size_t>(p.type)]++;
    }
  }
  const std::array<std::size_t, 3> want = {
      expected->object_type, expected->content_attribute,
      expected->reference_consistency};
  if (actual == want) return;
  const auto census = [](const std::array<std::size_t, 3>& c) {
    return std::to_string(c[0]) + " object type / " + std::to_string(c[1]) +
           " content-attribute / " + std::to_string(c[2]) +
           " reference-consistency";
  };
  out.push_back(make(
      info, Location{m.name, "", ""},
      "the model's pFSM inventory (" + census(actual) +
          ") does not match its Table 2 row (" + census(want) + ")",
      "restore the published inventory, or update the Table 2 census in "
      "staticlint/table2.cpp if the model legitimately changed"));
}

const std::vector<Rule>& registry() {
  static const std::vector<Rule> rules = {
      {{"ST001", "structural", Severity::kError,
        "exploit chain has no operations"},
       st001_chain_empty},
      {{"ST002", "structural", Severity::kError,
        "propagation gates do not pair 1:1 with operations"},
       st002_gate_arity},
      {{"ST003", "structural", Severity::kError,
        "operation has no pFSMs"},
       st003_operation_empty},
      {{"ST004", "structural", Severity::kError,
        "duplicate operation name within a chain"},
       st004_duplicate_operation},
      {{"ST005", "structural", Severity::kError,
        "duplicate pFSM name within a model"},
       st005_duplicate_pfsm},
      {{"ST006", "structural", Severity::kWarning,
        "pFSM has an empty elementary-activity description"},
       st006_empty_activity},
      {{"ST007", "structural", Severity::kWarning,
        "predicate has an empty description"},
       st007_empty_predicate},
      {{"ST008", "structural", Severity::kError,
        "final propagation gate names no consequence"},
       st008_missing_consequence},
      {{"LM001", "lemma", Severity::kError,
        "vulnerability model in which every pFSM is declared secure"},
       lm001_all_secure},
      {{"LM002", "lemma", Severity::kError,
        "declared-secure pFSM whose implementation differs from its spec"},
       lm002_secure_impl_mismatch},
      {{"LM003", "lemma", Severity::kWarning,
        "operations unreachable behind a reject-all pFSM"},
       lm003_unreachable},
      {{"TX001", "taxonomy", Severity::kWarning,
        "pFSM type disagrees with its question form"},
       tx001_type_question},
      {{"TX002", "taxonomy", Severity::kError,
        "pFSM inventory disagrees with the model's Table 2 row"},
       tx002_table2_census},
  };
  return rules;
}

}  // namespace

const std::vector<Rule>& all_rules() { return registry(); }

const Rule* find_rule(std::string_view id) {
  for (const auto& r : all_rules()) {
    if (id == r.info.id) return &r;
  }
  return nullptr;
}

}  // namespace dfsm::staticlint
