#include "staticlint/linter.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "runtime/parallel.h"

namespace dfsm::staticlint {

std::size_t LintRun::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : findings) {
    if (d.severity == s) ++n;
  }
  return n;
}

namespace {

std::vector<const Rule*> select_rules(const LintOptions& options) {
  std::vector<const Rule*> selected;
  if (options.rule_ids.empty()) {
    for (const auto& r : all_rules()) selected.push_back(&r);
  } else {
    for (const auto& id : options.rule_ids) {
      const Rule* r = find_rule(id);
      if (r == nullptr) {
        throw std::invalid_argument("unknown lint rule id '" + id + "'");
      }
      selected.push_back(r);
    }
  }
  return selected;
}

std::vector<Diagnostic> run_cell(const LintModel& m, const Rule& r) {
  std::vector<Diagnostic> out;
  r.check(r.info, m, out);
  for (auto& d : out) d.source_hint = m.source_hint;
  return out;
}

}  // namespace

LintRun lint(const std::vector<LintModel>& models, const LintOptions& options,
             runtime::ThreadPool& pool) {
  const std::vector<const Rule*> selected = select_rules(options);

  LintRun run;
  run.models_checked = models.size();
  run.rules_run = selected.size();

  const std::size_t cells = models.size() * selected.size();

  if (options.memo == nullptr) {
    // One grid cell per (model, rule) pair, model-major. Each cell is
    // independent, so the whole grid fans out; flattening in index order
    // reproduces the serial nested walk byte-for-byte.
    auto per_cell = runtime::parallel_map<std::vector<Diagnostic>>(
        cells,
        [&](std::size_t i) {
          const LintModel& m = models[i / selected.size()];
          const Rule& r = *selected[i % selected.size()];
          return run_cell(m, r);
        },
        pool);
    run.rules_executed = cells;
    for (auto& cell : per_cell) {
      for (auto& d : cell) run.findings.push_back(std::move(d));
    }
    return run;
  }

  // Incremental mode: the same grid filled through the memo store in
  // three phases, mirroring the sweep engine (DESIGN.md §11). Phase 1
  // looks every cell up SERIALLY, so hit/miss/invalidation counts see
  // one well-defined operation order at every DFSM_THREADS setting.
  run.memoized = true;
  LintMemoStore& memo = *options.memo;

  std::vector<std::uint64_t> fps;
  fps.reserve(models.size());
  for (const auto& m : models) fps.push_back(fingerprint(m));

  std::vector<std::optional<std::vector<Diagnostic>>> cached(cells);
  std::vector<std::size_t> missed;
  for (std::size_t i = 0; i < cells; ++i) {
    const std::size_t mi = i / selected.size();
    const LintMemoKey key{models[mi].name, selected[i % selected.size()]->info.id};
    bool invalidated = false;
    if (auto entry = memo.lookup(key, fps[mi], &invalidated)) {
      cached[i] = std::move(entry->findings);
      ++run.memo_hits;
    } else {
      missed.push_back(i);
      ++run.memo_misses;
      if (invalidated) ++run.memo_invalidated;
    }
  }

  // Phase 2: execute only the missed cells, in parallel.
  auto fresh = runtime::parallel_map<std::vector<Diagnostic>>(
      missed.size(),
      [&](std::size_t j) {
        const std::size_t i = missed[j];
        const LintModel& m = models[i / selected.size()];
        const Rule& r = *selected[i % selected.size()];
        return run_cell(m, r);
      },
      pool);
  run.rules_executed = missed.size();

  // Phase 3: insert the fresh cells serially, then flatten the grid in
  // index order — byte-identical to the memo-less walk.
  for (std::size_t j = 0; j < missed.size(); ++j) {
    const std::size_t i = missed[j];
    const std::size_t mi = i / selected.size();
    const LintMemoKey key{models[mi].name, selected[i % selected.size()]->info.id};
    memo.insert(key, LintMemoEntry{fps[mi], fresh[j]});
    cached[i] = std::move(fresh[j]);
  }
  for (auto& cell : cached) {
    for (auto& d : *cell) run.findings.push_back(std::move(d));
  }
  return run;
}

LintRun lint_model_ir(const LintModel& model, const LintOptions& options,
                      runtime::ThreadPool& pool) {
  return lint(std::vector<LintModel>{model}, options, pool);
}

LintRun lint_chain(const core::ExploitChain& chain, const LintOptions& options,
                   std::string source_hint, runtime::ThreadPool& pool) {
  return lint_model_ir(LintModel::from_chain(chain, std::move(source_hint)),
                       options, pool);
}

}  // namespace dfsm::staticlint
