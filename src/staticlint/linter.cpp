#include "staticlint/linter.h"

#include <stdexcept>

#include "runtime/parallel.h"

namespace dfsm::staticlint {

std::size_t LintRun::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : findings) {
    if (d.severity == s) ++n;
  }
  return n;
}

LintRun lint(const std::vector<LintModel>& models, const LintOptions& options,
             runtime::ThreadPool& pool) {
  std::vector<const Rule*> selected;
  if (options.rule_ids.empty()) {
    for (const auto& r : all_rules()) selected.push_back(&r);
  } else {
    for (const auto& id : options.rule_ids) {
      const Rule* r = find_rule(id);
      if (r == nullptr) {
        throw std::invalid_argument("unknown lint rule id '" + id + "'");
      }
      selected.push_back(r);
    }
  }

  LintRun run;
  run.models_checked = models.size();
  run.rules_run = selected.size();

  // One grid cell per (model, rule) pair, model-major. Each cell is
  // independent, so the whole grid fans out; flattening in index order
  // reproduces the serial nested walk byte-for-byte.
  const std::size_t cells = models.size() * selected.size();
  auto per_cell = runtime::parallel_map<std::vector<Diagnostic>>(
      cells,
      [&](std::size_t i) {
        const LintModel& m = models[i / selected.size()];
        const Rule& r = *selected[i % selected.size()];
        std::vector<Diagnostic> out;
        r.check(r.info, m, out);
        for (auto& d : out) d.source_hint = m.source_hint;
        return out;
      },
      pool);
  for (auto& cell : per_cell) {
    for (auto& d : cell) run.findings.push_back(std::move(d));
  }
  return run;
}

}  // namespace dfsm::staticlint
