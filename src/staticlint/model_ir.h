// model_ir.h — the linter's read-only view of a model tree.
//
// Rules run over this flattened IR rather than over core types directly,
// for two reasons:
//   1. The linter must not be able to evaluate anything. The IR copies
//      only structural facts (names, types, predicate descriptions and
//      construction kinds) — the predicate callables never cross over,
//      so a rule *cannot* drive an object through a chain even by
//      accident.
//   2. Some defects the rules guard against (gate/operation arity skew,
//      duplicate operation names) are unreachable through the hardened
//      core builders. Test fixtures construct the IR directly to inject
//      them, keeping every rule executable and asserted.
#ifndef DFSM_STATICLINT_MODEL_IR_H
#define DFSM_STATICLINT_MODEL_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace dfsm::staticlint {

/// Structural snapshot of a core::Predicate: its transition-label text
/// and how it was constructed. No callable.
struct LintPredicate {
  std::string description;
  core::PredicateKind kind = core::PredicateKind::kCustom;

  [[nodiscard]] static LintPredicate from(const core::Predicate& p);
};

/// Structural snapshot of a core::Pfsm.
struct LintPfsm {
  std::string name;
  core::PfsmType type = core::PfsmType::kContentAttributeCheck;
  std::string activity;
  std::string action;
  LintPredicate spec;
  LintPredicate impl;
  bool declared_secure = false;

  [[nodiscard]] static LintPfsm from(const core::Pfsm& p);
};

/// Structural snapshot of a core::Operation.
struct LintOperation {
  std::string name;
  std::string object_description;
  std::vector<LintPfsm> pfsms;

  [[nodiscard]] static LintOperation from(const core::Operation& op);
};

/// One step of an attack-graph compound composition: which model the
/// step came from, the (host, privilege) fact it requires and the one it
/// establishes. Privileges are the attack-graph names ("none" | "user" |
/// "root"). Only compound compositions fill these; plain models and bare
/// chains leave `compound` empty and the graph-consistency (GR) rules
/// skip them.
struct LintCompoundStep {
  std::string model;  ///< source model / exploit-rule name
  std::string pre_host;
  std::string pre_privilege;
  std::string con_host;
  std::string con_privilege;
};

/// Structural snapshot of a whole model (or of a bare chain, in which
/// case has_metadata is false and the Lemma rules that need report
/// metadata skip it).
struct LintModel {
  std::string name;
  std::vector<int> bugtraq_ids;
  std::string vulnerability_class;
  std::string software;
  std::string consequence;
  bool has_metadata = true;

  /// Repo-relative path of the file defining the model, when known.
  /// Used by the SARIF emitter so GitHub can annotate the source.
  std::string source_hint;

  std::vector<LintOperation> operations;
  std::vector<std::string> gates;  ///< gate conditions, parallel to operations

  /// Step facts of an attack-graph compound composition (empty for
  /// everything else); see LintCompoundStep.
  std::vector<LintCompoundStep> compound;

  [[nodiscard]] static LintModel from_model(const core::FsmModel& m,
                                            std::string source_hint = "");
  [[nodiscard]] static LintModel from_chain(const core::ExploitChain& c,
                                            std::string source_hint = "");
};

/// Structural fingerprint over EVERYTHING a rule can read from the IR —
/// the invalidation token the LintMemoStore keys on: re-linting a model
/// whose fingerprint is unchanged may reuse cached findings, and any
/// edit a rule could observe (including source_hint, which the linter
/// copies onto findings) changes the digest. Same FNV-1a field-stream
/// contract as core::fingerprint (core/fingerprint.h).
[[nodiscard]] std::uint64_t fingerprint(const LintModel& model) noexcept;

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_MODEL_IR_H
