// linter.h — runs the rule set over a set of models, in parallel, with
// a deterministic finding order.
//
// Determinism contract (DESIGN.md §7): the (model, rule) grid is
// fanned out through runtime::parallel_map — each cell is a pure
// function of its model and rule — and the per-cell finding vectors are
// concatenated in (model index, rule registry index) order. The output
// is therefore byte-identical at every DFSM_THREADS setting, matching
// the serial walk exactly.
//
// Incremental mode (DESIGN.md §13): hand LintOptions a LintMemoStore
// and the grid fills through it — serial lookup phase, parallel
// execution of the MISSED cells only, serial insert phase. Findings are
// byte-identical with and without the store (cells re-enter the output
// at their grid position), only LintRun's telemetry distinguishes the
// two; re-linting an unchanged model executes zero rules.
#ifndef DFSM_STATICLINT_LINTER_H
#define DFSM_STATICLINT_LINTER_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/chain.h"
#include "runtime/thread_pool.h"
#include "staticlint/diagnostic.h"
#include "staticlint/memo.h"
#include "staticlint/model_ir.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {

/// Which rules to run. Empty rule_ids = the whole registry.
struct LintOptions {
  std::vector<std::string> rule_ids;

  /// Optional cross-lint memo store (not owned). When set, (model, rule)
  /// cells whose model fingerprint matches a cached cell are served from
  /// the store instead of executing the rule; see memo.h for soundness.
  LintMemoStore* memo = nullptr;
};

/// Outcome of one lint run.
struct LintRun {
  std::vector<Diagnostic> findings;  ///< deterministic order (see header)
  std::size_t models_checked = 0;
  std::size_t rules_run = 0;  ///< rules applied per model

  // Incremental-mode telemetry for THIS run (zeros when memo is off).
  bool memoized = false;              ///< ran through a LintMemoStore
  std::size_t rules_executed = 0;     ///< cells actually executed
  std::size_t memo_hits = 0;          ///< cells served from the store
  std::size_t memo_misses = 0;        ///< cells absent from the store
  std::size_t memo_invalidated = 0;   ///< stale cells dropped on lookup

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::kWarning);
  }
};

/// Lints every model with the selected rules. Throws
/// std::invalid_argument if an option names an unknown rule id.
[[nodiscard]] LintRun lint(const std::vector<LintModel>& models,
                           const LintOptions& options = {},
                           runtime::ThreadPool& pool =
                               runtime::ThreadPool::global());

/// Lints one already-snapshotted IR model. Convenience single-model
/// front of lint() — same grid, same determinism, same memo routing.
[[nodiscard]] LintRun lint_model_ir(const LintModel& model,
                                    const LintOptions& options = {},
                                    runtime::ThreadPool& pool =
                                        runtime::ThreadPool::global());

/// Snapshots a runtime-built chain into the callable-free IR and lints
/// it. THE universal entry point: discovery probes, fault-campaign
/// trials, attack_graph compositions and loadgen monitor models all
/// funnel their chains through here. `source_hint`, when known, flows
/// onto every finding (and into SARIF physical locations).
[[nodiscard]] LintRun lint_chain(const core::ExploitChain& chain,
                                 const LintOptions& options = {},
                                 std::string source_hint = "",
                                 runtime::ThreadPool& pool =
                                     runtime::ThreadPool::global());

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_LINTER_H
