// linter.h — runs the rule set over a set of models, in parallel, with
// a deterministic finding order.
//
// Determinism contract (DESIGN.md §7): the (model, rule) grid is
// fanned out through runtime::parallel_map — each cell is a pure
// function of its model and rule — and the per-cell finding vectors are
// concatenated in (model index, rule registry index) order. The output
// is therefore byte-identical at every DFSM_THREADS setting, matching
// the serial walk exactly.
#ifndef DFSM_STATICLINT_LINTER_H
#define DFSM_STATICLINT_LINTER_H

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "staticlint/diagnostic.h"
#include "staticlint/model_ir.h"
#include "staticlint/rules.h"

namespace dfsm::staticlint {

/// Which rules to run. Empty rule_ids = the whole registry.
struct LintOptions {
  std::vector<std::string> rule_ids;
};

/// Outcome of one lint run.
struct LintRun {
  std::vector<Diagnostic> findings;  ///< deterministic order (see header)
  std::size_t models_checked = 0;
  std::size_t rules_run = 0;  ///< rules applied per model

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::kWarning);
  }
};

/// Lints every model with the selected rules. Throws
/// std::invalid_argument if an option names an unknown rule id.
[[nodiscard]] LintRun lint(const std::vector<LintModel>& models,
                           const LintOptions& options = {},
                           runtime::ThreadPool& pool =
                               runtime::ThreadPool::global());

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_LINTER_H
