// rules.h — the rule set of the static model verifier.
//
// Three groups, following the Lemma of paper §6:
//
//   structural (ST) — the model tree is well-formed: a chain has
//     operations, every operation has pFSMs, gates pair 1:1 with
//     operations and the last one names the attack consequence, and
//     names are unique enough to locate findings.
//
//   lemma (LM) — the model is consistent with the Lemma. Statement 1:
//     an operation is secure iff ALL of its pFSM predicates are
//     correctly implemented — so a model registered as a vulnerability
//     in which every pFSM is declared secure cannot be exploited and is
//     self-contradictory (LM001), and a declared-secure pFSM whose
//     implementation predicate differs from its spec contradicts the
//     declaration (LM002). Statement 2: one secure operation foils the
//     cascade — so an operation that rejects every object by
//     construction makes everything downstream unreachable (LM003).
//
//   taxonomy (TX) — the Figure 8 / Table 2 classification is coherent:
//     a pFSM's generic type matches its question form (TX001) and a
//     registered model's inventory matches its published Table 2 row
//     (TX002).
//
//   race (DR) — static TOCTOU/race detection over the fssim schedule
//     surface (fssim/schedule.h). A pFSM whose activity applies a
//     filesystem verb to an absolute path crosses the schedule surface:
//     the modeled step can be preempted there. DR001 flags a check-then-
//     use window inside one operation (a checking pFSM followed by an
//     unchecked reference-consistency pFSM that yields — the xterm
//     Figure 5 shape); DR002 flags the same object path touched by
//     unchecked pFSMs of two gate-ordered operations (the rwall Figure 6
//     shape); DR003 and DR004 flag vestigial/missing reference-
//     consistency guards around yielding activities. DR001/DR002 are
//     notes: on the curated registry they mark the two known races
//     without failing `--fail-on warning` gates.
//
//   graph (GR) — consistency of attack_graph compound compositions,
//     checked over LintModel::compound (plain models skip): every
//     non-trivial step precondition has a producing step (GR001), the
//     producer is not downstream of its consumer (GR002), and the
//     producer's consequence privilege covers the consumer's
//     precondition (GR003).
//
// Every rule is a pure function of the IR: no object construction, no
// predicate evaluation, no I/O.
#ifndef DFSM_STATICLINT_RULES_H
#define DFSM_STATICLINT_RULES_H

#include <string_view>
#include <vector>

#include "staticlint/diagnostic.h"
#include "staticlint/model_ir.h"

namespace dfsm::staticlint {

/// Static metadata of one rule (also exported into SARIF's rule array).
struct RuleInfo {
  const char* id;        ///< stable identifier, e.g. "ST004"
  const char* group;     ///< "structural" | "lemma" | "taxonomy" | "race" | "graph"
  Severity severity;     ///< severity every finding of this rule carries
  const char* summary;   ///< one-line description
};

/// One registered rule: metadata plus the checking function, which
/// appends its findings (with info.id / info.severity filled in) to
/// `out` in deterministic walk order.
struct Rule {
  RuleInfo info;
  void (*check)(const RuleInfo& info, const LintModel& model,
                std::vector<Diagnostic>& out);
};

/// All rules, in stable registry order (ST*, LM*, TX*, DR*, GR*). The
/// order is part of the determinism contract: the linter emits findings
/// in (model, registry index) order.
[[nodiscard]] const std::vector<Rule>& all_rules();

/// Looks a rule up by id; nullptr if unknown.
[[nodiscard]] const Rule* find_rule(std::string_view id);

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_RULES_H
