#include "staticlint/model_ir.h"

#include "core/fingerprint.h"

namespace dfsm::staticlint {

LintPredicate LintPredicate::from(const core::Predicate& p) {
  return LintPredicate{p.description(), p.kind()};
}

LintPfsm LintPfsm::from(const core::Pfsm& p) {
  LintPfsm out;
  out.name = p.name();
  out.type = p.type();
  out.activity = p.activity();
  out.action = p.action();
  out.spec = LintPredicate::from(p.spec());
  out.impl = LintPredicate::from(p.impl());
  out.declared_secure = p.declared_secure();
  return out;
}

LintOperation LintOperation::from(const core::Operation& op) {
  LintOperation out;
  out.name = op.name();
  out.object_description = op.object_description();
  out.pfsms.reserve(op.size());
  for (const auto& p : op.pfsms()) out.pfsms.push_back(LintPfsm::from(p));
  return out;
}

namespace {

void copy_chain(const core::ExploitChain& c, LintModel& out) {
  out.operations.reserve(c.size());
  for (const auto& op : c.operations()) {
    out.operations.push_back(LintOperation::from(op));
  }
  out.gates.reserve(c.gates().size());
  for (const auto& g : c.gates()) out.gates.push_back(g.condition);
}

}  // namespace

LintModel LintModel::from_model(const core::FsmModel& m,
                                std::string source_hint) {
  LintModel out;
  out.name = m.name();
  out.bugtraq_ids = m.bugtraq_ids();
  out.vulnerability_class = m.vulnerability_class();
  out.software = m.software();
  out.consequence = m.consequence();
  out.has_metadata = true;
  out.source_hint = std::move(source_hint);
  copy_chain(m.chain(), out);
  return out;
}

LintModel LintModel::from_chain(const core::ExploitChain& c,
                                std::string source_hint) {
  LintModel out;
  out.name = c.name();
  out.has_metadata = false;
  out.source_hint = std::move(source_hint);
  copy_chain(c, out);
  return out;
}

std::uint64_t fingerprint(const LintModel& model) noexcept {
  core::Fingerprinter fp;
  fp.mix(model.name);
  fp.mix(static_cast<std::uint64_t>(model.bugtraq_ids.size()));
  for (const int id : model.bugtraq_ids) {
    fp.mix(static_cast<std::uint64_t>(id));
  }
  fp.mix(model.vulnerability_class);
  fp.mix(model.software);
  fp.mix(model.consequence);
  fp.mix(static_cast<std::uint64_t>(model.has_metadata));
  fp.mix(model.source_hint);
  fp.mix(static_cast<std::uint64_t>(model.operations.size()));
  for (const auto& op : model.operations) {
    fp.mix(op.name);
    fp.mix(op.object_description);
    fp.mix(static_cast<std::uint64_t>(op.pfsms.size()));
    for (const auto& p : op.pfsms) {
      fp.mix(p.name);
      fp.mix(static_cast<std::uint64_t>(p.type));
      fp.mix(p.activity);
      fp.mix(p.action);
      fp.mix(p.spec.description);
      fp.mix(static_cast<std::uint64_t>(p.spec.kind));
      fp.mix(p.impl.description);
      fp.mix(static_cast<std::uint64_t>(p.impl.kind));
      fp.mix(static_cast<std::uint64_t>(p.declared_secure));
    }
  }
  fp.mix(static_cast<std::uint64_t>(model.gates.size()));
  for (const auto& g : model.gates) fp.mix(g);
  fp.mix(static_cast<std::uint64_t>(model.compound.size()));
  for (const auto& s : model.compound) {
    fp.mix(s.model);
    fp.mix(s.pre_host);
    fp.mix(s.pre_privilege);
    fp.mix(s.con_host);
    fp.mix(s.con_privilege);
  }
  return fp.digest();
}

}  // namespace dfsm::staticlint
