// emit.h — renderers for lint results: human-readable text, plain JSON,
// and SARIF 2.1.0 (the format GitHub code scanning ingests to annotate
// pull requests).
#ifndef DFSM_STATICLINT_EMIT_H
#define DFSM_STATICLINT_EMIT_H

#include <string>

#include "staticlint/linter.h"

namespace dfsm::staticlint {

/// Terminal-friendly listing: one line per finding plus a summary.
[[nodiscard]] std::string emit_text(const LintRun& run);

/// A flat JSON document (tool, counts, findings array).
[[nodiscard]] std::string emit_json(const LintRun& run);

/// SARIF 2.1.0. Every registry rule appears in the driver's rule array
/// (so suppressed-to-zero runs still document the rule set); results
/// reference rules by id + ruleIndex and carry both a logicalLocation
/// (model/operation/pfsm path) and, when the model has a source hint, a
/// physicalLocation GitHub can annotate.
[[nodiscard]] std::string emit_sarif(const LintRun& run);

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_EMIT_H
