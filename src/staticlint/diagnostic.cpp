#include "staticlint/diagnostic.h"

namespace dfsm::staticlint {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Location::qualified() const {
  std::string out = model;
  if (!operation.empty()) out += "/" + operation;
  if (!pfsm.empty()) out += "/" + pfsm;
  return out;
}

}  // namespace dfsm::staticlint
