// diagnostic.h — typed findings of the static model verifier.
//
// A Diagnostic pins one rule violation to one place in a model tree
// (model / operation / pFSM), with a human-readable message and a fix
// hint. Findings carry no evaluation results: the linter never drives an
// object through a chain (that is analysis/hidden_path.h's job) — every
// diagnostic is derivable from structure alone.
#ifndef DFSM_STATICLINT_DIAGNOSTIC_H
#define DFSM_STATICLINT_DIAGNOSTIC_H

#include <string>

namespace dfsm::staticlint {

/// Finding severity. kError findings indicate a model that cannot mean
/// what its author intended (the Lemma or the structure is violated);
/// kWarning findings indicate dead weight or taxonomy drift; kNote is
/// advisory.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Where in the model tree a finding anchors. `operation` and `pfsm` are
/// empty for model- and operation-level findings respectively.
struct Location {
  std::string model;
  std::string operation;
  std::string pfsm;

  /// "model", "model/operation" or "model/operation/pfsm".
  [[nodiscard]] std::string qualified() const;
};

/// One rule violation.
struct Diagnostic {
  std::string rule_id;  ///< e.g. "ST004"
  Severity severity = Severity::kWarning;
  Location where;
  std::string message;  ///< what is wrong, in one sentence
  std::string hint;     ///< how to fix it, in one sentence

  /// Repo-relative source file of the offending model, when known
  /// (copied from LintModel::source_hint by the linter; feeds SARIF
  /// physical locations).
  std::string source_hint;
};

}  // namespace dfsm::staticlint

#endif  // DFSM_STATICLINT_DIAGNOSTIC_H
