// metf.h — quantitative security evaluation over the FSM model: Mean
// Effort To (security) Failure, in the spirit of the Markov-model line of
// work the paper positions itself against (Ortalo et al. [17], Madan et
// al. [20], paper §2).
//
// The pFSM chain gives those models their structure for free: each pFSM
// is a barrier the attacker's elementary action must pass. A barrier's
// pass probability is
//   * ~1 when the implementation performs no check (the hidden path is
//     wide open),
//   * 0 when a deterministic check is in place (IMPL_REJ always fires),
//   * in (0,1) for probabilistic defences and races — e.g. the xterm
//     race, whose pass probability is exactly the violating-schedule
//     fraction the interleaving enumeration measures.
//
// The attacker retries from scratch after any failed attempt (Ortalo's
// intruder model); the chain is then an absorbing Markov chain and the
// expected number of elementary actions until compromise has the closed
// form computed here.
#ifndef DFSM_ANALYSIS_METF_H
#define DFSM_ANALYSIS_METF_H

#include <string>
#include <vector>

#include "core/model.h"

namespace dfsm::analysis {

/// One barrier of the chain.
struct Barrier {
  std::string name;
  double pass_probability = 1.0;  ///< P(attacker's action passes this pFSM)
};

/// Quantitative results for one barrier chain.
struct MetfResult {
  /// P(one complete attempt succeeds) = product of pass probabilities.
  double attempt_success_probability = 0.0;
  /// Expected number of complete attempts until success (geometric).
  double expected_attempts = 0.0;
  /// Expected number of elementary actions until success, counting the
  /// partial progress of failed attempts (absorbing-chain closed form).
  /// This is the METF in "elementary action" units.
  double expected_actions = 0.0;
  /// True when some barrier has pass probability 0: compromise is
  /// impossible and the expectations above are infinite.
  bool secure = false;
};

/// Computes the METF quantities. Probabilities are clamped to [0,1].
/// An empty chain is trivially compromised in 0 actions.
[[nodiscard]] MetfResult metf(const std::vector<Barrier>& barriers);

/// Derives a barrier chain from an FsmModel: declared-secure pFSMs get
/// pass probability 0; vulnerable ones get `vulnerable_pass` (default 1 —
/// a wide-open hidden path).
[[nodiscard]] std::vector<Barrier> barriers_from_model(
    const core::FsmModel& model, double vulnerable_pass = 1.0);

/// Variant with a per-pFSM override (by pFSM name), e.g. setting xterm's
/// pFSM2 to the measured race-window fraction.
[[nodiscard]] std::vector<Barrier> barriers_from_model(
    const core::FsmModel& model, double vulnerable_pass,
    const std::vector<std::pair<std::string, double>>& overrides);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_METF_H
