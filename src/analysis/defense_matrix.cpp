#include "analysis/defense_matrix.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/chain_analyzer.h"
#include "analysis/sweep_memo.h"
#include "apps/ghttpd.h"
#include "apps/secured.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/sendmail.h"
#include "core/table.h"

namespace dfsm::analysis {

const char* to_string(Defense d) noexcept {
  switch (d) {
    case Defense::kNone: return "none";
    case Defense::kInputValidation: return "input validation";
    case Defense::kBoundedCopy: return "bounded copy";
    case Defense::kStackGuard: return "StackGuard";
    case Defense::kRefConsistency: return "reference consistency";
  }
  return "?";
}

const char* to_string(CellOutcome o) noexcept {
  switch (o) {
    case CellOutcome::kExploited: return "EXPLOITED";
    case CellOutcome::kFoiled: return "foiled";
    case CellOutcome::kIneffective: return "EXPLOITED (bypassed)";
    case CellOutcome::kNotApplicable: return "n/a";
  }
  return "?";
}

namespace {

constexpr Defense kAllDefenses[] = {
    Defense::kNone, Defense::kInputValidation, Defense::kBoundedCopy,
    Defense::kStackGuard, Defense::kRefConsistency,
};

DefenseCell run_sendmail(Defense d) {
  DefenseCell cell{"Sendmail #3163 (GOT of setuid)", d, CellOutcome::kExploited, ""};
  apps::SendmailChecks checks;
  switch (d) {
    case Defense::kNone: break;
    case Defense::kInputValidation: checks.input_representable = true; break;
    case Defense::kBoundedCopy:
      // There is no copy: a single indexed store. Nothing to bound.
      cell.outcome = CellOutcome::kNotApplicable;
      return cell;
    case Defense::kStackGuard:
      // No stack write happens; the canary never sees the attack.
      break;
    case Defense::kRefConsistency: checks.got_unchanged = true; break;
  }
  apps::SendmailTTflag app{checks};
  const auto e = app.build_exploit();
  const auto r = app.run_debug_command(e.str_x, e.str_i);
  cell.detail = r.detail;
  if (!r.mcode_executed) {
    cell.outcome = CellOutcome::kFoiled;
  } else {
    cell.outcome = d == Defense::kNone ? CellOutcome::kExploited
                                       : CellOutcome::kIneffective;
  }
  return cell;
}

DefenseCell run_nullhttpd(Defense d, bool use_6255) {
  DefenseCell cell{use_6255 ? "NULL HTTPD #6255 (heap, truthful length)"
                            : "NULL HTTPD #5774 (heap, negative length)",
                   d, CellOutcome::kExploited, ""};
  apps::NullHttpdChecks checks;
  switch (d) {
    case Defense::kNone: break;
    case Defense::kInputValidation: checks.content_len_nonneg = true; break;
    case Defense::kBoundedCopy: checks.bounded_read_loop = true; break;
    case Defense::kStackGuard:
      break;  // heap attack: the canary is never touched
    case Defense::kRefConsistency: checks.heap_safe_unlink = true; break;
  }
  const std::int32_t cl = use_6255 ? 0 : -800;
  const auto info = apps::NullHttpd::scout(cl, checks);
  apps::NullHttpd app{checks};
  const auto body = apps::NullHttpd::build_overflow_body(info);
  const auto r = app.handle_post(cl, std::string(body.begin(), body.end()));
  cell.detail = r.detail;
  if (!r.mcode_executed) {
    cell.outcome = CellOutcome::kFoiled;
  } else {
    cell.outcome = d == Defense::kNone ? CellOutcome::kExploited
                                       : CellOutcome::kIneffective;
  }
  return cell;
}

DefenseCell run_ghttpd(Defense d) {
  DefenseCell cell{"GHTTPD #5960 (stack return address)", d,
                   CellOutcome::kExploited, ""};
  apps::GhttpdChecks checks;
  switch (d) {
    case Defense::kNone: break;
    case Defense::kInputValidation: checks.length_check = true; break;
    case Defense::kBoundedCopy: checks.use_snprintf = true; break;
    case Defense::kStackGuard: checks.stackguard = true; break;
    case Defense::kRefConsistency: checks.ret_consistency = true; break;
  }
  apps::Ghttpd app{checks};
  const auto r = app.serve(app.build_exploit());
  cell.detail = r.detail;
  if (!r.mcode_executed) {
    cell.outcome = CellOutcome::kFoiled;
  } else {
    cell.outcome = d == Defense::kNone ? CellOutcome::kExploited
                                       : CellOutcome::kIneffective;
  }
  return cell;
}

DefenseCell run_statd(Defense d) {
  DefenseCell cell{"rpc.statd #1480 (%n, return address)", d,
                   CellOutcome::kExploited, ""};
  apps::RpcStatdChecks checks;
  bool with_canary = true;
  switch (d) {
    case Defense::kNone: break;
    case Defense::kInputValidation: checks.no_format_directives = true; break;
    case Defense::kBoundedCopy:
      // Bounding the OUTPUT does not stop %n's pointer store; there is no
      // oversized copy to bound in the first place.
      cell.outcome = CellOutcome::kNotApplicable;
      return cell;
    case Defense::kStackGuard: with_canary = true; break;
    case Defense::kRefConsistency: checks.ret_consistency = true; break;
  }
  apps::RpcStatd app{checks, with_canary};
  const auto r = app.handle_mon_request(app.build_exploit());
  cell.detail = r.detail;
  if (!r.mcode_executed) {
    cell.outcome = CellOutcome::kFoiled;
  } else {
    cell.outcome = d == Defense::kNone ? CellOutcome::kExploited
                                       : CellOutcome::kIneffective;
  }
  return cell;
}

}  // namespace

std::vector<DefenseCell> defense_matrix() {
  std::vector<DefenseCell> cells;
  for (Defense d : kAllDefenses) {
    cells.push_back(run_sendmail(d));
    cells.push_back(run_nullhttpd(d, /*use_6255=*/false));
    cells.push_back(run_nullhttpd(d, /*use_6255=*/true));
    cells.push_back(run_ghttpd(d));
    cells.push_back(run_statd(d));
  }
  return cells;
}

const char* to_string(RankStrategy s) noexcept {
  switch (s) {
    case RankStrategy::kIncremental: return "incremental";
    case RankStrategy::kFullSweeps: return "full-sweeps";
  }
  return "unknown";
}

namespace {

/// Operation display names from the study's FSM model chain; falls back
/// to "operation <i>" for ids without a modelled operation.
std::string operation_display_name(const core::FsmModel& model,
                                   std::size_t op) {
  const auto& ops = model.chain().operations();
  if (op < ops.size() && !ops[op].name().empty()) return ops[op].name();
  return "operation " + std::to_string(op);
}

std::uint64_t count_exploited_rows(const LemmaReport& r) {
  std::uint64_t n = 0;
  for (const auto& row : r.results) {
    if (row.exploit.exploited) ++n;
  }
  return n;
}

std::uint64_t count_benign_broken_rows(const LemmaReport& r) {
  std::uint64_t n = 0;
  for (const auto& row : r.results) {
    if (!row.benign.service_ok) ++n;
  }
  return n;
}

}  // namespace

PatchRanking rank_patch_candidates(const apps::CaseStudy& study,
                                   RankStrategy strategy,
                                   SweepMemoStore* memo) {
  PatchRanking ranking;
  ranking.study_name = study.name();
  ranking.strategy = strategy;

  const auto checks = study.checks();
  std::set<std::size_t> op_ids;
  for (const auto& c : checks) op_ids.insert(c.operation_index);
  const auto model = study.model();

  if (strategy == RankStrategy::kIncremental) {
    // One cache fill serves the unpatched summary AND every candidate:
    // all sweep_summary calls after the first hit the store wall-to-wall
    // and differ only in composition.
    SweepMemoStore own_store;
    SweepOptions opts;
    opts.memo = memo != nullptr ? memo : &own_store;
    const auto fold = [&ranking](const SweepSummary& s) {
      ranking.exploit_evaluations += s.exploit_evaluations;
      ranking.benign_evaluations += s.benign_evaluations;
      ranking.memo_hits += s.memo_hits;
      ranking.memo_misses += s.memo_misses;
    };
    const SweepSummary base = sweep_summary(study, {}, opts);
    fold(base);
    ranking.total_masks = base.total_masks;
    ranking.unpatched_exploited_masks = base.exploited_masks;
    for (const std::size_t op : op_ids) {
      SweepDelta delta;
      delta.secured_operations = {op};
      const SweepSummary s = sweep_summary(study, delta, opts);
      fold(s);
      PatchCandidate c;
      c.operation = op;
      c.operation_name = operation_display_name(model, op);
      c.exploited_masks = s.exploited_masks;
      c.benign_broken_masks = s.benign_broken_masks;
      c.forecloses = s.exploited_masks == 0;
      ranking.candidates.push_back(std::move(c));
    }
  } else {
    // Reference strategy: a fresh full sweep per candidate, counting
    // rows directly.
    const auto fold = [&ranking](const LemmaReport& r) {
      ranking.exploit_evaluations += r.exploit_evaluations;
      ranking.benign_evaluations += r.benign_evaluations;
    };
    const LemmaReport base = sweep(study);
    fold(base);
    ranking.total_masks = base.total_masks;
    ranking.unpatched_exploited_masks = count_exploited_rows(base);
    for (const std::size_t op : op_ids) {
      const auto secured = apps::make_secured_study(study, {op});
      const LemmaReport r = sweep(*secured);
      fold(r);
      PatchCandidate c;
      c.operation = op;
      c.operation_name = operation_display_name(model, op);
      c.exploited_masks = count_exploited_rows(r);
      c.benign_broken_masks = count_benign_broken_rows(r);
      c.forecloses = c.exploited_masks == 0;
      ranking.candidates.push_back(std::move(c));
    }
  }

  std::stable_sort(ranking.candidates.begin(), ranking.candidates.end(),
                   [](const PatchCandidate& a, const PatchCandidate& b) {
                     if (a.exploited_masks != b.exploited_masks) {
                       return a.exploited_masks < b.exploited_masks;
                     }
                     if (a.benign_broken_masks != b.benign_broken_masks) {
                       return a.benign_broken_masks < b.benign_broken_masks;
                     }
                     return a.operation < b.operation;
                   });
  return ranking;
}

std::string render_patch_ranking(const PatchRanking& ranking) {
  core::TextTable t{{"#", "Operation", "residual exploited masks",
                     "benign broken masks", "forecloses"}};
  t.title("Patch-candidate ranking for " + ranking.study_name + " (" +
          std::string{to_string(ranking.strategy)} + ", " +
          std::to_string(ranking.unpatched_exploited_masks) + "/" +
          std::to_string(ranking.total_masks) +
          " masks exploited unpatched)");
  std::size_t rank = 1;
  for (const auto& c : ranking.candidates) {
    t.add_row({std::to_string(rank++), c.operation_name,
               std::to_string(c.exploited_masks) + "/" +
                   std::to_string(ranking.total_masks),
               std::to_string(c.benign_broken_masks),
               c.forecloses ? "yes" : "no"});
  }
  return t.to_string();
}

std::string render_defense_matrix(const std::vector<DefenseCell>& cells) {
  // Pivot: exploit rows, defence columns.
  std::map<std::string, std::map<Defense, CellOutcome>> grid;
  std::vector<std::string> row_order;
  for (const auto& c : cells) {
    if (grid.find(c.exploit) == grid.end()) row_order.push_back(c.exploit);
    grid[c.exploit][c.defense] = c.outcome;
  }
  core::TextTable t{{"Exploit", "none", "input validation", "bounded copy",
                     "StackGuard", "reference consistency"}};
  t.title("Defense matrix: which elementary-activity defence stops which "
          "exploit (§6)");
  for (const auto& exploit : row_order) {
    std::vector<std::string> row{exploit};
    for (Defense d : kAllDefenses) {
      row.push_back(to_string(grid[exploit][d]));
    }
    t.add_row(std::move(row));
  }
  return t.to_string();
}

}  // namespace dfsm::analysis
