#include "analysis/predicates.h"

#include <limits>
#include <vector>

#include "libcsim/format.h"
#include "netsim/decode.h"

namespace dfsm::analysis::predicates {

using core::Object;
using core::Predicate;

Predicate representable_as_int32(const std::string& attr) {
  return Predicate{
      attr + " represents an integer a signed int (32-bit) can hold",
      [attr](const Object& o) {
        const auto v = o.attr_int(attr);
        return v && *v >= std::numeric_limits<std::int32_t>::min() &&
               *v <= std::numeric_limits<std::int32_t>::max();
      }};
}

Predicate file_type_is(const std::string& attr, const std::string& expected) {
  return Predicate{"the " + attr + " is a " + expected,
                   [attr, expected](const Object& o) {
                     return o.attr_string(attr).value_or("") == expected;
                   }};
}

Predicate int_in_range(const std::string& attr, std::int64_t lo, std::int64_t hi) {
  return Predicate{std::to_string(lo) + " <= " + attr + " <= " + std::to_string(hi),
                   [attr, lo, hi](const Object& o) {
                     const auto v = o.attr_int(attr);
                     return v && *v >= lo && *v <= hi;
                   }};
}

Predicate int_at_least(const std::string& attr, std::int64_t bound) {
  return Predicate{attr + " >= " + std::to_string(bound),
                   [attr, bound](const Object& o) {
                     const auto v = o.attr_int(attr);
                     return v && *v >= bound;
                   }};
}

Predicate int_at_most(const std::string& attr, std::int64_t bound) {
  return Predicate{attr + " <= " + std::to_string(bound),
                   [attr, bound](const Object& o) {
                     const auto v = o.attr_int(attr);
                     return v && *v <= bound;
                   }};
}

Predicate length_within_capacity(const std::string& len_attr,
                                 const std::string& cap_attr) {
  return Predicate{len_attr + " <= " + cap_attr,
                   [len_attr, cap_attr](const Object& o) {
                     const auto len = o.attr_int(len_attr);
                     const auto cap = o.attr_int(cap_attr);
                     return len && cap && *len <= *cap;
                   }};
}

Predicate length_at_most(const std::string& attr, std::int64_t n) {
  return Predicate{"size(" + attr + ") <= " + std::to_string(n),
                   [attr, n](const Object& o) {
                     // Accept either an explicit length attribute or a
                     // string payload whose size is measured directly.
                     if (const auto len = o.attr_int(attr)) return *len <= n;
                     if (const auto s = o.attr_string(attr)) {
                       return static_cast<std::int64_t>(s->size()) <= n;
                     }
                     return false;
                   }};
}

Predicate no_format_directives(const std::string& attr) {
  return Predicate{attr + " contains no format directives (%n, %d, ...)",
                   [attr](const Object& o) {
                     const auto s = o.attr_string(attr);
                     return s && !libcsim::FormatEngine::contains_directives(*s);
                   }};
}

Predicate no_path_traversal(const std::string& attr) {
  return Predicate{attr + " contains no \"../\" traversal",
                   [attr](const Object& o) {
                     const auto s = o.attr_string(attr);
                     return s && !netsim::contains_dotdot(*s);
                   }};
}

Predicate caller_is_root(const std::string& attr) {
  return Predicate{"the requesting user has root privilege",
                   [attr](const Object& o) {
                     return o.attr_bool(attr).value_or(false);
                   }};
}

Predicate reference_unchanged(const std::string& attr) {
  return Predicate{attr + " unchanged between check time and use time",
                   [attr](const Object& o) {
                     return o.attr_bool(attr).value_or(false);
                   }};
}

const std::vector<CatalogueEntry>& catalogue() {
  static const std::vector<CatalogueEntry> entries = {
      {"representable_as_int32", core::PfsmType::kObjectTypeCheck,
       "wide integer attribute fits a signed 32-bit variable"},
      {"file_type_is", core::PfsmType::kObjectTypeCheck,
       "node-type attribute equals the expected type"},
      {"int_in_range", core::PfsmType::kContentAttributeCheck,
       "integer attribute within [lo, hi]"},
      {"int_at_least", core::PfsmType::kContentAttributeCheck,
       "integer attribute >= bound"},
      {"int_at_most", core::PfsmType::kContentAttributeCheck,
       "integer attribute <= bound"},
      {"length_within_capacity", core::PfsmType::kContentAttributeCheck,
       "length attribute bounded by capacity attribute"},
      {"length_at_most", core::PfsmType::kContentAttributeCheck,
       "length (or string size) bounded by a constant"},
      {"no_format_directives", core::PfsmType::kContentAttributeCheck,
       "string attribute free of printf conversions"},
      {"no_path_traversal", core::PfsmType::kContentAttributeCheck,
       "path attribute free of ../ components"},
      {"caller_is_root", core::PfsmType::kContentAttributeCheck,
       "boolean privilege attribute set"},
      {"reference_unchanged", core::PfsmType::kReferenceConsistencyCheck,
       "check-time/use-time binding preserved"},
  };
  return entries;
}

}  // namespace dfsm::analysis::predicates
