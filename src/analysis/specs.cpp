// specs.cpp — declarative VulnerabilitySpecs for the six remaining case
// studies (sendmail_spec lives in autotool.cpp next to the tool). Each
// spec records exactly the facts the paper's analysts extracted from the
// Bugtraq report and the source code; AutoTool::analyze turns them into
// the figures' models and findings mechanically.
#include "analysis/autotool.h"
#include "analysis/hidden_path.h"
#include "analysis/predicates.h"

namespace dfsm::analysis {

namespace {

using predicates::caller_is_root;
using predicates::file_type_is;
using predicates::int_at_least;
using predicates::length_at_most;
using predicates::length_within_capacity;
using predicates::no_format_directives;
using predicates::no_path_traversal;
using predicates::reference_unchanged;

std::vector<core::Object> length_capacity_domain(std::int64_t capacity) {
  std::vector<core::Object> d;
  for (const std::int64_t len :
       {std::int64_t{0}, capacity - 1, capacity, capacity + 1, capacity + 1024}) {
    d.push_back(core::Object{"input"}
                    .with("input_length", len)
                    .with("buffer_size", capacity));
  }
  return d;
}

}  // namespace

VulnerabilitySpec nullhttpd_spec() {
  VulnerabilitySpec spec;
  spec.name = "NULL HTTPD heap overflow (autotool)";
  spec.bugtraq_ids = {5774, 6255};
  spec.vulnerability_class = "Heap Overflow";
  spec.software = "Null HTTPD 0.5";
  spec.consequence = "arbitrary write via unlink; free() redirected to Mcode";

  OperationSpec op1;
  op1.name = "Read postdata from socket to an allocated buffer PostData";
  op1.object_description = "contentLen and input";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "get contentLen from the request head", int_at_least("contentLen", 0),
      ActivitySpec::Impl::kNoCheck, std::nullopt,
      "calloc PostData[1024+contentLen]"});
  op1.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kContentAttributeCheck,
      "read the POST body into PostData",
      length_within_capacity("input_length", "buffer_size"),
      ActivitySpec::Impl::kNoCheck, std::nullopt, "copy input into PostData"});
  op1.gate_condition = "B->fd = &addr_free - offsetof(bk); B->bk = Mcode";

  OperationSpec op2;
  op2.name = "Allocate and free the buffer PostData";
  op2.object_description = "free chunk B following PostData";
  op2.activities.push_back(ActivitySpec{
      "pFSM3", core::PfsmType::kReferenceConsistencyCheck,
      "free PostData (unlink of the following free chunk)",
      reference_unchanged("links_unchanged"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "B->fd->bk = B->bk; B->bk->fd = B->fd"});
  op2.gate_condition = ".GOT entry of free points to Mcode";

  OperationSpec op3;
  op3.name = "Manipulate the GOT entry of function free";
  op3.object_description = "addr_free";
  op3.activities.push_back(ActivitySpec{
      "pFSM4", core::PfsmType::kReferenceConsistencyCheck,
      "execute addr_free when free() is called",
      reference_unchanged("addr_free_unchanged"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "call through the GOT entry of free()"});
  op3.gate_condition = "Mcode is executed";

  spec.operations = {std::move(op1), std::move(op2), std::move(op3)};
  spec.probe_domains["pFSM1"] =
      int_boundary_domain("contentLen", "contentLen", {-800, 0, 1024});
  spec.probe_domains["pFSM2"] = length_capacity_domain(1024);
  spec.probe_domains["pFSM3"] = bool_domain("chunk B", "links_unchanged");
  spec.probe_domains["pFSM4"] = bool_domain("addr_free", "addr_free_unchanged");
  return spec;
}

VulnerabilitySpec xterm_spec() {
  VulnerabilitySpec spec;
  spec.name = "xterm log-file race (autotool)";
  // Pre-Bugtraq CERT advisory (1993); id 0 is the curated-database
  // convention for reports that predate Bugtraq numbering.
  spec.bugtraq_ids = {0};
  spec.vulnerability_class = "File Race Condition";
  spec.software = "xterm (X11)";
  spec.consequence = "regular user appends chosen data to /etc/passwd";

  OperationSpec op1;
  op1.name = "Write the log file of user Tom";
  op1.object_description = "the filename /usr/tom/x";
  // pFSM1 is implemented CORRECTLY in xterm — declared secure.
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "check Tom's write permission on the log file",
      core::Predicate{
          "Tom has write permission and the file is not a symbolic link",
          [](const core::Object& o) {
            return o.attr_bool("tom_may_write").value_or(false) &&
                   !o.attr_bool("is_symlink").value_or(true);
          }},
      ActivitySpec::Impl::kMatchesSpec, std::nullopt,
      "proceed to open /usr/tom/x"});
  op1.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kReferenceConsistencyCheck,
      "open the checked filename with write permission",
      reference_unchanged("binding_preserved"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "append the log message"});
  op1.gate_condition = "Tom appends his own data to /etc/passwd";

  spec.operations = {std::move(op1)};
  {
    std::vector<core::Object> d;
    for (const bool may_write : {false, true}) {
      for (const bool symlink : {false, true}) {
        d.push_back(core::Object{"filename"}
                        .with("tom_may_write", may_write)
                        .with("is_symlink", symlink));
      }
    }
    spec.probe_domains["pFSM1"] = d;
  }
  spec.probe_domains["pFSM2"] = bool_domain("binding", "binding_preserved");
  return spec;
}

VulnerabilitySpec rwall_spec() {
  VulnerabilitySpec spec;
  spec.name = "Solaris rwall file corruption (autotool)";
  // Pre-Bugtraq CERT advisory CA-1994-06; see the id-0 convention note
  // in xterm_spec above.
  spec.bugtraq_ids = {0};
  spec.vulnerability_class = "Access Validation";
  spec.software = "Solaris rwalld";
  spec.consequence = "daemon rewrites /etc/passwd with attacker content";

  OperationSpec op1;
  op1.name = "Write to /etc/utmp";
  op1.object_description = "the file /etc/utmp";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "user request to write /etc/utmp", caller_is_root("is_root"),
      ActivitySpec::Impl::kNoCheck, std::nullopt, "open /etc/utmp for the user"});
  op1.gate_condition = "add \"../etc/passwd\" entry to /etc/utmp";

  OperationSpec op2;
  op2.name = "Rwall daemon writes messages";
  op2.object_description = "filenames read from /etc/utmp";
  op2.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kObjectTypeCheck,
      "write the user message to each listed file",
      file_type_is("file_type", "terminal"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "write user message to the terminal or file"});
  op2.gate_condition = "rwalld writes the message into regular file /etc/passwd";

  spec.operations = {std::move(op1), std::move(op2)};
  spec.probe_domains["pFSM1"] = bool_domain("requester", "is_root");
  spec.probe_domains["pFSM2"] = string_domain(
      "target", "file_type", {"terminal", "file", "directory", "symlink"});
  return spec;
}

VulnerabilitySpec iis_spec() {
  VulnerabilitySpec spec;
  spec.name = "IIS superfluous filename decoding (autotool)";
  spec.bugtraq_ids = {2708};
  spec.vulnerability_class = "Path Traversal";
  spec.software = "Microsoft IIS";
  spec.consequence = "arbitrary program execution outside /wwwroot/scripts";

  OperationSpec op1;
  op1.name = "Decode and validate the CGI filename";
  op1.object_description = "the requested CGI filepath";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "decode the filename; check; decode again; execute",
      no_path_traversal("fully_decoded"), ActivitySpec::Impl::kCustom,
      no_path_traversal("once_decoded"),
      "decode a second time and execute the target"});
  op1.gate_condition = "execute a program outside /wwwroot/scripts";

  spec.operations = {std::move(op1)};
  {
    std::vector<core::Object> d;
    const std::pair<const char*, const char*> cases[] = {
        {"hello.cgi", "hello.cgi"},
        {"../x", "../x"},
        {"..%2fx", "../x"},       // the double-decode gap
        {"sub/tool.cgi", "sub/tool.cgi"},
    };
    for (const auto& [once, full] : cases) {
      d.push_back(core::Object{"filepath"}
                      .with("once_decoded", std::string(once))
                      .with("fully_decoded", std::string(full)));
    }
    spec.probe_domains["pFSM1"] = d;
  }
  return spec;
}

VulnerabilitySpec ghttpd_spec() {
  VulnerabilitySpec spec;
  spec.name = "GHTTPD Log() stack buffer overflow (autotool)";
  spec.bugtraq_ids = {5960};
  spec.vulnerability_class = "Stack Buffer Overflow";
  spec.software = "GHTTPD 1.4";
  spec.consequence = "remote code execution with the server's privileges";

  OperationSpec op1;
  op1.name = "Log the request line";
  op1.object_description = "the request message";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "copy the request line into the 200-byte log buffer",
      length_at_most("message_length", 200), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "vsprintf(temp, \"%s ...\", request)"});
  op1.gate_condition = "the saved return address points to Mcode";

  OperationSpec op2;
  op2.name = "Return from Log()";
  op2.object_description = "the saved return address";
  op2.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kReferenceConsistencyCheck,
      "return through the saved return address",
      reference_unchanged("ret_unchanged"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "jump to the saved return address"});
  op2.gate_condition = "Execute Mcode";

  spec.operations = {std::move(op1), std::move(op2)};
  spec.probe_domains["pFSM1"] =
      int_boundary_domain("message", "message_length", {0, 200, 208});
  spec.probe_domains["pFSM2"] = bool_domain("ret", "ret_unchanged");
  return spec;
}

VulnerabilitySpec rpcstatd_spec() {
  VulnerabilitySpec spec;
  spec.name = "rpc.statd remote format string (autotool)";
  spec.bugtraq_ids = {1480};
  spec.vulnerability_class = "Format String";
  spec.software = "rpc.statd";
  spec.consequence = "remote root via %n rewrite of the return address";

  OperationSpec op1;
  op1.name = "Log the caller-supplied filename";
  op1.object_description = "the filename string";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kContentAttributeCheck,
      "pass the filename to syslog() as the format string",
      no_format_directives("filename"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "syslog(LOG_ERR, buf)"});
  op1.gate_condition = "%n stores the count over the saved return address";

  OperationSpec op2;
  op2.name = "Return from the logging function";
  op2.object_description = "the saved return address";
  op2.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kReferenceConsistencyCheck,
      "return through the saved return address",
      reference_unchanged("ret_unchanged"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "jump to the saved return address"});
  op2.gate_condition = "Execute Mcode";

  spec.operations = {std::move(op1), std::move(op2)};
  spec.probe_domains["pFSM1"] = string_domain(
      "filename", "filename",
      {"/var/lib/nfs/state", "%x %x %x", "%7842561c%4$n", "plain name"});
  spec.probe_domains["pFSM2"] = bool_domain("ret", "ret_unchanged");
  return spec;
}

std::vector<VulnerabilitySpec> all_specs() {
  std::vector<VulnerabilitySpec> out;
  out.push_back(sendmail_spec());
  out.push_back(nullhttpd_spec());
  out.push_back(xterm_spec());
  out.push_back(rwall_spec());
  out.push_back(iis_spec());
  out.push_back(ghttpd_spec());
  out.push_back(rpcstatd_spec());
  return out;
}

}  // namespace dfsm::analysis
