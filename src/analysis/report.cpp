#include "analysis/report.h"

#include <cstdio>
#include <sstream>

#include "bugtraq/classifier.h"
#include "bugtraq/curated.h"
#include "core/table.h"

namespace dfsm::analysis {

using core::TextTable;

std::string render_table1() {
  TextTable t{{"Vulnerability", "Description", "Reference elementary activity",
               "Assigned category", "Classifier agrees"}};
  t.title("Table 1: Ambiguity among vulnerability categories "
          "(same root cause, three categories)");
  for (const auto& r : bugtraq::table1_records()) {
    const auto act =
        r.activities[static_cast<std::size_t>(r.reference_activity)];
    t.add_row({"#" + std::to_string(r.id) + " " + r.software,
               r.description,
               to_string(act),
               to_string(r.category),
               bugtraq::classification_consistent(r) ? "yes" : "NO"});
  }
  return t.to_string();
}

std::string render_table2(const std::vector<core::FsmModel>& models) {
  TextTable t{{"Vulnerability", "Object Type Check", "Content and Attribute Check",
               "Reference Consistency Check"}};
  t.title("Table 2: Types of pFSMs");
  for (const auto& m : models) {
    std::string cols[3];
    for (const auto& s : m.summaries()) {
      auto& cell = cols[static_cast<std::size_t>(s.type)];
      if (!cell.empty()) cell += "; ";
      cell += s.pfsm_name + ": " + s.question + "?";
    }
    t.add_row({m.name(), cols[0].empty() ? "-" : cols[0],
               cols[1].empty() ? "-" : cols[1], cols[2].empty() ? "-" : cols[2]});
  }
  return t.to_string();
}

std::string render_figure2() {
  std::ostringstream os;
  os << "Figure 2: the primitive FSM (pFSM)\n"
     << "==================================\n"
     << "States     : SPEC check, Reject, Accept\n"
     << "Transitions: SPEC_ACPT (check -> accept)   specification accepts\n"
     << "             SPEC_REJ  (check -> reject)   specification rejects\n"
     << "             IMPL_REJ  (reject, expected)  implementation also rejects\n"
     << "             IMPL_ACPT (reject -> accept)  HIDDEN PATH = vulnerability\n\n";
  TextTable t{{"spec(o)", "impl(o)", "path", "final state", "meaning"}};
  t.title("Exhaustive outcome table");
  t.add_row({"accept", "-", "SPEC_ACPT", "Accept", "benign object accepted"});
  t.add_row({"reject", "reject", "SPEC_REJ, IMPL_REJ", "Reject",
             "attack foiled at this elementary activity"});
  t.add_row({"reject", "accept", "SPEC_REJ, IMPL_ACPT", "Accept",
             "predicate violated - exploit proceeds"});
  os << t.to_string();
  return os.str();
}

std::string render_figure8(const std::vector<core::FsmModel>& models) {
  const auto c = core::census(models);
  TextTable t{{"Generic pFSM type", "Count", "Share"}};
  t.title("Figure 8 / §6: generic pFSM types across all modeled vulnerabilities");
  const core::PfsmType order[] = {
      core::PfsmType::kObjectTypeCheck,
      core::PfsmType::kContentAttributeCheck,
      core::PfsmType::kReferenceConsistencyCheck,
  };
  for (auto type : order) {
    t.add_row({to_string(type), std::to_string(c.of(type)),
               core::pct(static_cast<double>(c.of(type)),
                         static_cast<double>(c.total))});
  }
  std::ostringstream os;
  os << t.to_string() << "Total pFSMs: " << c.total << " across "
     << models.size() << " models\n";
  return os.str();
}

std::string render_lemma(const std::vector<LemmaReport>& reports) {
  TextTable t{{"Case study", "Checks", "Masks", "Baseline exploited",
               "All checks foil", "Lemma 2 holds", "Benign preserved",
               "Single checks that foil"}};
  t.title("Lemma verification: exhaustive check-mask sweep per case study");
  for (const auto& r : reports) {
    std::string singles;
    for (std::size_t idx : r.foiling_single_checks) {
      if (!singles.empty()) singles += ", ";
      singles += r.checks[idx].name.substr(0, r.checks[idx].name.find(':'));
    }
    t.add_row({r.study_name, std::to_string(r.checks.size()),
               std::to_string(r.results.size()),
               r.baseline_exploited ? "yes" : "NO",
               r.all_checks_foil ? "yes" : "NO", r.lemma2_holds ? "yes" : "NO",
               r.benign_preserved ? "yes" : "NO",
               singles.empty() ? "-" : singles});
  }
  return t.to_string();
}

std::string render_mask_table(const LemmaReport& report) {
  TextTable t{{"Mask", "Operation secured", "Exploited", "Foiled", "Benign OK",
               "Detail"}};
  t.title(report.study_name + ": all " + std::to_string(report.results.size()) +
          " check combinations");
  for (const auto& row : report.results) {
    std::string mask;
    for (bool b : row.mask) mask += b ? '1' : '0';
    t.add_row({mask, row.some_operation_secured ? "yes" : "no",
               row.exploit.exploited ? "YES" : "no",
               row.exploit.foiled ? "yes" : "no",
               row.benign.service_ok ? "yes" : "NO",
               row.exploit.detail.substr(0, 56)});
  }
  return t.to_string();
}

std::string render_discovery(const DiscoveryReport& report) {
  std::ostringstream os;
  TextTable t{{"contentLen", "body bytes", "buffer", "bytes read",
               "len(input)<=size(buf)", "outcome"}};
  t.title("Discovery campaign: " + report.configuration);
  for (const auto& p : report.probes) {
    t.add_row({std::to_string(p.content_len), std::to_string(p.body_len),
               std::to_string(p.buffer_size), std::to_string(p.bytes_read),
               p.predicate_violated ? "VIOLATED" : (p.rejected ? "(rejected)" : "holds"),
               p.note.substr(0, 48)});
  }
  os << t.to_string() << "Violations: " << report.violations << "\n"
     << "Finding: " << report.finding << "\n";
  if (report.model_checked > 0) {
    os << "Model cross-validation: Figure-4 chain agrees with the sandbox "
          "on "
       << report.model_agreements << "/" << report.model_checked
       << " probes\n";
  }
  return os.str();
}

std::string render_sweep_telemetry(const std::vector<LemmaReport>& reports) {
  TextTable t{{"Case study", "exploit runs", "benign runs", "memo hits",
               "memo misses", "invalidated"}};
  t.title("Sweep cache telemetry (store hits cost no study run)");
  std::size_t hits = 0;
  std::size_t misses = 0;
  for (const auto& r : reports) {
    hits += r.memo_hits;
    misses += r.memo_misses;
    t.add_row({r.study_name, std::to_string(r.exploit_evaluations),
               std::to_string(r.benign_evaluations),
               std::to_string(r.memo_hits), std::to_string(r.memo_misses),
               std::to_string(r.entries_invalidated)});
  }
  std::ostringstream os;
  os << t.to_string();
  const std::size_t lookups = hits + misses;
  os << "Store lookups: " << lookups << ", hits: " << hits;
  if (lookups > 0) {
    os << " (" << (100 * hits) / lookups << "%)";
  }
  os << "\n";
  return os.str();
}

namespace {

std::string telemetry_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string sweep_telemetry_json(const std::vector<LemmaReport>& reports) {
  std::ostringstream os;
  os << "{\n  \"sweeps\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    os << "    {\"study\": \"" << telemetry_json_escape(r.study_name)
       << "\", "
       << "\"exploit_evaluations\": " << r.exploit_evaluations << ", "
       << "\"benign_evaluations\": " << r.benign_evaluations << ", "
       << "\"memo_hits\": " << r.memo_hits << ", "
       << "\"memo_misses\": " << r.memo_misses << ", "
       << "\"entries_invalidated\": " << r.entries_invalidated << "}"
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace dfsm::analysis
