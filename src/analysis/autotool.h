// autotool.h — the automatic vulnerability-analysis tool the paper's
// conclusion calls for (§7): feed it a *declarative* description of an
// implementation's operations — which elementary activities it performs,
// which predicate each activity must satisfy (drawn from the predicate
// catalogue), and what the implementation actually checks — and it
// assembles the FSM model, hunts for hidden paths over probe domains, and
// writes the analyst's report.
//
// The manual workflow of §4-§5 (read the report, read the source, draw
// the pFSMs, find the dotted transition) becomes:
//     spec -> AutoTool::analyze(spec) -> findings.
#ifndef DFSM_ANALYSIS_AUTOTOOL_H
#define DFSM_ANALYSIS_AUTOTOOL_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/model.h"

namespace dfsm::analysis {

/// One elementary activity of the implementation under analysis.
struct ActivitySpec {
  std::string pfsm_name;      ///< e.g. "pFSM2"
  core::PfsmType type;        ///< Figure 8 classification
  std::string activity;       ///< what the code does here
  core::Predicate spec;       ///< the derived security predicate
  /// What the implementation enforces at this activity:
  enum class Impl {
    kNoCheck,      ///< nothing — IMPL_REJ is absent ("?" in the figures)
    kMatchesSpec,  ///< exactly the predicate — declared secure
    kCustom,       ///< something else (often weaker) — supply `impl`
  };
  Impl impl_status = Impl::kNoCheck;
  std::optional<core::Predicate> impl;  ///< required iff kCustom
  std::string action;                   ///< the accept-transition Action
};

/// One operation (a series of activities on one object) plus the
/// propagation gate its exploitation fires.
struct OperationSpec {
  std::string name;
  std::string object_description;
  std::vector<ActivitySpec> activities;
  std::string gate_condition;
};

/// The full declarative input.
struct VulnerabilitySpec {
  std::string name;
  std::vector<int> bugtraq_ids;
  std::string vulnerability_class;
  std::string software;
  std::string consequence;
  std::vector<OperationSpec> operations;
  /// Probe domains per pFSM name for hidden-path hunting (activities
  /// without a domain are assembled but reported "not probed").
  std::map<std::string, std::vector<core::Object>> probe_domains;
};

/// One per-activity analysis result.
struct AutoToolFinding {
  std::string operation;
  std::string pfsm_name;
  core::PfsmType type = core::PfsmType::kContentAttributeCheck;
  bool probed = false;
  std::size_t domain_size = 0;
  bool hidden_path = false;        ///< a witness exists on the domain
  bool declared_secure = false;    ///< impl == spec by construction
  std::string sample_witness;      ///< first witness, described
};

/// The analyst's report.
struct AutoToolReport {
  core::FsmModel model;
  std::vector<AutoToolFinding> findings;

  /// Any probed activity exhibited a hidden path.
  [[nodiscard]] bool vulnerable() const;
  /// The vulnerable activities' pFSM names, in order.
  [[nodiscard]] std::vector<std::string> vulnerable_pfsms() const;
  /// Multi-line report text (model + per-activity verdicts).
  [[nodiscard]] std::string to_text() const;
};

class AutoTool {
 public:
  /// Assembles the FsmModel from the declarative spec. Throws
  /// std::invalid_argument on malformed input (kCustom without an impl,
  /// empty operations, ...).
  [[nodiscard]] static core::FsmModel assemble(const VulnerabilitySpec& spec);

  /// assemble + hidden-path hunt over the probe domains.
  [[nodiscard]] static AutoToolReport analyze(const VulnerabilitySpec& spec);
};

/// A ready-made declarative spec of the Sendmail #3163 implementation
/// (exactly the facts an analyst extracts from the report + source),
/// used by tests, the example, and the bench to show the tool reproduces
/// the handwritten Figure 3 model and findings.
[[nodiscard]] VulnerabilitySpec sendmail_spec();

/// Declarative specs for the remaining case studies (specs.cpp). Each
/// carries probe domains; AutoTool::analyze on any of them reproduces the
/// corresponding handwritten model's verdicts.
[[nodiscard]] VulnerabilitySpec nullhttpd_spec();
[[nodiscard]] VulnerabilitySpec xterm_spec();
[[nodiscard]] VulnerabilitySpec rwall_spec();
[[nodiscard]] VulnerabilitySpec iis_spec();
[[nodiscard]] VulnerabilitySpec ghttpd_spec();
[[nodiscard]] VulnerabilitySpec rpcstatd_spec();

/// All seven, in paper order (Sendmail, NULL HTTPD, xterm, rwall, IIS,
/// GHTTPD, rpc.statd) — parallel to apps::standard_models().
[[nodiscard]] std::vector<VulnerabilitySpec> all_specs();

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_AUTOTOOL_H
