// sweep_memo.h — the cross-sweep memo store (DESIGN.md §11).
//
// PR 5's memoized sweep engine evaluates each operation once per
// sub-mask of its OWN checks — but it rebuilt that cache from scratch on
// every sweep invocation. A SweepMemoStore keeps those per-(operation,
// sub-mask) outcomes alive across sweeps of the same study family:
// sampled → exhaustive escalation, repeated fault-campaign trials,
// sweep_all over the curated registry, and the k-candidate patch-ranking
// loops in defense_matrix / attack_graph all re-fill from it for free.
//
// Keying and soundness:
//   * the FULL key is (study name, operation id, sub-mask) compared by
//     exact equality — the 64-bit hash only buckets, so a fingerprint or
//     hash collision across distinct operations cannot alias entries BY
//     CONSTRUCTION (tests pin this);
//   * every entry carries the operation's structural fingerprint
//     (core::fingerprint over its pFSM set). A lookup whose caller-side
//     fingerprint differs finds a STALE entry: the operation's check set
//     changed since the entry was written. The entry is dropped, counted
//     in Stats::invalidated, and the lookup misses — so a changed pFSM
//     set invalidates exactly that operation's entries and nothing else;
//   * the study-family name is part of the key AND of the contract: a
//     family name identifies the application's UNCHECKED (all-off)
//     behaviour. Changing unchecked behaviour under a reused name is
//     outside the store's soundness scope — use a new family name (the
//     secured-study wrapper does exactly that). The
//     kMissedInvalidationOnPatch fault mutator exercises the violation.
#ifndef DFSM_ANALYSIS_SWEEP_MEMO_H
#define DFSM_ANALYSIS_SWEEP_MEMO_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "apps/case_study.h"
#include "core/fingerprint.h"
#include "runtime/shared_store.h"

namespace dfsm::analysis {

/// Full structural key of one memoized cell.
struct MemoKey {
  std::string study;        ///< study-family name
  std::size_t operation;    ///< operation id (kBaselineOperation = baseline)
  std::uint64_t submask = 0;

  [[nodiscard]] bool operator==(const MemoKey&) const = default;
};

/// The baseline (all-checks-off) cell's pseudo operation id.
inline constexpr std::size_t kBaselineOperation =
    static_cast<std::size_t>(-1);

struct MemoKeyHash {
  [[nodiscard]] std::size_t operator()(const MemoKey& k) const noexcept {
    core::Fingerprinter fp;
    fp.mix(k.study)
        .mix(static_cast<std::uint64_t>(k.operation))
        .mix(k.submask);
    return static_cast<std::size_t>(fp.digest());
  }
};

/// One cached outcome: the study with ONLY this operation's checks
/// enabled per `submask`, plus whether that run diverged from the
/// all-off baseline, validated by the operation's fingerprint.
struct MemoEntry {
  std::uint64_t op_fingerprint = 0;
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool exploit_blocks = false;
  bool benign_blocks = false;
};

/// Thread-safe cross-sweep memo store: every operation is individually
/// safe from any thread, and a stale-entry drop re-validates the
/// fingerprint under the store lock (SharedLruStore::erase_if), so a
/// racing lookup can never erase a fresh entry a concurrent writer just
/// re-inserted under the same key. Hit/miss/invalidation COUNTS are only
/// deterministic under the caller contract — concurrent users keep their
/// keys disjoint (as sweep_all's per-family keys do) or serialize their
/// lookup/insert phases (as the engine's three-phase fill does); see
/// runtime::SharedLruStore and the keying contract above.
class SweepMemoStore {
 public:
  struct Stats {
    std::size_t hits = 0;         ///< fresh-fingerprint lookups served
    std::size_t misses = 0;       ///< absent entries
    std::size_t invalidated = 0;  ///< stale entries dropped on lookup
    std::size_t evictions = 0;    ///< entries dropped by the LRU budget
    std::size_t size = 0;
    std::size_t max_entries = 0;
  };

  /// @param max_entries LRU entry budget; 0 = unbounded.
  explicit SweepMemoStore(std::size_t max_entries = 0)
      : store_(max_entries) {}

  /// Returns the entry when present AND its fingerprint matches
  /// `op_fingerprint`. A mismatch erases the stale entry, counts an
  /// invalidation, and reports a miss. `invalidated`, when non-null, is
  /// set to whether THIS lookup dropped a stale entry.
  [[nodiscard]] std::optional<MemoEntry> lookup(
      const MemoKey& key, std::uint64_t op_fingerprint,
      bool* invalidated = nullptr);

  /// Inserts (or refreshes) an entry; `entry.op_fingerprint` must already
  /// be set by the caller.
  void insert(const MemoKey& key, MemoEntry entry) {
    store_.put(key, std::move(entry));
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  void clear() { store_.clear(); }

  /// Keys most-recently-used first (test hook; see SharedLruStore).
  [[nodiscard]] std::vector<MemoKey> keys_by_recency() const {
    return store_.keys_by_recency();
  }

 private:
  runtime::SharedLruStore<MemoKey, MemoEntry, MemoKeyHash> store_;
  mutable std::mutex counters_mu_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t invalidated_ = 0;
};

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_SWEEP_MEMO_H
