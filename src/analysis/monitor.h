// monitor.h — runtime predicate monitoring: evaluating a vulnerability's
// FSM model against facts observed from a concrete execution, at
// elementary-activity granularity.
//
// This is the operational payoff of the paper's modeling: once a pFSM's
// predicate is written down, a monitor can watch a run and tell you
// WHICH elementary activity was subverted ("pFSM2 took IMPL_ACPT: x=-8448
// accepted by the shipped x<=100 check"), rather than just that the
// process crashed or the password file changed.
#ifndef DFSM_ANALYSIS_MONITOR_H
#define DFSM_ANALYSIS_MONITOR_H

#include <string>
#include <vector>

#include "core/model.h"
#include "core/trace.h"

namespace dfsm::analysis {

/// A monitor bound to one model; feed it per-pFSM observation objects and
/// it walks the machines, accumulating a trace and violation records.
class RuntimeMonitor {
 public:
  explicit RuntimeMonitor(core::FsmModel model);

  /// Walks one full execution's observations through the chain (outer
  /// index = operation, inner = pFSM). Returns the chain result and
  /// appends every transition to the trace.
  core::ChainResult observe(const std::vector<std::vector<core::Object>>& inputs);

  [[nodiscard]] const core::FsmModel& model() const noexcept { return model_; }
  [[nodiscard]] const core::Trace& trace() const noexcept { return trace_; }

  /// Violations (hidden-path traversals) recorded so far, as
  /// "operation/pFSM: object" strings.
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

  /// Enables/disables per-transition trace recording (default on).
  /// Violations — the verdicts — are ALWAYS recorded; the trace is only
  /// needed when a walk will be rendered or correlated, and recording
  /// it is the dominant per-observe() allocation cost. The traffic
  /// engine runs violations-only monitors (loadgen/engine.cpp).
  void set_trace_enabled(bool enabled) noexcept { trace_enabled_ = enabled; }
  [[nodiscard]] bool trace_enabled() const noexcept { return trace_enabled_; }

  /// Clears the trace and the violation log for the next connection.
  /// Contract: capacity is RETAINED (plain clear(), never
  /// shrink_to_fit) — the load generator calls reset() once per request
  /// on a per-agent monitor, and steady-state traffic must not
  /// reallocate these vectors on every connection.
  void reset();

 private:
  core::FsmModel model_;
  core::Trace trace_;
  std::vector<std::string> violations_;
  bool trace_enabled_ = true;
};

// --- Observation builders for the memory-corruption case studies -------

/// Sendmail (Figure 3): builds the three observation objects from the
/// attacker-visible inputs and the GOT state at call time.
[[nodiscard]] std::vector<std::vector<core::Object>> sendmail_observation(
    const std::string& str_x, const std::string& str_i, bool addr_setuid_unchanged);

/// NULL HTTPD (Figure 4): from contentLen, body length, derived buffer
/// size, and the two reference-consistency facts.
[[nodiscard]] std::vector<std::vector<core::Object>> nullhttpd_observation(
    std::int64_t content_len, std::int64_t input_length, std::int64_t buffer_size,
    bool links_unchanged, bool addr_free_unchanged);

/// xterm (Figure 5): the permission/symlink facts at check time and
/// whether the name->file binding survived to open time.
[[nodiscard]] std::vector<std::vector<core::Object>> xterm_observation(
    bool tom_may_write, bool is_symlink_at_check, bool binding_preserved);

/// rwall (Figure 6): requester privilege and the write target's type.
[[nodiscard]] std::vector<std::vector<core::Object>> rwall_observation(
    bool requester_is_root, const std::string& target_file_type);

/// IIS (Figure 7): the once-decoded and fully-decoded path forms.
[[nodiscard]] std::vector<std::vector<core::Object>> iis_observation(
    const std::string& once_decoded, const std::string& fully_decoded);

/// GHTTPD (Table 2): message length and return-address integrity.
[[nodiscard]] std::vector<std::vector<core::Object>> ghttpd_observation(
    std::int64_t message_length, bool ret_unchanged);

/// rpc.statd (Table 2): the filename and return-address integrity.
[[nodiscard]] std::vector<std::vector<core::Object>> rpcstatd_observation(
    const std::string& filename, bool ret_unchanged);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_MONITOR_H
