#include "analysis/discovery.h"

#include "apps/nullhttpd.h"
#include "runtime/parallel.h"
#include "staticlint/linter.h"
#include "staticlint/registry.h"

namespace dfsm::analysis {

namespace {

/// Replays every probe through the Figure-4 chain in one batch and
/// scores agreement: pFSM2 predicts an overflow exactly when
/// length(input) > size(PostData), and the sandbox reports one exactly
/// when the heap really was overrun. Only meaningful against the v0.5
/// server — Figure 4 models v0.5, where no pFSM is checked, so the chain
/// runs every probe to completion and op1's second outcome is pFSM2's.
void cross_validate_model(DiscoveryReport& report) {
  const auto model = apps::NullHttpd::figure4_model();

  // Lint the very chain the probes replay through, via the universal
  // runtime entry point: a malformed model should fail loudly here, not
  // only show up as probe-by-probe disagreement.
  const auto lint_run = staticlint::lint_chain(
      model.chain(), {}, staticlint::source_hint_for(model.name()));
  report.lint_rules_run = lint_run.rules_run;
  report.lint_findings = lint_run.findings.size();
  report.lint_clean = lint_run.findings.empty();

  std::vector<std::vector<std::vector<core::Object>>> input_sets;
  input_sets.reserve(report.probes.size());
  for (const auto& probe : report.probes) {
    // Causal propagation for op2/op3: the free-chunk links and addr_free
    // stay intact exactly when the copy stayed inside PostData.
    const bool overrun =
        probe.body_len > probe.buffer_size;
    std::vector<std::vector<core::Object>> inputs(3);
    inputs[0].push_back(core::Object{"request"}.with(
        "contentLen", static_cast<std::int64_t>(probe.content_len)));
    inputs[0].push_back(
        core::Object{"input"}
            .with("input_length", static_cast<std::int64_t>(probe.body_len))
            .with("buffer_size",
                  static_cast<std::int64_t>(probe.buffer_size)));
    inputs[1].push_back(
        core::Object{"free chunk B"}.with("links_unchanged", !overrun));
    inputs[2].push_back(
        core::Object{"addr_free"}.with("addr_free_unchanged", !overrun));
    input_sets.push_back(std::move(inputs));
  }
  const auto results = model.chain().evaluate_batch(input_sets);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& outcomes = results[i].operations[0].outcomes;
    if (outcomes.size() < 2) continue;  // op1 stopped before pFSM2
    ++report.model_checked;
    const bool predicted = outcomes[1].hidden_path_taken();
    if (predicted == report.probes[i].predicate_violated) {
      ++report.model_agreements;
    }
  }
}

DiscoveryReport run_campaign(std::string configuration,
                             apps::NullHttpdChecks checks) {
  DiscoveryReport report;
  report.configuration = std::move(configuration);

  // Boundary-value probe plan: truthful contentLen values, body lengths
  // straddling both contentLen and the derived buffer size, plus the
  // known-bad negative contentLen as a control. The plan is laid out
  // serially (the per-contentLen scout is cheap and feeds the body-length
  // grid) so the probe order is fixed before any probe fires.
  struct PlannedProbe {
    std::int32_t content_len;
    std::size_t body_len;
  };
  std::vector<PlannedProbe> plan;
  const std::int32_t content_lens[] = {-800, 0, 1, 100, 1000, 2048};
  for (std::int32_t cl : content_lens) {
    std::size_t buffer = 0;
    {
      // What buffer will the server derive? Scout a twin.
      try {
        buffer = apps::NullHttpd::scout(cl, checks).postdata_usable;
      } catch (const std::exception&) {
        buffer = 0;  // calloc would fail; probes will see a crash/reject
      }
    }
    const std::size_t body_lens[] = {
        cl > 0 ? static_cast<std::size_t>(cl) : 0,
        buffer,
        buffer + 1,
        buffer + 64,
        buffer + 1024,
    };
    for (std::size_t bl : body_lens) plan.push_back({cl, bl});
  }

  // Fire the grid across the runtime pool — every probe gets its own
  // simulated server, so probes are independent; parallel_map keeps them
  // in plan order and the verdict pass below stays serial, making the
  // report byte-identical to the serial campaign.
  report.probes = runtime::parallel_map<DiscoveryProbe>(
      plan.size(), [&](std::size_t i) {
        apps::NullHttpd server{checks};
        const auto r =
            server.handle_post(plan[i].content_len,
                               std::string(plan[i].body_len, 'A'));
        DiscoveryProbe probe;
        probe.content_len = plan[i].content_len;
        probe.body_len = plan[i].body_len;
        probe.buffer_size = r.postdata_usable;
        probe.bytes_read = r.bytes_read;
        probe.rejected = r.rejected;
        probe.predicate_violated = r.heap_overflowed;
        probe.note = r.detail;
        return probe;
      });

  for (const auto& probe : report.probes) {
    if (probe.predicate_violated) {
      ++report.violations;
      if (probe.content_len >= 0) report.found_new_vulnerability = true;
    }
  }

  if (report.found_new_vulnerability) {
    report.finding =
        "NEW VULNERABILITY: a request with a truthful non-negative "
        "Content-Length still overflows PostData — the recv loop's "
        "termination condition uses '||' where '&&' is required "
        "(source line 11), so recv never stops before the entire input is "
        "read. This is Bugtraq #6255.";
  } else if (report.violations > 0) {
    report.finding =
        "only the known #5774 signature (negative Content-Length) violates "
        "the pFSM2 predicate";
  } else {
    report.finding = "no predicate violations: length(input) <= size(PostData) "
                     "holds on every probe";
  }
  return report;
}

}  // namespace

DiscoveryReport probe_nullhttpd_v051() {
  apps::NullHttpdChecks v051;
  v051.content_len_nonneg = true;  // the 0.5.1 patch
  return run_campaign("Null HTTPD 0.5.1 (negative contentLen blocked, '||' loop)",
                      v051);
}

DiscoveryReport probe_nullhttpd_fixed() {
  apps::NullHttpdChecks fixed;
  fixed.content_len_nonneg = true;
  fixed.bounded_read_loop = true;  // the '&&' + bounded-recv fix
  return run_campaign("Null HTTPD with the '&&' bounded read loop", fixed);
}

DiscoveryReport probe_nullhttpd_v05() {
  auto report =
      run_campaign("Null HTTPD 0.5 (no contentLen check, '||' loop)", {});
  cross_validate_model(report);
  return report;
}

}  // namespace dfsm::analysis
