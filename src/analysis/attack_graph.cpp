#include "analysis/attack_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "analysis/chain_analyzer.h"
#include "analysis/sweep_memo.h"

namespace dfsm::analysis {

const char* to_string(Privilege p) noexcept {
  switch (p) {
    case Privilege::kNone: return "none";
    case Privilege::kUser: return "user";
    case Privilege::kRoot: return "root";
  }
  return "?";
}

std::vector<ExploitRule> standard_rules() {
  return {
      // Sendmail #3163: local setuid-binary abuse, yields root.
      {"Sendmail #3163 signed integer overflow", "sendmail", /*remote=*/false,
       Privilege::kRoot},
      // NULL HTTPD #5774/#6255: remote, yields the server's uid.
      {"NULL HTTPD #5774/#6255 heap overflow", "nullhttpd", /*remote=*/true,
       Privilege::kUser},
      // xterm race: local, yields root (via /etc/passwd).
      {"xterm log-file race", "xterm", /*remote=*/false, Privilege::kRoot},
      // rwall: remote daemon writing /etc/passwd -> root.
      {"Solaris rwall file corruption", "rwalld", /*remote=*/true,
       Privilege::kRoot},
      // IIS #2708: remote command execution as the web user.
      {"IIS #2708 superfluous decoding", "iis", /*remote=*/true,
       Privilege::kUser},
      // GHTTPD #5960: remote, server uid.
      {"GHTTPD #5960 stack overflow", "ghttpd", /*remote=*/true,
       Privilege::kUser},
      // rpc.statd #1480: remote, historically root (statd ran as root).
      {"rpc.statd #1480 format string", "rpc.statd", /*remote=*/true,
       Privilege::kRoot},
  };
}

namespace {

bool holds_at_least(const std::set<Fact>& facts, const std::string& host,
                    Privilege p) {
  for (const auto& f : facts) {
    if (f.host != host) continue;
    if (static_cast<int>(f.privilege) >= static_cast<int>(p)) return true;
  }
  return false;
}

}  // namespace

AttackGraph AttackGraph::build(const std::vector<Host>& hosts,
                               const std::vector<ExploitRule>& rules,
                               const std::vector<Fact>& attacker_start) {
  AttackGraph g;
  std::deque<Fact> queue;
  for (const auto& f : attacker_start) {
    if (g.facts_.insert(f).second) queue.push_back(f);
    g.start_.insert(f);
  }

  auto reaches = [&hosts](const std::string& from, const std::string& to) {
    if (from == to) return true;
    for (const auto& h : hosts) {
      if (h.name != from) continue;
      for (const auto& r : h.reaches) {
        if (r == to) return true;
      }
    }
    return false;
  };

  auto add_fact = [&g, &queue](const Fact& from, const Fact& to,
                               const std::string& rule) {
    if (g.facts_.count(to) != 0) return;
    g.facts_.insert(to);
    const AttackEdge edge{from, to, rule};
    g.edges_.push_back(edge);
    g.parent_.emplace(to, edge);
    queue.push_back(to);
  };

  while (!queue.empty()) {
    const Fact f = queue.front();
    queue.pop_front();
    for (const auto& h : hosts) {
      for (const auto& service : h.services) {
        for (const auto& rule : rules) {
          if (rule.patched || rule.software != service) continue;
          if (rule.remote) {
            // Fire from any vantage point that reaches h.
            if (!reaches(f.host, h.name)) continue;
            add_fact(f, Fact{h.name, rule.gained}, rule.name);
          } else {
            // Needs a local account on h.
            if (f.host != h.name ||
                static_cast<int>(f.privilege) < static_cast<int>(Privilege::kUser)) {
              continue;
            }
            add_fact(f, Fact{h.name, rule.gained}, rule.name);
          }
        }
      }
    }
  }
  return g;
}

bool AttackGraph::reachable(const Fact& goal) const {
  return holds_at_least(facts_, goal.host, goal.privilege);
}

std::vector<AttackEdge> AttackGraph::path_to(const Fact& goal) const {
  // Find the weakest held fact satisfying the goal with a parent chain.
  Fact target = goal;
  if (facts_.count(target) == 0) {
    // Maybe only a stronger privilege is held (root satisfies user).
    bool found = false;
    for (const auto& f : facts_) {
      if (f.host == goal.host &&
          static_cast<int>(f.privilege) >= static_cast<int>(goal.privilege)) {
        target = f;
        found = true;
        break;
      }
    }
    if (!found) return {};
  }
  std::vector<AttackEdge> path;
  Fact cur = target;
  while (start_.count(cur) == 0) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) break;  // initial fact
    path.push_back(it->second);
    cur = it->second.from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string AttackGraph::to_text() const {
  std::ostringstream os;
  os << "Facts (" << facts_.size() << "):\n";
  for (const auto& f : facts_) {
    os << "  " << f.host << " : " << to_string(f.privilege)
       << (start_.count(f) ? "  [initial]" : "") << '\n';
  }
  os << "Edges (" << edges_.size() << "):\n";
  for (const auto& e : edges_) {
    os << "  (" << e.from.host << ", " << to_string(e.from.privilege)
       << ") --[" << e.rule << "]--> (" << e.to.host << ", "
       << to_string(e.to.privilege) << ")\n";
  }
  return os.str();
}

CompoundChain compose_attack_path(const std::vector<AttackEdge>& path,
                                  const std::vector<core::FsmModel>& models) {
  if (path.empty()) {
    throw std::invalid_argument("compose_attack_path: empty path");
  }
  std::string name = "attack path:";
  for (const auto& e : path) {
    name += " [" + e.rule + "]";
  }
  CompoundChain cc{name, core::ExploitChain(name), {}};
  for (std::size_t k = 0; k < path.size(); ++k) {
    const auto& edge = path[k];
    const auto model_it =
        std::find_if(models.begin(), models.end(), [&](const core::FsmModel& m) {
          return m.name() == edge.rule;
        });
    if (model_it == models.end()) {
      throw std::invalid_argument(
          "compose_attack_path: no model named '" + edge.rule + "'");
    }
    const std::string prefix = "s" + std::to_string(k + 1) + ":";
    const core::ExploitChain& src = model_it->chain();
    for (std::size_t oi = 0; oi < src.size(); ++oi) {
      const core::Operation& op = src.operations()[oi];
      core::Operation copy(prefix + op.name(), op.object_description());
      for (const auto& p : op.pfsms()) {
        if (p.declared_secure()) {
          copy.add(core::Pfsm::secure(prefix + p.name(), p.type(),
                                      p.activity(), p.spec(), p.action()));
        } else {
          copy.add(core::Pfsm(prefix + p.name(), p.type(), p.activity(),
                              p.spec(), p.impl(), p.action()));
        }
      }
      // Interior gates keep the source condition; each step's final gate
      // records the fact the edge establishes, which doubles as the
      // precondition of step k+1 (the compound's propagation semantics).
      std::string gate = src.gates()[oi].condition;
      if (oi + 1 == src.size()) {
        gate = std::string(to_string(edge.to.privilege)) + "@" + edge.to.host +
               " via " + edge.rule;
      }
      cc.chain.add(std::move(copy), core::PropagationGate{std::move(gate)});
    }
    cc.steps.push_back(CompoundStep{edge.rule, edge.from, edge.to});
  }
  return cc;
}

staticlint::LintModel to_lint_model(const CompoundChain& cc) {
  staticlint::LintModel out = staticlint::LintModel::from_chain(cc.chain);
  out.compound.reserve(cc.steps.size());
  for (const auto& s : cc.steps) {
    out.compound.push_back(staticlint::LintCompoundStep{
        s.rule, s.pre.host, to_string(s.pre.privilege), s.con.host,
        to_string(s.con.privilege)});
  }
  return out;
}

CompoundPatchScore score_compound_patch(
    const std::vector<Host>& hosts, const std::vector<ExploitRule>& rules,
    const std::vector<Fact>& attacker_start, const Fact& goal,
    const std::vector<CompoundPatchTarget>& targets, SweepMemoStore* memo) {
  CompoundPatchScore score;

  const AttackGraph before = AttackGraph::build(hosts, rules, attacker_start);
  score.facts_before = before.facts().size();
  score.edges_before = before.edges().size();
  score.goal_reachable_before = before.reachable(goal);

  // Operation-level effect of each target, through the incremental sweep
  // path: one cache fill per distinct study (shared further across calls
  // when `memo` is given), one composition per target.
  SweepOptions opts;
  opts.memo = memo;
  std::vector<ExploitRule> patched_rules = rules;
  for (const auto& t : targets) {
    if (t.study == nullptr) {
      throw std::invalid_argument(
          "score_compound_patch: target for rule '" + t.rule +
          "' has no case study");
    }
    const auto rule_it =
        std::find_if(patched_rules.begin(), patched_rules.end(),
                     [&](const ExploitRule& r) { return r.name == t.rule; });
    if (rule_it == patched_rules.end()) {
      throw std::invalid_argument("score_compound_patch: no rule named '" +
                                  t.rule + "'");
    }
    SweepDelta delta;
    delta.secured_operations = {t.operation};
    const SweepSummary s = sweep_summary(*t.study, delta, opts);
    PatchedRuleScore r;
    r.rule = t.rule;
    r.study = t.study->name();
    r.operation = t.operation;
    r.residual_exploited_masks = s.exploited_masks;
    r.total_masks = s.total_masks;
    r.forecloses = s.exploited_masks == 0;
    if (r.forecloses) rule_it->patched = true;
    score.rules.push_back(std::move(r));
  }

  const AttackGraph after =
      AttackGraph::build(hosts, patched_rules, attacker_start);
  score.facts_after = after.facts().size();
  score.edges_after = after.edges().size();
  score.goal_reachable_after = after.reachable(goal);
  return score;
}

}  // namespace dfsm::analysis
