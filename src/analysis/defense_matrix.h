// defense_matrix.h — which deployed defence stops which memory-corruption
// exploit: the systematic version of the paper's §6 observation that
// "while techniques protecting the return address have been widely
// recognized, very few techniques are available to protect OTHER
// reference inconsistencies, such as ... function pointers, entries in
// GOT tables, and links to free memory chunks on the heap."
//
// Rows: the four memory-corruption exploits (Sendmail GOT underflow, the
// two NULL HTTPD heap overflows, GHTTPD stack smash, rpc.statd %n).
// Columns: the defence families of the paper's elementary activities —
// input validation, boundary-checked copy, StackGuard canary,
// reference-consistency checking. Every cell is a real sandboxed run,
// not an assertion.
#ifndef DFSM_ANALYSIS_DEFENSE_MATRIX_H
#define DFSM_ANALYSIS_DEFENSE_MATRIX_H

#include <string>
#include <vector>

namespace dfsm::analysis {

/// The defence families (one column each).
enum class Defense {
  kNone,              ///< baseline
  kInputValidation,   ///< reject bad input at elementary activity 1
  kBoundedCopy,       ///< boundary-checked copy at elementary activity 2
  kStackGuard,        ///< canary between locals and the return address
  kRefConsistency,    ///< check the reference (GOT / ret / chunk links)
};

[[nodiscard]] const char* to_string(Defense d) noexcept;

/// What a single (exploit, defence) run produced.
enum class CellOutcome {
  kExploited,      ///< Mcode ran — the defence did not help
  kFoiled,         ///< the defence stopped the exploit
  kIneffective,    ///< defence active but bypassed (== exploited with it on)
  kNotApplicable,  ///< the app has no such knob (e.g. bounded copy for %n)
};

[[nodiscard]] const char* to_string(CellOutcome o) noexcept;

struct DefenseCell {
  std::string exploit;
  Defense defense = Defense::kNone;
  CellOutcome outcome = CellOutcome::kExploited;
  std::string detail;
};

/// Runs the full matrix (every cell is a fresh sandboxed exploit run).
[[nodiscard]] std::vector<DefenseCell> defense_matrix();

/// Text rendering (exploit rows x defence columns).
[[nodiscard]] std::string render_defense_matrix(
    const std::vector<DefenseCell>& cells);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_DEFENSE_MATRIX_H
