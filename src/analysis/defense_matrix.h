// defense_matrix.h — which deployed defence stops which memory-corruption
// exploit: the systematic version of the paper's §6 observation that
// "while techniques protecting the return address have been widely
// recognized, very few techniques are available to protect OTHER
// reference inconsistencies, such as ... function pointers, entries in
// GOT tables, and links to free memory chunks on the heap."
//
// Rows: the four memory-corruption exploits (Sendmail GOT underflow, the
// two NULL HTTPD heap overflows, GHTTPD stack smash, rpc.statd %n).
// Columns: the defence families of the paper's elementary activities —
// input validation, boundary-checked copy, StackGuard canary,
// reference-consistency checking. Every cell is a real sandboxed run,
// not an assertion.
#ifndef DFSM_ANALYSIS_DEFENSE_MATRIX_H
#define DFSM_ANALYSIS_DEFENSE_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "apps/case_study.h"

namespace dfsm::analysis {

class SweepMemoStore;  // sweep_memo.h

/// The defence families (one column each).
enum class Defense {
  kNone,              ///< baseline
  kInputValidation,   ///< reject bad input at elementary activity 1
  kBoundedCopy,       ///< boundary-checked copy at elementary activity 2
  kStackGuard,        ///< canary between locals and the return address
  kRefConsistency,    ///< check the reference (GOT / ret / chunk links)
};

[[nodiscard]] const char* to_string(Defense d) noexcept;

/// What a single (exploit, defence) run produced.
enum class CellOutcome {
  kExploited,      ///< Mcode ran — the defence did not help
  kFoiled,         ///< the defence stopped the exploit
  kIneffective,    ///< defence active but bypassed (== exploited with it on)
  kNotApplicable,  ///< the app has no such knob (e.g. bounded copy for %n)
};

[[nodiscard]] const char* to_string(CellOutcome o) noexcept;

struct DefenseCell {
  std::string exploit;
  Defense defense = Defense::kNone;
  CellOutcome outcome = CellOutcome::kExploited;
  std::string detail;
};

/// Runs the full matrix (every cell is a fresh sandboxed exploit run).
[[nodiscard]] std::vector<DefenseCell> defense_matrix();

/// Text rendering (exploit rows x defence columns).
[[nodiscard]] std::string render_defense_matrix(
    const std::vector<DefenseCell>& cells);

// --- patch-set ranking (the Lemma's §6 "where to put the check") -------

/// How the per-candidate counts are produced.
enum class RankStrategy {
  /// One shared cache fill, then each candidate is a pure composition
  /// (analysis::sweep_summary with the operation pinned) — k candidates
  /// for the price of one sweep. The default.
  kIncremental,
  /// One full sweep per candidate (apps::make_secured_study + sweep),
  /// counting rows directly — the reference the incremental path is
  /// tested against.
  kFullSweeps,
};

[[nodiscard]] const char* to_string(RankStrategy s) noexcept;

/// One candidate patch: secure every check of this operation.
struct PatchCandidate {
  std::size_t operation = 0;
  std::string operation_name;          ///< from the study's FSM model chain
  std::uint64_t exploited_masks = 0;   ///< masks still exploited after patch
  std::uint64_t benign_broken_masks = 0;
  bool forecloses = false;             ///< exploited_masks == 0 (Lemma 2)
};

/// Candidates ranked best-first (fewest residual exploited masks, ties
/// by fewest broken benign masks, then operation id).
struct PatchRanking {
  std::string study_name;
  RankStrategy strategy = RankStrategy::kIncremental;
  std::uint64_t total_masks = 0;
  std::uint64_t unpatched_exploited_masks = 0;  ///< nothing secured
  std::vector<PatchCandidate> candidates;
  /// Total study evaluations across the whole ranking (the speedup the
  /// incremental strategy exists for; the bench pair gates on it).
  std::size_t exploit_evaluations = 0;
  std::size_t benign_evaluations = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
};

/// Ranks every operation of the study as a patch candidate. The two
/// strategies produce identical counts and ordering (tests assert it);
/// only the evaluation accounting differs. `memo` (incremental strategy
/// only) shares the cache fill across calls — pass the study-family
/// store to make repeated rankings nearly free; nullptr uses a private
/// store for the duration of the call.
[[nodiscard]] PatchRanking rank_patch_candidates(
    const apps::CaseStudy& study,
    RankStrategy strategy = RankStrategy::kIncremental,
    SweepMemoStore* memo = nullptr);

/// Text rendering of a ranking (one row per candidate, best first).
[[nodiscard]] std::string render_patch_ranking(const PatchRanking& ranking);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_DEFENSE_MATRIX_H
