#include "analysis/monitor.h"

#include "netsim/http.h"

namespace dfsm::analysis {

using core::Object;

RuntimeMonitor::RuntimeMonitor(core::FsmModel model) : model_(std::move(model)) {}

core::ChainResult RuntimeMonitor::observe(
    const std::vector<std::vector<core::Object>>& inputs) {
  // Violations-only monitors skip the per-outcome description strings —
  // the dominant allocation on the hot benign path — and re-render the
  // description from the input object on the (rare) violation.
  auto result = model_.chain().evaluate(inputs, trace_enabled_);
  if (trace_enabled_) trace_.append(result);
  for (std::size_t oi = 0; oi < result.operations.size(); ++oi) {
    const auto& op = result.operations[oi];
    const auto& pfsms = model_.chain().operations()[oi].pfsms();
    for (std::size_t pi = 0; pi < op.outcomes.size(); ++pi) {
      if (op.outcomes[pi].hidden_path_taken()) {
        const std::string description =
            trace_enabled_ ? op.outcomes[pi].object_description
                           : inputs[oi][pi].describe();
        violations_.push_back(op.operation_name + "/" + pfsms[pi].name() + ": " +
                              description);
      }
    }
  }
  return result;
}

void RuntimeMonitor::reset() {
  // clear() keeps the vectors' storage: a monitor reused across a load
  // run reaches steady state after the first request and stops touching
  // the allocator (see Monitor.ResetRetainsCapacity).
  trace_.clear();
  violations_.clear();
}

std::vector<std::vector<Object>> sendmail_observation(
    const std::string& str_x, const std::string& str_i,
    bool addr_setuid_unchanged) {
  const std::int64_t long_x = netsim::atol64(str_x);
  const std::int64_t long_i = netsim::atol64(str_i);
  const auto x32 = static_cast<std::int64_t>(netsim::atoi32(str_x));

  Object o1{"str_x and str_i"};
  o1.with("long_x", long_x).with("long_i", long_i);
  Object o2{"integer index x"};
  o2.with("x", x32);
  Object o3{"addr_setuid"};
  o3.with("addr_setuid_unchanged", addr_setuid_unchanged);

  return {{o1, o2}, {o3}};
}

std::vector<std::vector<Object>> nullhttpd_observation(
    std::int64_t content_len, std::int64_t input_length, std::int64_t buffer_size,
    bool links_unchanged, bool addr_free_unchanged) {
  Object o1{"contentLen"};
  o1.with("contentLen", content_len);
  Object o2{"input"};
  o2.with("input_length", input_length).with("buffer_size", buffer_size);
  Object o3{"free chunk B"};
  o3.with("links_unchanged", links_unchanged);
  Object o4{"addr_free"};
  o4.with("addr_free_unchanged", addr_free_unchanged);

  return {{o1, o2}, {o3}, {o4}};
}

std::vector<std::vector<Object>> xterm_observation(bool tom_may_write,
                                                   bool is_symlink_at_check,
                                                   bool binding_preserved) {
  Object o1{"the filename /usr/tom/x"};
  o1.with("tom_may_write", tom_may_write).with("is_symlink", is_symlink_at_check);
  Object o2{"name->file binding"};
  o2.with("binding_preserved", binding_preserved);
  return {{o1, o2}};
}

std::vector<std::vector<Object>> rwall_observation(
    bool requester_is_root, const std::string& target_file_type) {
  Object o1{"utmp write request"};
  o1.with("is_root", requester_is_root);
  Object o2{"write target"};
  o2.with("file_type", target_file_type);
  return {{o1}, {o2}};
}

std::vector<std::vector<Object>> iis_observation(const std::string& once_decoded,
                                                 const std::string& fully_decoded) {
  Object o{"CGI filepath"};
  o.with("once_decoded", once_decoded).with("fully_decoded", fully_decoded);
  return {{o}};
}

std::vector<std::vector<Object>> ghttpd_observation(std::int64_t message_length,
                                                    bool ret_unchanged) {
  Object o1{"request message"};
  o1.with("message_length", message_length);
  Object o2{"saved return address"};
  o2.with("ret_unchanged", ret_unchanged);
  return {{o1}, {o2}};
}

std::vector<std::vector<Object>> rpcstatd_observation(const std::string& filename,
                                                      bool ret_unchanged) {
  Object o1{"filename"};
  o1.with("filename", filename);
  Object o2{"saved return address"};
  o2.with("ret_unchanged", ret_unchanged);
  return {{o1}, {o2}};
}

}  // namespace dfsm::analysis
