// attack_graph.h — automated attack-graph generation over the modeled
// vulnerabilities: the Sheyner et al. line of work the paper cites (§2,
// [18]: "a finite state machine based technique to automatically
// construct attack graphs ... applied in a networked environment
// consisting of several users, various services, and a number of hosts").
//
// Each FsmModel becomes an exploit RULE: which software it applies to,
// what foothold the attacker needs (network reach for remote exploits, a
// local account for local ones), and what privilege exploitation yields.
// Nodes of the graph are (host, privilege) facts; edges are rule
// applications. Reachability from the attacker's start to a goal fact
// enumerates multi-host, multi-vulnerability attack paths — the chains of
// chains that sit one level above the paper's per-vulnerability FSMs.
#ifndef DFSM_ANALYSIS_ATTACK_GRAPH_H
#define DFSM_ANALYSIS_ATTACK_GRAPH_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/case_study.h"
#include "core/model.h"
#include "staticlint/model_ir.h"

namespace dfsm::analysis {

class SweepMemoStore;  // sweep_memo.h

/// Privilege the attacker holds on a host.
enum class Privilege {
  kNone,  ///< network reachability only
  kUser,  ///< an unprivileged account / service-uid code execution
  kRoot,  ///< full control
};

[[nodiscard]] const char* to_string(Privilege p) noexcept;

/// One host of the environment.
struct Host {
  std::string name;
  std::vector<std::string> services;  ///< software names (match rules)
  /// Hosts reachable over the network from this one ("" = the attacker's
  /// own vantage point is handled by AttackGraph::build's start set).
  std::vector<std::string> reaches;
};

/// One exploit rule derived from a vulnerability model.
struct ExploitRule {
  std::string name;        ///< model name (edge label)
  std::string software;    ///< service it applies to
  bool remote = false;     ///< needs network reach vs a local account
  Privilege gained = Privilege::kUser;
  bool patched = false;    ///< rule disabled (the what-if ablation)
};

/// The default rule set: one rule per standard model, with the paper's
/// remote/local attribution (§1: the studied set includes "both those
/// that can be exploited remotely ... and those that can be exploited by
/// local users").
[[nodiscard]] std::vector<ExploitRule> standard_rules();

/// A (host, privilege) fact node.
struct Fact {
  std::string host;
  Privilege privilege = Privilege::kNone;

  [[nodiscard]] bool operator<(const Fact& o) const {
    return host < o.host || (host == o.host && privilege < o.privilege);
  }
  [[nodiscard]] bool operator==(const Fact& o) const {
    return host == o.host && privilege == o.privilege;
  }
};

/// One applied-rule edge.
struct AttackEdge {
  Fact from;
  Fact to;
  std::string rule;
};

/// The generated graph plus path queries.
class AttackGraph {
 public:
  /// Saturates the fact set from the attacker's initial facts.
  ///
  /// Semantics: a REMOTE rule for service S on host H fires from any held
  /// fact (H', p') such that H' reaches H (or H' == H), yielding
  /// (H, gained). A LOCAL rule fires from (H, >=kUser), yielding
  /// (H, gained). Privileges are monotone: kRoot subsumes kUser.
  [[nodiscard]] static AttackGraph build(const std::vector<Host>& hosts,
                                         const std::vector<ExploitRule>& rules,
                                         const std::vector<Fact>& attacker_start);

  [[nodiscard]] const std::set<Fact>& facts() const noexcept { return facts_; }
  [[nodiscard]] const std::vector<AttackEdge>& edges() const noexcept {
    return edges_;
  }

  /// True when the attacker can establish the goal fact.
  [[nodiscard]] bool reachable(const Fact& goal) const;

  /// One shortest attack path (sequence of edges) to the goal; empty when
  /// unreachable or the goal is held initially.
  [[nodiscard]] std::vector<AttackEdge> path_to(const Fact& goal) const;

  /// Human-readable dump (facts + edges + optional path).
  [[nodiscard]] std::string to_text() const;

 private:
  std::set<Fact> facts_;
  std::vector<AttackEdge> edges_;
  std::map<Fact, AttackEdge> parent_;  // BFS tree for path reconstruction
  std::set<Fact> start_;
};

// --- compound composition (an attack path as ONE exploit chain) --------

/// One step of a composed attack path: the exploit rule applied, the
/// fact it consumed and the fact it established.
struct CompoundStep {
  std::string rule;
  Fact pre;
  Fact con;
};

/// An attack path flattened into ONE runnable ExploitChain — the "chain
/// of chains" the graph reasons about, materialized so the same
/// machinery that drives per-vulnerability models (evaluation, lint)
/// applies to the compound. Every operation/pFSM name is prefixed
/// "s<k>:" with its 1-based step index, keeping names unique across
/// steps that reuse a model.
struct CompoundChain {
  std::string name;
  core::ExploitChain chain;
  std::vector<CompoundStep> steps;  ///< parallel to the path's edges
};

/// Composes `path` (as returned by AttackGraph::path_to) into one
/// chain, pulling each edge's operations from the model whose name
/// matches the edge's rule. Throws std::invalid_argument on an empty
/// path or an edge whose rule names no model in `models`.
[[nodiscard]] CompoundChain compose_attack_path(
    const std::vector<AttackEdge>& path,
    const std::vector<core::FsmModel>& models);

/// Snapshots a compound chain into the lint IR with its step facts
/// filled in, so the GR graph-consistency rules (staticlint/rules.h)
/// can check the composition statically.
[[nodiscard]] staticlint::LintModel to_lint_model(const CompoundChain& cc);

// --- compound patch scoring (chains of chains, incrementally) ----------

/// Ties one graph rule to the case study + operation whose securing
/// would disable it: "patch rule R by securing operation `operation` of
/// `study`".
struct CompoundPatchTarget {
  const apps::CaseStudy* study = nullptr;
  std::size_t operation = 0;
  std::string rule;  ///< ExploitRule::name this patch disables
};

/// The per-rule verdict inside a compound score.
struct PatchedRuleScore {
  std::string rule;
  std::string study;
  std::size_t operation = 0;
  /// Securing the operation leaves zero exploited masks (Lemma 2), so
  /// the rule is disabled in the patched graph.
  bool forecloses = false;
  std::uint64_t residual_exploited_masks = 0;
  std::uint64_t total_masks = 0;
};

/// Graph-level effect of applying every target patch at once.
struct CompoundPatchScore {
  std::vector<PatchedRuleScore> rules;
  std::size_t facts_before = 0;
  std::size_t facts_after = 0;
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  bool goal_reachable_before = false;
  bool goal_reachable_after = false;
};

/// Scores a compound patch: each target's operation-level effect comes
/// from the incremental sweep path (analysis::sweep_summary with the
/// operation pinned, through `memo` when given — repeated what-if
/// scoring over the same studies re-evaluates nothing), and a rule whose
/// patch forecloses its exploit is disabled before rebuilding the graph.
/// Throws std::invalid_argument on a null target study or a rule name
/// absent from `rules`.
[[nodiscard]] CompoundPatchScore score_compound_patch(
    const std::vector<Host>& hosts, const std::vector<ExploitRule>& rules,
    const std::vector<Fact>& attacker_start, const Fact& goal,
    const std::vector<CompoundPatchTarget>& targets,
    SweepMemoStore* memo = nullptr);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_ATTACK_GRAPH_H
