// hidden_path.h — mechanized hidden-path detection: evidence that a
// pFSM's implementation accepts objects its specification rejects.
//
// The paper's analysts derive each pFSM by reading the report and the
// source; the dotted IMPL_ACPT transition is their conclusion. Given the
// two predicates, the conclusion becomes checkable: enumerate a domain of
// candidate objects and collect witnesses with !spec(o) && impl(o). The
// domain generators favour boundary values because that is where the
// studied predicates (ranges, lengths, sign checks) disagree.
#ifndef DFSM_ANALYSIS_HIDDEN_PATH_H
#define DFSM_ANALYSIS_HIDDEN_PATH_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/pfsm.h"
#include "runtime/shared_store.h"

namespace dfsm::analysis {

/// Evidence for (or against) a hidden path in one pFSM.
struct HiddenPathReport {
  std::string pfsm_name;
  std::size_t domain_size = 0;
  std::size_t spec_rejects = 0;        ///< objects the spec rejected
  std::vector<core::Object> witnesses; ///< spec-rejected but impl-accepted

  /// A hidden path was demonstrated on this domain.
  [[nodiscard]] bool vulnerable() const noexcept { return !witnesses.empty(); }
};

/// Scans a domain for hidden-path witnesses (keeps at most max_witnesses).
[[nodiscard]] HiddenPathReport detect_hidden_path(
    const core::Pfsm& pfsm, const std::vector<core::Object>& domain,
    std::size_t max_witnesses = 8);

/// Runs detect_hidden_path over every pFSM of a model, with a caller-
/// supplied domain per pFSM name (pFSMs without a domain are skipped).
/// The (operation x pFSM) grid is sharded over the parallel runtime with
/// an index-ordered merge, so the report order matches the serial walk
/// at every DFSM_THREADS setting.
[[nodiscard]] std::vector<HiddenPathReport> scan_model(
    const core::FsmModel& model,
    const std::map<std::string, std::vector<core::Object>>& domains,
    std::size_t max_witnesses = 8);

// --- memoized scans ----------------------------------------------------

/// Cache key of a memoized model scan. The model's structural
/// fingerprint (core::fingerprint) is the invalidation token — editing
/// any pFSM's predicates, action, or the chain shape changes it — and
/// the domain digest covers every object's rendered attributes, so two
/// scans share an entry only when model, domains, and witness cap all
/// agree. Like every fingerprint-keyed store, the full key is compared
/// on lookup; hashes only bucket.
struct ScanKey {
  std::string model;
  std::uint64_t model_fingerprint = 0;
  std::uint64_t domains_digest = 0;
  std::size_t max_witnesses = 0;
  [[nodiscard]] bool operator==(const ScanKey&) const = default;
};

struct ScanKeyHash {
  [[nodiscard]] std::size_t operator()(const ScanKey& k) const noexcept;
};

/// Shared store for whole-model scan results (e.g. across lint runs and
/// fault-campaign trials touching the same standard models).
using HiddenPathScanStore =
    runtime::SharedLruStore<ScanKey, std::vector<HiddenPathReport>,
                            ScanKeyHash>;

/// scan_model through a shared store: a hit returns the cached reports
/// without touching a predicate; a miss scans and inserts. Pass nullptr
/// to always scan.
[[nodiscard]] std::vector<HiddenPathReport> scan_model(
    const core::FsmModel& model,
    const std::map<std::string, std::vector<core::Object>>& domains,
    HiddenPathScanStore* memo, std::size_t max_witnesses = 8);

// --- Domain generators -------------------------------------------------

/// Objects named `name` with integer attribute `attr` taking boundary-
/// heavy values: the given interesting points plus +/-1 neighbours.
[[nodiscard]] std::vector<core::Object> int_boundary_domain(
    const std::string& name, const std::string& attr,
    const std::vector<std::int64_t>& interesting);

/// Dense sweep [lo, hi] with the given step.
[[nodiscard]] std::vector<core::Object> int_range_domain(
    const std::string& name, const std::string& attr, std::int64_t lo,
    std::int64_t hi, std::int64_t step = 1);

/// Objects with a boolean attribute in {false, true}.
[[nodiscard]] std::vector<core::Object> bool_domain(const std::string& name,
                                                    const std::string& attr);

/// Objects with a string attribute drawn from the given samples.
[[nodiscard]] std::vector<core::Object> string_domain(
    const std::string& name, const std::string& attr,
    const std::vector<std::string>& samples);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_HIDDEN_PATH_H
