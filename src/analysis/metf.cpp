#include "analysis/metf.h"

#include <algorithm>
#include <limits>

namespace dfsm::analysis {

MetfResult metf(const std::vector<Barrier>& barriers) {
  MetfResult r;
  double product = 1.0;
  for (const auto& b : barriers) {
    product *= std::clamp(b.pass_probability, 0.0, 1.0);
  }
  r.attempt_success_probability = product;
  if (product <= 0.0) {
    r.secure = true;
    r.expected_attempts = std::numeric_limits<double>::infinity();
    r.expected_actions = std::numeric_limits<double>::infinity();
    return r;
  }
  r.expected_attempts = 1.0 / product;

  // Absorbing chain: E_i = 1 + p_i E_{i+1} + (1 - p_i) E_0 with E_n = 0.
  // Backward substitution E_i = a_i + b_i E_0:
  //   a_i = 1 + p_i a_{i+1},  b_i = p_i b_{i+1} + (1 - p_i).
  double a = 0.0;
  double b = 0.0;
  for (auto it = barriers.rbegin(); it != barriers.rend(); ++it) {
    const double p = std::clamp(it->pass_probability, 0.0, 1.0);
    a = 1.0 + p * a;
    b = p * b + (1.0 - p);
  }
  r.expected_actions = barriers.empty() ? 0.0 : a / (1.0 - b);
  return r;
}

std::vector<Barrier> barriers_from_model(const core::FsmModel& model,
                                         double vulnerable_pass) {
  return barriers_from_model(model, vulnerable_pass, {});
}

std::vector<Barrier> barriers_from_model(
    const core::FsmModel& model, double vulnerable_pass,
    const std::vector<std::pair<std::string, double>>& overrides) {
  std::vector<Barrier> out;
  for (const auto& op : model.chain().operations()) {
    for (const auto& p : op.pfsms()) {
      Barrier b;
      b.name = p.name();
      b.pass_probability = p.declared_secure() ? 0.0 : vulnerable_pass;
      for (const auto& [name, prob] : overrides) {
        if (name == p.name()) b.pass_probability = prob;
      }
      out.push_back(std::move(b));
    }
  }
  return out;
}

}  // namespace dfsm::analysis
