#include "analysis/autotool.h"

#include <sstream>
#include <stdexcept>

#include "analysis/hidden_path.h"
#include "analysis/predicates.h"
#include "core/render.h"
#include "runtime/parallel.h"

namespace dfsm::analysis {

namespace {

core::Pfsm build_pfsm(const ActivitySpec& a) {
  switch (a.impl_status) {
    case ActivitySpec::Impl::kNoCheck:
      return core::Pfsm::unchecked(a.pfsm_name, a.type, a.activity, a.spec,
                                   a.action);
    case ActivitySpec::Impl::kMatchesSpec:
      return core::Pfsm::secure(a.pfsm_name, a.type, a.activity, a.spec,
                                a.action);
    case ActivitySpec::Impl::kCustom:
      if (!a.impl) {
        throw std::invalid_argument("activity '" + a.pfsm_name +
                                    "' declares a custom impl but supplies none");
      }
      return core::Pfsm{a.pfsm_name, a.type, a.activity, a.spec, *a.impl,
                        a.action};
  }
  throw std::invalid_argument("unknown impl status");
}

}  // namespace

core::FsmModel AutoTool::assemble(const VulnerabilitySpec& spec) {
  if (spec.operations.empty()) {
    throw std::invalid_argument("spec '" + spec.name + "' has no operations");
  }
  core::ExploitChain chain{spec.name};
  for (const auto& op_spec : spec.operations) {
    if (op_spec.activities.empty()) {
      throw std::invalid_argument("operation '" + op_spec.name +
                                  "' has no activities");
    }
    core::Operation op{op_spec.name, op_spec.object_description};
    for (const auto& a : op_spec.activities) {
      op.add(build_pfsm(a));
    }
    chain.add(std::move(op), core::PropagationGate{op_spec.gate_condition});
  }
  return core::FsmModel{spec.name,          spec.bugtraq_ids,
                        spec.vulnerability_class, spec.software,
                        spec.consequence,   std::move(chain)};
}

AutoToolReport AutoTool::analyze(const VulnerabilitySpec& spec) {
  AutoToolReport report{assemble(spec), {}};

  // Flatten the (operation, pFSM) pairs so every probe hunt — the hot
  // part, one domain scan per probed activity — fans out across the
  // runtime pool. parallel_map keeps findings in flattening order, so
  // the report is byte-identical to the serial walk at any thread count.
  struct Item {
    const core::Operation* op;
    const core::Pfsm* pfsm;
  };
  std::vector<Item> items;
  for (const auto& op : report.model.chain().operations()) {
    for (const auto& p : op.pfsms()) items.push_back({&op, &p});
  }

  report.findings = runtime::parallel_map<AutoToolFinding>(
      items.size(), [&](std::size_t i) {
        const auto& [op, p] = items[i];
        AutoToolFinding f;
        f.operation = op->name();
        f.pfsm_name = p->name();
        f.type = p->type();
        f.declared_secure = p->declared_secure();
        auto it = spec.probe_domains.find(p->name());
        if (it != spec.probe_domains.end()) {
          f.probed = true;
          const auto hp = detect_hidden_path(*p, it->second, /*max_witnesses=*/1);
          f.domain_size = hp.domain_size;
          f.hidden_path = hp.vulnerable();
          if (!hp.witnesses.empty()) {
            f.sample_witness = hp.witnesses.front().describe();
          }
        }
        return f;
      });
  return report;
}

bool AutoToolReport::vulnerable() const {
  for (const auto& f : findings) {
    if (f.hidden_path) return true;
  }
  return false;
}

std::vector<std::string> AutoToolReport::vulnerable_pfsms() const {
  std::vector<std::string> out;
  for (const auto& f : findings) {
    if (f.hidden_path) out.push_back(f.pfsm_name);
  }
  return out;
}

std::string AutoToolReport::to_text() const {
  std::ostringstream os;
  os << "=== Automatic vulnerability analysis: " << model.name() << " ===\n\n";
  os << core::to_ascii(model) << '\n';
  os << "Per-activity verdicts:\n";
  for (const auto& f : findings) {
    os << "  " << f.operation << " / " << f.pfsm_name << " ["
       << to_string(f.type) << "]: ";
    if (f.declared_secure) {
      os << "SECURE (implementation matches the specification)";
    } else if (!f.probed) {
      os << "not probed (no domain supplied)";
    } else if (f.hidden_path) {
      os << "VULNERABLE — hidden IMPL_ACPT path; witness: " << f.sample_witness;
    } else {
      os << "no hidden path found on " << f.domain_size << " probes";
    }
    os << '\n';
  }
  os << "\nVerdict: "
     << (vulnerable() ? "VULNERABLE (at least one predicate violated by the "
                        "implementation)"
                      : "no vulnerability demonstrated on the given domains")
     << '\n';
  return os.str();
}

VulnerabilitySpec sendmail_spec() {
  using predicates::int_at_most;
  using predicates::int_in_range;
  using predicates::reference_unchanged;
  using predicates::representable_as_int32;

  VulnerabilitySpec spec;
  spec.name = "Sendmail debugging function signed integer overflow (autotool)";
  spec.bugtraq_ids = {3163};
  spec.vulnerability_class = "Integer Overflow";
  spec.software = "Sendmail";
  spec.consequence = "attacker-specified code runs with Sendmail's privileges";

  OperationSpec op1;
  op1.name = "Write debug level i to tTvect[x]";
  op1.object_description = "input integers x, i";
  op1.activities.push_back(ActivitySpec{
      "pFSM1", core::PfsmType::kObjectTypeCheck,
      "get text strings str_x and str_i; convert to integers",
      representable_as_int32("long_x"), ActivitySpec::Impl::kNoCheck,
      std::nullopt, "convert str_i and str_x to integer i and x"});
  op1.activities.push_back(ActivitySpec{
      "pFSM2", core::PfsmType::kContentAttributeCheck, "write i to tTvect[x]",
      int_in_range("x", 0, 100), ActivitySpec::Impl::kCustom,
      int_at_most("x", 100), "tTvect[x] = i"});
  op1.gate_condition = ".GOT entry of setuid points to Mcode";

  OperationSpec op2;
  op2.name = "Manipulate the GOT entry of function setuid";
  op2.object_description = "addr_setuid (function pointer)";
  op2.activities.push_back(ActivitySpec{
      "pFSM3", core::PfsmType::kReferenceConsistencyCheck,
      "execute code referred by addr_setuid when setuid() is called",
      reference_unchanged("addr_setuid_unchanged"),
      ActivitySpec::Impl::kNoCheck, std::nullopt,
      "call through the GOT entry of setuid()"});
  op2.gate_condition = "Execute Mcode";

  spec.operations = {std::move(op1), std::move(op2)};

  spec.probe_domains["pFSM1"] = int_boundary_domain(
      "str_x", "long_x", {0, 100, (std::int64_t{1} << 31), (std::int64_t{1} << 32)});
  spec.probe_domains["pFSM2"] =
      int_boundary_domain("x", "x", {-8448, -1, 0, 100});
  spec.probe_domains["pFSM3"] =
      bool_domain("addr_setuid", "addr_setuid_unchanged");
  return spec;
}

}  // namespace dfsm::analysis
