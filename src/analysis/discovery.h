// discovery.h — the mechanized version of the paper's headline anecdote:
// "in the process of constructing the FSM model for the known
// vulnerability of NULL HTTPD, we discovered a new, as yet unknown
// vulnerability (Bugtraq ID 6255)".
//
// Constructing Figure 4 produces pFSM2's predicate, length(input) <=
// size(PostData). The discovery engine takes that predicate seriously:
// it probes the *patched* server (v0.5.1, negative contentLen blocked)
// with boundary workloads — truthful contentLen values paired with body
// lengths straddling the buffer size — and watches the heap for predicate
// violations. The '||'-instead-of-'&&' recv loop surfaces immediately.
#ifndef DFSM_ANALYSIS_DISCOVERY_H
#define DFSM_ANALYSIS_DISCOVERY_H

#include <cstdint>
#include <string>
#include <vector>

namespace dfsm::analysis {

/// One probe of the server.
struct DiscoveryProbe {
  std::int32_t content_len = 0;
  std::size_t body_len = 0;
  std::size_t buffer_size = 0;   ///< usable size of PostData for this contentLen
  std::size_t bytes_read = 0;
  bool predicate_violated = false;  ///< bytes_read > buffer_size (pFSM2)
  bool rejected = false;            ///< the server refused the request
  std::string note;
};

/// The full probe campaign against one server configuration.
struct DiscoveryReport {
  std::string configuration;         ///< e.g. "Null HTTPD 0.5.1 ('||' loop)"
  std::vector<DiscoveryProbe> probes;
  std::size_t violations = 0;

  /// The #6255 signature: a violation with a non-negative (truthful)
  /// contentLen — i.e. a NEW vulnerability not explained by #5774.
  bool found_new_vulnerability = false;
  std::string finding;               ///< human-readable write-up

  /// Model cross-validation (v0.5 campaign only — Figure 4 models the
  /// v0.5 server): every probe is replayed through the Figure-4 chain in
  /// one ExploitChain::evaluate_batch call, and pFSM2's hidden-path
  /// verdict is compared against the sandboxed heap outcome. A
  /// disagreement means the model and the system diverged.
  std::size_t model_checked = 0;     ///< probes replayed through the chain
  std::size_t model_agreements = 0;  ///< probes where model == sandbox

  /// Static lint of the replayed chain (v0.5 campaign only): the same
  /// Figure-4 chain the probes are replayed through goes through
  /// staticlint::lint_chain — a campaign whose model itself is malformed
  /// should say so, not just disagree probe-by-probe.
  std::size_t lint_rules_run = 0;
  std::size_t lint_findings = 0;
  bool lint_clean = false;  ///< lint ran and found nothing
};

/// Probes NULL HTTPD v0.5.1 (the patched server) with boundary workloads;
/// rediscovers #6255.
[[nodiscard]] DiscoveryReport probe_nullhttpd_v051();

/// Control experiment: the same campaign against the '&&'-fixed server;
/// must find nothing.
[[nodiscard]] DiscoveryReport probe_nullhttpd_fixed();

/// Control experiment: the same campaign against v0.5 also reconfirms the
/// KNOWN #5774 (negative contentLen) alongside #6255.
[[nodiscard]] DiscoveryReport probe_nullhttpd_v05();

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_DISCOVERY_H
