// report.h — renderers for every table and figure the paper reports,
// shared by the benchmark binaries, the examples, and EXPERIMENTS.md.
#ifndef DFSM_ANALYSIS_REPORT_H
#define DFSM_ANALYSIS_REPORT_H

#include <string>
#include <vector>

#include "analysis/chain_analyzer.h"
#include "analysis/discovery.h"
#include "core/model.h"

namespace dfsm::analysis {

/// Table 1: the category-ambiguity table for the three signed-integer-
/// overflow reports (#3163, #5493, #3958), regenerated from the curated
/// records and the activity classifier.
[[nodiscard]] std::string render_table1();

/// Table 2: the pFSM-type classification across all case-study models.
[[nodiscard]] std::string render_table2(const std::vector<core::FsmModel>& models);

/// Figure 2: the primitive FSM, structurally, plus its exhaustive
/// outcome table (spec x impl -> transition path).
[[nodiscard]] std::string render_figure2();

/// Figure 8: the generic-type census over all models, with the paper's
/// §6 observations (content/attribute checks dominate; reference-
/// consistency gaps are the runner-up).
[[nodiscard]] std::string render_figure8(const std::vector<core::FsmModel>& models);

/// The Lemma sweep, one row per case study.
[[nodiscard]] std::string render_lemma(const std::vector<LemmaReport>& reports);

/// Per-study full 2^k mask table (the ablation detail).
[[nodiscard]] std::string render_mask_table(const LemmaReport& report);

/// The discovery campaign (the #6255 rediscovery narrative).
[[nodiscard]] std::string render_discovery(const DiscoveryReport& report);

/// Cross-sweep cache telemetry, one row per report: evaluations actually
/// run, store hits/misses, and entries invalidated by fingerprint. The
/// output is a pure function of the reports, so it is byte-identical at
/// every DFSM_THREADS setting (tests gate on it).
[[nodiscard]] std::string render_sweep_telemetry(
    const std::vector<LemmaReport>& reports);

/// The same telemetry as machine-readable JSON (dfsm_lint-style:
/// deterministic key order, escaped strings, trailing newline).
[[nodiscard]] std::string sweep_telemetry_json(
    const std::vector<LemmaReport>& reports);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_REPORT_H
