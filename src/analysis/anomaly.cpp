#include "analysis/anomaly.h"

#include <stdexcept>

namespace dfsm::analysis {

namespace {
constexpr const char* kStart = "\x01START";
constexpr const char* kEnd = "\x02END";
}  // namespace

AnomalyDetector::AnomalyDetector(std::size_t n) : n_(n) {
  if (n_ == 0) throw std::invalid_argument("AnomalyDetector requires n >= 1");
}

std::vector<std::string> AnomalyDetector::windows(const EventTrace& trace) const {
  // Sentinel-padded event stream: START e0 e1 ... ek END.
  std::vector<std::string> padded;
  padded.reserve(trace.size() + 2);
  padded.push_back(kStart);
  padded.insert(padded.end(), trace.begin(), trace.end());
  padded.push_back(kEnd);

  std::vector<std::string> out;
  if (padded.size() < n_) {
    // One short window covering the whole padded trace.
    std::string w;
    for (const auto& e : padded) w += e + "\x1f";
    out.push_back(std::move(w));
    return out;
  }
  for (std::size_t i = 0; i + n_ <= padded.size(); ++i) {
    std::string w;
    for (std::size_t j = 0; j < n_; ++j) w += padded[i + j] + "\x1f";
    out.push_back(std::move(w));
  }
  return out;
}

void AnomalyDetector::train(const EventTrace& trace) {
  for (auto& w : windows(trace)) known_.insert(std::move(w));
  ++trained_traces_;
}

void AnomalyDetector::train_all(const std::vector<EventTrace>& traces) {
  for (const auto& t : traces) train(t);
}

double AnomalyDetector::score(const EventTrace& trace) const {
  const auto ws = windows(trace);
  if (ws.empty()) return 0.0;
  std::size_t novel = 0;
  for (const auto& w : ws) {
    if (known_.count(w) == 0) ++novel;
  }
  return static_cast<double>(novel) / static_cast<double>(ws.size());
}

bool AnomalyDetector::anomalous(const EventTrace& trace, double threshold) const {
  return score(trace) > threshold;
}

std::vector<std::string> AnomalyDetector::novel_windows(
    const EventTrace& trace) const {
  std::vector<std::string> out;
  for (const auto& w : windows(trace)) {
    if (known_.count(w) == 0) out.push_back(w);
  }
  return out;
}

}  // namespace dfsm::analysis
