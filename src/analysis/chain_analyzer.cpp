#include "analysis/chain_analyzer.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>
#include <stdexcept>

#include "analysis/sweep_memo.h"
#include "apps/secured.h"
#include "core/fingerprint.h"
#include "runtime/parallel.h"

namespace dfsm::analysis {

namespace {

/// One operation's slice of the check vector: which global check
/// positions belong to it, in ascending position order.
struct OpChecks {
  std::size_t op = 0;
  std::vector<std::size_t> positions;
};

/// One memoized cell: the study's outcome with ONLY this operation's
/// checks enabled (per its sub-mask), everything else off. `*_blocks`
/// records whether that run diverged from the all-checks-off baseline —
/// by the Lemma's predicate independence, a non-diverging operation is
/// behaviourally absent from every composed mask.
struct CacheEntry {
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool exploit_blocks = false;
  bool benign_blocks = false;
};

[[nodiscard]] bool entries_equal(const CacheEntry& a, const CacheEntry& b) {
  return a.exploit == b.exploit && a.benign == b.benign &&
         a.exploit_blocks == b.exploit_blocks &&
         a.benign_blocks == b.benign_blocks;
}

std::vector<OpChecks> op_layout(const std::vector<apps::CheckSpec>& checks) {
  std::set<std::size_t> op_ids;
  for (const auto& c : checks) op_ids.insert(c.operation_index);
  std::vector<OpChecks> ops;
  ops.reserve(op_ids.size());
  for (std::size_t op : op_ids) {
    OpChecks oc;
    oc.op = op;
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (checks[i].operation_index == op) oc.positions.push_back(i);
    }
    ops.push_back(std::move(oc));
  }
  return ops;
}

/// Slot of operation id `op` in the layout; throws when the delta names
/// an operation the study has no checks for.
std::size_t slot_of(const std::vector<OpChecks>& ops, std::size_t op,
                    const std::string& study_name, const char* who) {
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    if (ops[oi].op == op) return oi;
  }
  throw std::invalid_argument(std::string{who} + ": '" + study_name +
                              "' has no checks for operation " +
                              std::to_string(op));
}

std::vector<bool> mask_bits(std::uint64_t bits, std::size_t k) {
  std::vector<bool> mask(k);
  for (std::size_t i = 0; i < k; ++i) mask[i] = (bits >> i) & 1;
  return mask;
}

/// The mask ids a sweep enumerates: all of [0, total) when it fits the
/// cap, otherwise an evenly-strided sample that pins mask 0 and mask
/// total-1. Pure function of (total, max_masks) — the determinism anchor
/// for sampled sweeps.
std::vector<std::uint64_t> sweep_mask_ids(std::uint64_t total,
                                          std::uint64_t max_masks) {
  std::vector<std::uint64_t> ids;
  if (max_masks == 0 || total <= max_masks) {
    ids.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t m = 0; m < total; ++m) ids.push_back(m);
    return ids;
  }
  if (max_masks == 1) return {0};
  ids.reserve(static_cast<std::size_t>(max_masks));
  for (std::uint64_t i = 0; i < max_masks; ++i) {
    // i scaled onto [0, total-1]; strictly increasing since total > max.
    ids.push_back(i * ((total - 1) / (max_masks - 1)) +
                  (i * ((total - 1) % (max_masks - 1))) / (max_masks - 1));
  }
  return ids;
}

/// The full-length mask holding `submask` at this operation's check
/// positions and 0 everywhere else — the cache-fill plumbing through the
/// study's ordinary run_exploit/run_benign mask interface.
std::vector<bool> expand_submask(const OpChecks& oc, std::uint64_t submask,
                                 std::size_t k) {
  std::vector<bool> mask(k);
  for (std::size_t j = 0; j < oc.positions.size(); ++j) {
    if ((submask >> j) & 1) mask[oc.positions[j]] = true;
  }
  return mask;
}

/// Mask-id form of expand_submask (indexes exhaustive baseline rows).
std::uint64_t expand_submask_bits(const OpChecks& oc, std::uint64_t submask) {
  std::uint64_t bits = 0;
  for (std::size_t j = 0; j < oc.positions.size(); ++j) {
    if ((submask >> j) & 1) bits |= std::uint64_t{1} << oc.positions[j];
  }
  return bits;
}

std::uint64_t gather_submask(const OpChecks& oc, std::uint64_t mask_id) {
  std::uint64_t s = 0;
  for (std::size_t j = 0; j < oc.positions.size(); ++j) {
    if ((mask_id >> oc.positions[j]) & 1) s |= std::uint64_t{1} << j;
  }
  return s;
}

/// Per-slot structural fingerprints, from the study's model chain. The
/// model's operations are indexed by the same operation ids the checks
/// carry; an id beyond the chain (a study without a full model mapping)
/// falls back to a (study, op) name fingerprint so it still invalidates
/// per-family.
std::vector<std::uint64_t> operation_fingerprints(
    const apps::CaseStudy& study, const std::vector<OpChecks>& ops) {
  const auto model = study.model();
  const auto& chain_ops = model.chain().operations();
  std::vector<std::uint64_t> fps(ops.size());
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    if (ops[oi].op < chain_ops.size()) {
      fps[oi] = core::fingerprint(chain_ops[ops[oi].op]);
    } else {
      core::Fingerprinter fp;
      fp.mix(study.name()).mix(static_cast<std::uint64_t>(ops[oi].op));
      fps[oi] = fp.digest();
    }
  }
  return fps;
}

/// The memoized engine: per-operation outcome caches plus the gate
/// composition that reconstitutes any full-mask row (DESIGN.md §10).
/// With a SweepMemoStore the cache fill runs in three deterministic
/// phases — serial lookup, parallel evaluation of the misses, serial
/// insertion — so memo accounting is thread-count-invariant (§11).
struct MemoizedEngine {
  std::vector<OpChecks> ops;
  CacheEntry baseline;                          ///< all checks off
  std::vector<std::vector<CacheEntry>> cache;   ///< [op][submask]
  bool compose_from_last = false;  ///< SweepFault::kWrongGateComposition

  /// Runs (or recalls) the shared all-checks-off baseline. The baseline
  /// is keyed by the study-family name alone (fingerprint 0): a family
  /// name identifies unchecked behaviour (DESIGN.md §11), so no
  /// per-operation patch ever invalidates it.
  void fill_baseline(const apps::CaseStudy& study, std::size_t k,
                     LemmaReport& report, SweepMemoStore* memo) {
    if (memo != nullptr) {
      const MemoKey key{report.study_name, kBaselineOperation, 0};
      if (auto e = memo->lookup(key, 0)) {
        baseline.exploit = std::move(e->exploit);
        baseline.benign = std::move(e->benign);
        ++report.memo_hits;
        return;
      }
      ++report.memo_misses;
    }
    baseline.exploit = study.run_exploit(std::vector<bool>(k));
    baseline.benign = study.run_benign(std::vector<bool>(k));
    report.exploit_evaluations += 1;
    report.benign_evaluations += 1;
    if (memo != nullptr) {
      MemoEntry e;
      e.op_fingerprint = 0;
      e.exploit = baseline.exploit;
      e.benign = baseline.benign;
      memo->insert({report.study_name, kBaselineOperation, 0}, std::move(e));
    }
  }

  /// Fills the non-empty sub-mask cells of the given slots, recalling
  /// what the store can serve and evaluating the rest in one parallel
  /// pass. Requires fill_baseline (or an equivalent baseline assignment)
  /// to have happened, and cache to be sized for every slot touched.
  void fill_slots(const apps::CaseStudy& study, std::size_t k,
                  const std::vector<std::size_t>& slots, LemmaReport& report,
                  SweepMemoStore* memo) {
    std::vector<std::uint64_t> fps;
    if (memo != nullptr) fps = operation_fingerprints(study, ops);

    struct Cell {
      std::size_t op_slot = 0;
      std::uint64_t submask = 0;
    };
    // Phase 1 (serial): deterministic lookup pass; misses become cells.
    std::vector<Cell> cells;
    for (const std::size_t oi : slots) {
      const std::uint64_t sub_total = std::uint64_t{1}
                                      << ops[oi].positions.size();
      cache[oi].assign(static_cast<std::size_t>(sub_total), CacheEntry{});
      cache[oi][0] = baseline;
      for (std::uint64_t s = 1; s < sub_total; ++s) {
        if (memo != nullptr) {
          bool invalidated = false;
          if (auto e = memo->lookup({report.study_name, ops[oi].op, s},
                                    fps[oi], &invalidated)) {
            CacheEntry c;
            c.exploit = std::move(e->exploit);
            c.benign = std::move(e->benign);
            c.exploit_blocks = e->exploit_blocks;
            c.benign_blocks = e->benign_blocks;
            cache[oi][static_cast<std::size_t>(s)] = std::move(c);
            ++report.memo_hits;
            continue;
          }
          ++report.memo_misses;
          if (invalidated) ++report.entries_invalidated;
        }
        cells.push_back({oi, s});
      }
    }
    // Phase 2 (parallel): evaluate the misses in index order.
    const auto filled = runtime::parallel_map<CacheEntry>(
        cells.size(), [&](std::size_t i) {
          const auto& cell = cells[i];
          const auto mask = expand_submask(ops[cell.op_slot], cell.submask, k);
          CacheEntry e;
          e.exploit = study.run_exploit(mask);
          e.benign = study.run_benign(mask);
          e.exploit_blocks = !(e.exploit == baseline.exploit);
          e.benign_blocks = !(e.benign == baseline.benign);
          return e;
        });
    // Phase 3 (serial): ascending-order insertion, so store recency and
    // eviction order are byte-identical at every thread count.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      cache[cells[i].op_slot][static_cast<std::size_t>(cells[i].submask)] =
          filled[i];
      if (memo != nullptr) {
        MemoEntry e;
        e.op_fingerprint = fps[cells[i].op_slot];
        e.exploit = filled[i].exploit;
        e.benign = filled[i].benign;
        e.exploit_blocks = filled[i].exploit_blocks;
        e.benign_blocks = filled[i].benign_blocks;
        memo->insert({report.study_name, ops[cells[i].op_slot].op,
                      cells[i].submask},
                     std::move(e));
      }
    }
    report.exploit_evaluations += cells.size();
    report.benign_evaluations += cells.size();
  }

  /// Evaluates each operation at most 2^{k_op} times: sub-mask 0 aliases
  /// the shared baseline run, so the study runs at most
  /// 1 + sum_ops (2^{k_op} - 1) times per workload (fewer when a memo
  /// store serves previously evaluated cells).
  void fill(const apps::CaseStudy& study,
            const std::vector<apps::CheckSpec>& checks, LemmaReport& report,
            SweepMemoStore* memo = nullptr) {
    const std::size_t k = checks.size();
    ops = op_layout(checks);
    fill_baseline(study, k, report, memo);
    cache.resize(ops.size());
    std::vector<std::size_t> all_slots(ops.size());
    std::iota(all_slots.begin(), all_slots.end(), std::size_t{0});
    fill_slots(study, k, all_slots, report, memo);
  }

  /// Rebuilds one row from the caches: operations execute in chain
  /// order, and a passing check is behaviourally absent, so the first
  /// operation whose sub-mask diverged from baseline owns the row (its
  /// propagation gate never fires — Lemma statement 2). `row_id` is the
  /// mask the row reports; `effective_id` is the mask the composition
  /// gathers sub-masks from — they differ only for pinned (secured)
  /// compositions, where effective_id == row_id | pin.
  [[nodiscard]] MaskResult compose(std::uint64_t row_id,
                                   std::uint64_t effective_id,
                                   std::size_t k) const {
    MaskResult row;
    row.mask = mask_bits(row_id, k);
    const CacheEntry* exploit_owner = nullptr;
    const CacheEntry* benign_owner = nullptr;
    for (const auto& oc : ops) {
      const std::size_t oi = static_cast<std::size_t>(&oc - ops.data());
      const std::uint64_t s = gather_submask(oc, effective_id);
      const CacheEntry& e = cache[oi][static_cast<std::size_t>(s)];
      if (e.exploit_blocks && (!exploit_owner || compose_from_last)) {
        exploit_owner = &e;
      }
      if (e.benign_blocks && (!benign_owner || compose_from_last)) {
        benign_owner = &e;
      }
    }
    row.exploit = exploit_owner ? exploit_owner->exploit : baseline.exploit;
    row.benign = benign_owner ? benign_owner->benign : baseline.benign;
    return row;
  }
};

/// Fills the verdict fields from the enumerated rows. `ids[i]` is the
/// mask id of `report.results[i]` (rows ascend, so sampled sweeps keep
/// the same logic).
void finalize_report(LemmaReport& report, const std::vector<std::uint64_t>& ids) {
  report.lemma2_holds = true;
  report.benign_preserved = true;
  const std::set<std::size_t> op_ids = [&] {
    std::set<std::size_t> s;
    for (const auto& c : report.checks) s.insert(c.operation_index);
    return s;
  }();
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    MaskResult& row = report.results[i];
    const std::uint64_t bits = ids[i];
    for (std::size_t op : op_ids) {
      if (operation_secured(report.checks, row.mask, op)) {
        row.some_operation_secured = true;
        break;
      }
    }
    if (bits == 0) report.baseline_exploited = row.exploit.exploited;
    if (bits == report.total_masks - 1) {
      report.all_checks_foil = !row.exploit.exploited;
    }
    if (row.some_operation_secured && row.exploit.exploited) {
      report.lemma2_holds = false;  // a counterexample to Lemma 2
    }
    if (!row.benign.service_ok) report.benign_preserved = false;
    if (std::popcount(bits) == 1 && !row.exploit.exploited) {
      report.foiling_single_checks.push_back(
          static_cast<std::size_t>(std::countr_zero(bits)));
    }
  }
}

void require_sweepable(const std::string& study_name, std::size_t k,
                       std::uint64_t max_masks) {
  if (k >= kMaxExhaustiveSweepChecks && max_masks == 0) {
    throw std::invalid_argument(
        "sweep: '" + study_name + "' has " + std::to_string(k) +
        " checks; an exhaustive sweep would materialize 2^" +
        std::to_string(k) + " mask rows (limit 2^" +
        std::to_string(kMaxExhaustiveSweepChecks - 1) +
        ") — set SweepOptions::max_masks for a sampled sweep");
  }
  if (k >= 63) {
    throw std::invalid_argument("sweep: '" + study_name + "' has " +
                                std::to_string(k) +
                                " checks; mask ids are 64-bit");
  }
}

LemmaReport sweep_prepared(const apps::CaseStudy& study,
                           const SweepOptions& options,
                           MemoizedEngine* faulty_engine) {
  LemmaReport report;
  report.study_name = study.name();
  report.checks = study.checks();
  const std::size_t k = report.checks.size();

  require_sweepable(report.study_name, k, options.max_masks);

  report.total_masks = std::uint64_t{1} << k;
  const auto ids = sweep_mask_ids(report.total_masks, options.max_masks);
  report.sampled = ids.size() < report.total_masks;

  if (faulty_engine != nullptr || options.mode == SweepMode::kMemoized) {
    MemoizedEngine own;
    MemoizedEngine* engine = faulty_engine ? faulty_engine : &own;
    if (!faulty_engine) engine->fill(study, report.checks, report, options.memo);
    report.results = runtime::parallel_map<MaskResult>(
        ids.size(),
        [&](std::size_t i) { return engine->compose(ids[i], ids[i], k); });
  } else {
    report.results = runtime::parallel_map<MaskResult>(
        ids.size(), [&](std::size_t i) {
          MaskResult row;
          row.mask = mask_bits(ids[i], k);
          row.exploit = study.run_exploit(row.mask);
          row.benign = study.run_benign(row.mask);
          return row;
        });
    report.exploit_evaluations = ids.size();
    report.benign_evaluations = ids.size();
  }

  finalize_report(report, ids);
  return report;
}

/// The pin bits of a secured-operation set (validates every operation).
std::uint64_t pin_bits_of(const std::vector<OpChecks>& ops,
                          const std::vector<std::size_t>& secured,
                          const std::string& study_name, const char* who) {
  std::uint64_t pin = 0;
  for (const std::size_t op : secured) {
    const std::size_t oi = slot_of(ops, op, study_name, who);
    for (const std::size_t pos : ops[oi].positions) {
      pin |= std::uint64_t{1} << pos;
    }
  }
  return pin;
}

}  // namespace

bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                       const std::vector<bool>& mask, std::size_t op) {
  bool has_any = false;
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (checks[i].operation_index != op) continue;
    has_any = true;
    if (!mask[i]) return false;
  }
  return has_any;
}

LemmaReport sweep(const apps::CaseStudy& study, const SweepOptions& options) {
  return sweep_prepared(study, options, nullptr);
}

LemmaReport sweep(const apps::CaseStudy& study) {
  return sweep(study, SweepOptions{});
}

std::vector<LemmaReport> sweep_all() { return sweep_all(SweepOptions{}); }

std::vector<LemmaReport> sweep_all(const SweepOptions& options) {
  const auto studies = apps::all_case_studies();
  // Outer shard over the study grid; the inner mask loops run nested on
  // the same pool (inline on a worker), so the whole (study x mask) grid
  // is covered without oversubscription. A shared options.memo is safe
  // here: study families keep their keys disjoint.
  return runtime::parallel_map<LemmaReport>(
      studies.size(),
      [&](std::size_t i) { return sweep(*studies[i], options); });
}

LemmaReport resweep(const apps::CaseStudy& study, const LemmaReport& baseline,
                    const SweepDelta& delta, const SweepOptions& options) {
  LemmaReport report;
  report.checks = study.checks();
  const std::size_t k = report.checks.size();

  if (baseline.study_name != study.name()) {
    throw std::invalid_argument("resweep: baseline report is for '" +
                                baseline.study_name + "', not '" +
                                study.name() + "'");
  }
  if (baseline.sampled ||
      baseline.results.size() != (std::uint64_t{1} << k)) {
    throw std::invalid_argument(
        "resweep: baseline for '" + study.name() +
        "' must be an exhaustive (unsampled) sweep — its rows are the "
        "reused sub-mask cells");
  }
  if (baseline.checks != report.checks) {
    throw std::invalid_argument(
        "resweep: baseline check layout for '" + study.name() +
        "' does not match the study's current checks — re-sweep the "
        "baseline before recomposing from it");
  }
  require_sweepable(study.name(), k, options.max_masks);

  MemoizedEngine engine;
  engine.ops = op_layout(report.checks);
  engine.baseline.exploit = baseline.results[0].exploit;
  engine.baseline.benign = baseline.results[0].benign;

  std::set<std::size_t> changed;
  for (const std::size_t op : delta.changed_operations) {
    changed.insert(engine.ops[slot_of(engine.ops, op, study.name(),
                                      "resweep")].op);
  }
  const std::uint64_t pin =
      pin_bits_of(engine.ops, delta.secured_operations, study.name(),
                  "resweep");

  // Delta cells are evaluated against the BASE study (fill_slots applies
  // no pin — securing happens at composition time), so the memo must key
  // them under the base family; the report only adopts the secured-variant
  // name after the fill, just before composition.
  report.study_name = baseline.study_name;

  // Unchanged operations reuse the baseline report's rows as cells: the
  // exhaustive row at mask expand(op, s) IS the cell (op, s). Changed
  // operations re-evaluate only their own sub-masks.
  engine.cache.resize(engine.ops.size());
  std::vector<std::size_t> changed_slots;
  for (std::size_t oi = 0; oi < engine.ops.size(); ++oi) {
    if (changed.count(engine.ops[oi].op) != 0) {
      changed_slots.push_back(oi);
      continue;
    }
    const std::uint64_t sub_total = std::uint64_t{1}
                                    << engine.ops[oi].positions.size();
    engine.cache[oi].assign(static_cast<std::size_t>(sub_total),
                            CacheEntry{});
    engine.cache[oi][0] = engine.baseline;
    for (std::uint64_t s = 1; s < sub_total; ++s) {
      const auto& row = baseline.results[static_cast<std::size_t>(
          expand_submask_bits(engine.ops[oi], s))];
      CacheEntry e;
      e.exploit = row.exploit;
      e.benign = row.benign;
      e.exploit_blocks = !(e.exploit == engine.baseline.exploit);
      e.benign_blocks = !(e.benign == engine.baseline.benign);
      engine.cache[oi][static_cast<std::size_t>(s)] = std::move(e);
    }
  }
  engine.fill_slots(study, k, changed_slots, report, options.memo);
  if (!delta.secured_operations.empty()) {
    report.study_name =
        apps::secured_study_name(study, delta.secured_operations);
  }

  report.total_masks = std::uint64_t{1} << k;
  const auto ids = sweep_mask_ids(report.total_masks, options.max_masks);
  report.sampled = ids.size() < report.total_masks;
  report.results = runtime::parallel_map<MaskResult>(
      ids.size(),
      [&](std::size_t i) { return engine.compose(ids[i], ids[i] | pin, k); });
  finalize_report(report, ids);
  return report;
}

SweepSummary sweep_summary(const apps::CaseStudy& study,
                           const SweepDelta& delta,
                           const SweepOptions& options) {
  LemmaReport scratch;
  scratch.study_name = study.name();
  scratch.checks = study.checks();
  const std::size_t k = scratch.checks.size();
  if (k >= 63) {
    throw std::invalid_argument("sweep_summary: '" + study.name() + "' has " +
                                std::to_string(k) +
                                " checks; mask ids are 64-bit");
  }

  MemoizedEngine engine;
  engine.fill(study, scratch.checks, scratch, options.memo);

  SweepSummary summary;
  summary.study_name =
      delta.secured_operations.empty()
          ? study.name()
          : apps::secured_study_name(study, delta.secured_operations);
  summary.total_masks = std::uint64_t{1} << k;
  summary.exploit_evaluations = scratch.exploit_evaluations;
  summary.benign_evaluations = scratch.benign_evaluations;
  summary.memo_hits = scratch.memo_hits;
  summary.memo_misses = scratch.memo_misses;
  summary.entries_invalidated = scratch.entries_invalidated;

  const std::size_t nops = engine.ops.size();
  std::vector<bool> pinned(nops, false);
  for (const std::size_t op : delta.secured_operations) {
    pinned[slot_of(engine.ops, op, study.name(), "sweep_summary")] = true;
  }

  // The mask space factors into per-operation sub-mask spaces, so each
  // count is a product-sum over the per-operation tallies: a row is
  // owned by the FIRST gate-order operation whose (pinned) cell blocks,
  // with every earlier operation non-blocking and later operations free.
  struct Tally {
    std::uint64_t sub_total = 0;       ///< visible sub-masks of this op
    std::uint64_t exploit_free = 0;    ///< cells that do not block the exploit
    std::uint64_t exploit_lands = 0;   ///< blocking cells, still exploited
    std::uint64_t benign_free = 0;     ///< cells that do not block benign
    std::uint64_t benign_breaks = 0;   ///< blocking cells, service lost
  };
  std::vector<Tally> tally(nops);
  for (std::size_t oi = 0; oi < nops; ++oi) {
    const std::uint64_t sub_total = std::uint64_t{1}
                                    << engine.ops[oi].positions.size();
    const std::uint64_t full = sub_total - 1;
    tally[oi].sub_total = sub_total;
    for (std::uint64_t s = 0; s < sub_total; ++s) {
      // Securing pins every visible sub-mask to the all-on cell.
      const CacheEntry& e =
          engine.cache[oi][static_cast<std::size_t>(pinned[oi] ? full : s)];
      if (e.exploit_blocks) {
        if (e.exploit.exploited) ++tally[oi].exploit_lands;
      } else {
        ++tally[oi].exploit_free;
      }
      if (e.benign_blocks) {
        if (!e.benign.service_ok) ++tally[oi].benign_breaks;
      } else {
        ++tally[oi].benign_free;
      }
    }
  }

  // counts(restrict_slot): total masks whose composed exploit lands
  // (resp. benign breaks), optionally with one operation's visible
  // sub-mask restricted to all-on (the Lemma-2 probe). Every product is
  // bounded by 2^k <= 2^62, so the arithmetic stays in uint64.
  const auto count_masks = [&](std::size_t restrict_slot, bool for_exploit) {
    const auto restricted = [&](std::size_t oi) -> Tally {
      Tally t = tally[oi];
      if (oi == restrict_slot) {
        const std::uint64_t full = t.sub_total - 1;
        const CacheEntry& e = engine.cache[oi][static_cast<std::size_t>(full)];
        t.sub_total = 1;
        if (for_exploit) {
          t.exploit_free = e.exploit_blocks ? 0 : 1;
          t.exploit_lands = (e.exploit_blocks && e.exploit.exploited) ? 1 : 0;
        } else {
          t.benign_free = e.benign_blocks ? 0 : 1;
          t.benign_breaks = (e.benign_blocks && !e.benign.service_ok) ? 1 : 0;
        }
      }
      return t;
    };
    std::uint64_t total = 0;
    for (std::size_t j = 0; j < nops; ++j) {
      const Tally tj = restricted(j);
      std::uint64_t term = for_exploit ? tj.exploit_lands : tj.benign_breaks;
      for (std::size_t i = 0; i < j && term != 0; ++i) {
        const Tally ti = restricted(i);
        term *= for_exploit ? ti.exploit_free : ti.benign_free;
      }
      for (std::size_t i = j + 1; i < nops && term != 0; ++i) {
        term *= restricted(i).sub_total;
      }
      total += term;
    }
    const bool baseline_bad = for_exploit
                                  ? engine.baseline.exploit.exploited
                                  : !engine.baseline.benign.service_ok;
    if (baseline_bad) {
      std::uint64_t none_block = 1;
      for (std::size_t i = 0; i < nops && none_block != 0; ++i) {
        const Tally ti = restricted(i);
        none_block *= for_exploit ? ti.exploit_free : ti.benign_free;
      }
      total += none_block;
    }
    return total;
  };
  constexpr std::size_t kNoRestriction = static_cast<std::size_t>(-1);
  summary.exploited_masks = count_masks(kNoRestriction, /*for_exploit=*/true);
  summary.benign_broken_masks =
      count_masks(kNoRestriction, /*for_exploit=*/false);

  // Lemma 2: no mask that secures some operation may remain exploited —
  // equivalently, restricting ANY operation to all-on yields zero
  // exploited masks.
  summary.lemma2_holds = true;
  for (std::size_t oi = 0; oi < nops; ++oi) {
    if (count_masks(oi, /*for_exploit=*/true) != 0) {
      summary.lemma2_holds = false;
      break;
    }
  }

  // Baseline (mask 0 after pinning) and all-checks rows, by composition.
  const auto composed_exploited = [&](bool all_on) {
    for (std::size_t oi = 0; oi < nops; ++oi) {
      const std::uint64_t full = tally[oi].sub_total - 1;
      const std::uint64_t s = (all_on || pinned[oi]) ? full : 0;
      const CacheEntry& e = engine.cache[oi][static_cast<std::size_t>(s)];
      if (e.exploit_blocks) return e.exploit.exploited;
    }
    return engine.baseline.exploit.exploited;
  };
  summary.baseline_exploited = composed_exploited(/*all_on=*/false);
  summary.all_checks_foil = !composed_exploited(/*all_on=*/true);
  return summary;
}

bool reports_equivalent(const LemmaReport& a, const LemmaReport& b) {
  if (a.study_name != b.study_name) return false;
  if (a.results.size() != b.results.size()) return false;
  if (a.baseline_exploited != b.baseline_exploited ||
      a.all_checks_foil != b.all_checks_foil ||
      a.lemma2_holds != b.lemma2_holds ||
      a.benign_preserved != b.benign_preserved ||
      a.foiling_single_checks != b.foiling_single_checks ||
      a.total_masks != b.total_masks || a.sampled != b.sampled) {
    return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const MaskResult& x = a.results[i];
    const MaskResult& y = b.results[i];
    if (x.mask != y.mask || !(x.exploit == y.exploit) ||
        !(x.benign == y.benign) ||
        x.some_operation_secured != y.some_operation_secured) {
      return false;
    }
  }
  return true;
}

const char* to_string(SweepFault f) noexcept {
  switch (f) {
    case SweepFault::kStaleSubmaskEntry: return "stale-submask-entry";
    case SweepFault::kFlippedCacheOutcome: return "flipped-cache-outcome";
    case SweepFault::kWrongGateComposition: return "wrong-gate-composition";
    case SweepFault::kStaleSharedMemoAcrossSweeps:
      return "stale-shared-memo-across-sweeps";
    case SweepFault::kMissedInvalidationOnPatch:
      return "missed-invalidation-on-patch";
  }
  return "unknown";
}

std::optional<SweepFaultReport> sweep_with_fault(const apps::CaseStudy& study,
                                                 SweepFault fault,
                                                 const SweepOptions& options) {
  LemmaReport scratch;
  scratch.study_name = study.name();
  scratch.checks = study.checks();
  MemoizedEngine engine;
  engine.fill(study, scratch.checks, scratch);

  SweepFaultReport out;
  switch (fault) {
    case SweepFault::kStaleSubmaskEntry:
    case SweepFault::kFlippedCacheOutcome: {
      // Corrupt the first blocking cell (ascending op, then sub-mask):
      // the mask that is exactly that cell's expansion composes through
      // it, so the corruption is guaranteed to surface in some row.
      for (std::size_t oi = 0; oi < engine.cache.size(); ++oi) {
        for (std::size_t s = 1; s < engine.cache[oi].size(); ++s) {
          CacheEntry& e = engine.cache[oi][s];
          if (!e.exploit_blocks && !e.benign_blocks) continue;
          if (fault == SweepFault::kStaleSubmaskEntry) {
            e = engine.baseline;  // stale: pre-fill (all-checks-off) value
          } else {
            e.exploit.exploited = !e.exploit.exploited;
          }
          out.target = "operation " + std::to_string(engine.ops[oi].op) +
                       " submask " + std::to_string(s);
          out.report = sweep_prepared(study, options, &engine);
          return out;
        }
      }
      return std::nullopt;  // no blocking cell: nothing to corrupt
    }
    case SweepFault::kStaleSharedMemoAcrossSweeps: {
      // A shared store that skips the fingerprint check serves whatever
      // generation it holds: alias the first blocking cell to the first
      // OTHER cell whose entry differs from both it and the baseline
      // (kStaleSubmaskEntry already covers the degenerate baseline
      // alias). The aliased cell still blocks, so the mask that is its
      // expansion composes through the foreign outcome.
      for (std::size_t oi = 0; oi < engine.cache.size(); ++oi) {
        for (std::size_t s = 1; s < engine.cache[oi].size(); ++s) {
          const CacheEntry victim = engine.cache[oi][s];
          if (!victim.exploit_blocks && !victim.benign_blocks) continue;
          for (std::size_t oj = 0; oj < engine.cache.size(); ++oj) {
            for (std::size_t s2 = 1; s2 < engine.cache[oj].size(); ++s2) {
              if (oi == oj && s == s2) continue;
              const CacheEntry& donor = engine.cache[oj][s2];
              if (entries_equal(donor, victim) ||
                  entries_equal(donor, engine.baseline)) {
                continue;
              }
              if (!donor.exploit_blocks && !donor.benign_blocks) continue;
              engine.cache[oi][s] = donor;
              out.target = "operation " + std::to_string(engine.ops[oi].op) +
                           " submask " + std::to_string(s) +
                           " served stale entry of operation " +
                           std::to_string(engine.ops[oj].op) + " submask " +
                           std::to_string(s2);
              out.report = sweep_prepared(study, options, &engine);
              return out;
            }
          }
        }
      }
      return std::nullopt;  // no two differing blocking cells to alias
    }
    case SweepFault::kMissedInvalidationOnPatch: {
      // The incremental patch path must pin the secured operation's
      // sub-mask to all-on; missing that invalidation composes the
      // "patched" report from the unpatched cells. The cross-check
      // reference is the direct sweep of the actually-secured study.
      for (std::size_t oi = 0; oi < engine.cache.size(); ++oi) {
        const CacheEntry& full = engine.cache[oi].back();
        if (!full.exploit_blocks && !full.benign_blocks) continue;
        const std::size_t op = engine.ops[oi].op;
        out.target = "operation " + std::to_string(op) +
                     " pin dropped during resweep";
        out.report = sweep_prepared(study, options, &engine);
        out.report.study_name = apps::secured_study_name(study, {op});
        const auto secured = apps::make_secured_study(study, {op});
        SweepOptions direct = options;
        direct.mode = SweepMode::kDirect;
        direct.memo = nullptr;
        out.reference = sweep(*secured, direct);
        return out;
      }
      return std::nullopt;  // securing any operation changes nothing
    }
    case SweepFault::kWrongGateComposition: {
      // Hostable only when two operations' blocking outcomes differ —
      // otherwise first-vs-last composition is extensionally identical.
      bool hostable = false;
      for (std::size_t oi = 0; oi < engine.cache.size() && !hostable; ++oi) {
        for (std::size_t oj = oi + 1; oj < engine.cache.size() && !hostable;
             ++oj) {
          for (const auto& ei : engine.cache[oi]) {
            for (const auto& ej : engine.cache[oj]) {
              // A mask combining these two sub-masks resolves to ei
              // under first-blocker composition and ej under last: it
              // diverges only where both cells block the same workload
              // with different outcomes.
              if ((ei.exploit_blocks && ej.exploit_blocks &&
                   !(ei.exploit == ej.exploit)) ||
                  (ei.benign_blocks && ej.benign_blocks &&
                   !(ei.benign == ej.benign))) {
                hostable = true;
                break;
              }
            }
            if (hostable) break;
          }
        }
      }
      if (!hostable) return std::nullopt;
      engine.compose_from_last = true;
      out.target = "gate composition";
      out.report = sweep_prepared(study, options, &engine);
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace dfsm::analysis
