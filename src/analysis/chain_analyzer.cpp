#include "analysis/chain_analyzer.h"

#include <bit>
#include <set>
#include <stdexcept>

#include "runtime/parallel.h"

namespace dfsm::analysis {

namespace {

/// One operation's slice of the check vector: which global check
/// positions belong to it, in ascending position order.
struct OpChecks {
  std::size_t op = 0;
  std::vector<std::size_t> positions;
};

/// One memoized cell: the study's outcome with ONLY this operation's
/// checks enabled (per its sub-mask), everything else off. `*_blocks`
/// records whether that run diverged from the all-checks-off baseline —
/// by the Lemma's predicate independence, a non-diverging operation is
/// behaviourally absent from every composed mask.
struct CacheEntry {
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool exploit_blocks = false;
  bool benign_blocks = false;
};

std::vector<OpChecks> op_layout(const std::vector<apps::CheckSpec>& checks) {
  std::set<std::size_t> op_ids;
  for (const auto& c : checks) op_ids.insert(c.operation_index);
  std::vector<OpChecks> ops;
  ops.reserve(op_ids.size());
  for (std::size_t op : op_ids) {
    OpChecks oc;
    oc.op = op;
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (checks[i].operation_index == op) oc.positions.push_back(i);
    }
    ops.push_back(std::move(oc));
  }
  return ops;
}

std::vector<bool> mask_bits(std::uint64_t bits, std::size_t k) {
  std::vector<bool> mask(k);
  for (std::size_t i = 0; i < k; ++i) mask[i] = (bits >> i) & 1;
  return mask;
}

/// The mask ids a sweep enumerates: all of [0, total) when it fits the
/// cap, otherwise an evenly-strided sample that pins mask 0 and mask
/// total-1. Pure function of (total, max_masks) — the determinism anchor
/// for sampled sweeps.
std::vector<std::uint64_t> sweep_mask_ids(std::uint64_t total,
                                          std::uint64_t max_masks) {
  std::vector<std::uint64_t> ids;
  if (max_masks == 0 || total <= max_masks) {
    ids.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t m = 0; m < total; ++m) ids.push_back(m);
    return ids;
  }
  if (max_masks == 1) return {0};
  ids.reserve(static_cast<std::size_t>(max_masks));
  for (std::uint64_t i = 0; i < max_masks; ++i) {
    // i scaled onto [0, total-1]; strictly increasing since total > max.
    ids.push_back(i * ((total - 1) / (max_masks - 1)) +
                  (i * ((total - 1) % (max_masks - 1))) / (max_masks - 1));
  }
  return ids;
}

/// The full-length mask holding `submask` at this operation's check
/// positions and 0 everywhere else — the cache-fill plumbing through the
/// study's ordinary run_exploit/run_benign mask interface.
std::vector<bool> expand_submask(const OpChecks& oc, std::uint64_t submask,
                                 std::size_t k) {
  std::vector<bool> mask(k);
  for (std::size_t j = 0; j < oc.positions.size(); ++j) {
    if ((submask >> j) & 1) mask[oc.positions[j]] = true;
  }
  return mask;
}

std::uint64_t gather_submask(const OpChecks& oc, std::uint64_t mask_id) {
  std::uint64_t s = 0;
  for (std::size_t j = 0; j < oc.positions.size(); ++j) {
    if ((mask_id >> oc.positions[j]) & 1) s |= std::uint64_t{1} << j;
  }
  return s;
}

/// The memoized engine: per-operation outcome caches plus the gate
/// composition that reconstitutes any full-mask row (DESIGN.md §10).
struct MemoizedEngine {
  std::vector<OpChecks> ops;
  CacheEntry baseline;                          ///< all checks off
  std::vector<std::vector<CacheEntry>> cache;   ///< [op][submask]
  bool compose_from_last = false;  ///< SweepFault::kWrongGateComposition

  /// Evaluates each operation at most 2^{k_op} times: sub-mask 0 aliases
  /// the shared baseline run, so the study runs exactly
  /// 1 + sum_ops (2^{k_op} - 1) times per workload.
  void fill(const apps::CaseStudy& study,
            const std::vector<apps::CheckSpec>& checks, LemmaReport& report) {
    const std::size_t k = checks.size();
    ops = op_layout(checks);

    baseline.exploit = study.run_exploit(std::vector<bool>(k));
    baseline.benign = study.run_benign(std::vector<bool>(k));
    report.exploit_evaluations = 1;
    report.benign_evaluations = 1;

    // Flatten the (operation, non-zero sub-mask) grid so one
    // deterministic parallel_map fills every cell.
    struct Cell {
      std::size_t op_slot = 0;
      std::uint64_t submask = 0;
    };
    std::vector<Cell> cells;
    cache.resize(ops.size());
    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
      const std::uint64_t sub_total = std::uint64_t{1}
                                      << ops[oi].positions.size();
      cache[oi].resize(static_cast<std::size_t>(sub_total));
      cache[oi][0] = baseline;
      for (std::uint64_t s = 1; s < sub_total; ++s) cells.push_back({oi, s});
    }
    const auto filled = runtime::parallel_map<CacheEntry>(
        cells.size(), [&](std::size_t i) {
          const auto& cell = cells[i];
          const auto mask = expand_submask(ops[cell.op_slot], cell.submask, k);
          CacheEntry e;
          e.exploit = study.run_exploit(mask);
          e.benign = study.run_benign(mask);
          e.exploit_blocks = !(e.exploit == baseline.exploit);
          e.benign_blocks = !(e.benign == baseline.benign);
          return e;
        });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      cache[cells[i].op_slot][static_cast<std::size_t>(cells[i].submask)] =
          filled[i];
    }
    report.exploit_evaluations += cells.size();
    report.benign_evaluations += cells.size();
  }

  /// Rebuilds the full-mask row from the caches: operations execute in
  /// chain order, and a passing check is behaviourally absent, so the
  /// first operation whose sub-mask diverged from baseline owns the row
  /// (its propagation gate never fires — Lemma statement 2).
  [[nodiscard]] MaskResult compose(std::uint64_t mask_id, std::size_t k) const {
    MaskResult row;
    row.mask = mask_bits(mask_id, k);
    const CacheEntry* exploit_owner = nullptr;
    const CacheEntry* benign_owner = nullptr;
    for (const auto& oc : ops) {
      const std::size_t oi = static_cast<std::size_t>(&oc - ops.data());
      const std::uint64_t s = gather_submask(oc, mask_id);
      const CacheEntry& e = cache[oi][static_cast<std::size_t>(s)];
      if (e.exploit_blocks && (!exploit_owner || compose_from_last)) {
        exploit_owner = &e;
      }
      if (e.benign_blocks && (!benign_owner || compose_from_last)) {
        benign_owner = &e;
      }
    }
    row.exploit = exploit_owner ? exploit_owner->exploit : baseline.exploit;
    row.benign = benign_owner ? benign_owner->benign : baseline.benign;
    return row;
  }
};

/// Fills the verdict fields from the enumerated rows. `ids[i]` is the
/// mask id of `report.results[i]` (rows ascend, so sampled sweeps keep
/// the same logic).
void finalize_report(LemmaReport& report, const std::vector<std::uint64_t>& ids) {
  report.lemma2_holds = true;
  report.benign_preserved = true;
  const std::set<std::size_t> op_ids = [&] {
    std::set<std::size_t> s;
    for (const auto& c : report.checks) s.insert(c.operation_index);
    return s;
  }();
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    MaskResult& row = report.results[i];
    const std::uint64_t bits = ids[i];
    for (std::size_t op : op_ids) {
      if (operation_secured(report.checks, row.mask, op)) {
        row.some_operation_secured = true;
        break;
      }
    }
    if (bits == 0) report.baseline_exploited = row.exploit.exploited;
    if (bits == report.total_masks - 1) {
      report.all_checks_foil = !row.exploit.exploited;
    }
    if (row.some_operation_secured && row.exploit.exploited) {
      report.lemma2_holds = false;  // a counterexample to Lemma 2
    }
    if (!row.benign.service_ok) report.benign_preserved = false;
    if (std::popcount(bits) == 1 && !row.exploit.exploited) {
      report.foiling_single_checks.push_back(
          static_cast<std::size_t>(std::countr_zero(bits)));
    }
  }
}

LemmaReport sweep_prepared(const apps::CaseStudy& study,
                           const SweepOptions& options,
                           MemoizedEngine* faulty_engine) {
  LemmaReport report;
  report.study_name = study.name();
  report.checks = study.checks();
  const std::size_t k = report.checks.size();

  if (k >= kMaxExhaustiveSweepChecks && options.max_masks == 0) {
    throw std::invalid_argument(
        "sweep: '" + report.study_name + "' has " + std::to_string(k) +
        " checks; an exhaustive sweep would materialize 2^" +
        std::to_string(k) + " mask rows (limit 2^" +
        std::to_string(kMaxExhaustiveSweepChecks - 1) +
        ") — set SweepOptions::max_masks for a sampled sweep");
  }
  if (k >= 63) {
    throw std::invalid_argument("sweep: '" + report.study_name + "' has " +
                                std::to_string(k) +
                                " checks; mask ids are 64-bit");
  }

  report.total_masks = std::uint64_t{1} << k;
  const auto ids = sweep_mask_ids(report.total_masks, options.max_masks);
  report.sampled = ids.size() < report.total_masks;

  if (faulty_engine != nullptr || options.mode == SweepMode::kMemoized) {
    MemoizedEngine own;
    MemoizedEngine* engine = faulty_engine ? faulty_engine : &own;
    if (!faulty_engine) engine->fill(study, report.checks, report);
    report.results = runtime::parallel_map<MaskResult>(
        ids.size(), [&](std::size_t i) { return engine->compose(ids[i], k); });
  } else {
    report.results = runtime::parallel_map<MaskResult>(
        ids.size(), [&](std::size_t i) {
          MaskResult row;
          row.mask = mask_bits(ids[i], k);
          row.exploit = study.run_exploit(row.mask);
          row.benign = study.run_benign(row.mask);
          return row;
        });
    report.exploit_evaluations = ids.size();
    report.benign_evaluations = ids.size();
  }

  finalize_report(report, ids);
  return report;
}

}  // namespace

bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                       const std::vector<bool>& mask, std::size_t op) {
  bool has_any = false;
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (checks[i].operation_index != op) continue;
    has_any = true;
    if (!mask[i]) return false;
  }
  return has_any;
}

LemmaReport sweep(const apps::CaseStudy& study, const SweepOptions& options) {
  return sweep_prepared(study, options, nullptr);
}

LemmaReport sweep(const apps::CaseStudy& study) {
  return sweep(study, SweepOptions{});
}

std::vector<LemmaReport> sweep_all() { return sweep_all(SweepOptions{}); }

std::vector<LemmaReport> sweep_all(const SweepOptions& options) {
  const auto studies = apps::all_case_studies();
  // Outer shard over the study grid; the inner mask loops run nested on
  // the same pool (inline on a worker), so the whole (study x mask) grid
  // is covered without oversubscription.
  return runtime::parallel_map<LemmaReport>(
      studies.size(),
      [&](std::size_t i) { return sweep(*studies[i], options); });
}

bool reports_equivalent(const LemmaReport& a, const LemmaReport& b) {
  if (a.study_name != b.study_name) return false;
  if (a.results.size() != b.results.size()) return false;
  if (a.baseline_exploited != b.baseline_exploited ||
      a.all_checks_foil != b.all_checks_foil ||
      a.lemma2_holds != b.lemma2_holds ||
      a.benign_preserved != b.benign_preserved ||
      a.foiling_single_checks != b.foiling_single_checks ||
      a.total_masks != b.total_masks || a.sampled != b.sampled) {
    return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const MaskResult& x = a.results[i];
    const MaskResult& y = b.results[i];
    if (x.mask != y.mask || !(x.exploit == y.exploit) ||
        !(x.benign == y.benign) ||
        x.some_operation_secured != y.some_operation_secured) {
      return false;
    }
  }
  return true;
}

const char* to_string(SweepFault f) noexcept {
  switch (f) {
    case SweepFault::kStaleSubmaskEntry: return "stale-submask-entry";
    case SweepFault::kFlippedCacheOutcome: return "flipped-cache-outcome";
    case SweepFault::kWrongGateComposition: return "wrong-gate-composition";
  }
  return "unknown";
}

std::optional<SweepFaultReport> sweep_with_fault(const apps::CaseStudy& study,
                                                 SweepFault fault,
                                                 const SweepOptions& options) {
  LemmaReport scratch;
  scratch.study_name = study.name();
  scratch.checks = study.checks();
  MemoizedEngine engine;
  engine.fill(study, scratch.checks, scratch);

  SweepFaultReport out;
  switch (fault) {
    case SweepFault::kStaleSubmaskEntry:
    case SweepFault::kFlippedCacheOutcome: {
      // Corrupt the first blocking cell (ascending op, then sub-mask):
      // the mask that is exactly that cell's expansion composes through
      // it, so the corruption is guaranteed to surface in some row.
      for (std::size_t oi = 0; oi < engine.cache.size(); ++oi) {
        for (std::size_t s = 1; s < engine.cache[oi].size(); ++s) {
          CacheEntry& e = engine.cache[oi][s];
          if (!e.exploit_blocks && !e.benign_blocks) continue;
          if (fault == SweepFault::kStaleSubmaskEntry) {
            e = engine.baseline;  // stale: pre-fill (all-checks-off) value
          } else {
            e.exploit.exploited = !e.exploit.exploited;
          }
          out.target = "operation " + std::to_string(engine.ops[oi].op) +
                       " submask " + std::to_string(s);
          out.report = sweep_prepared(study, options, &engine);
          return out;
        }
      }
      return std::nullopt;  // no blocking cell: nothing to corrupt
    }
    case SweepFault::kWrongGateComposition: {
      // Hostable only when two operations' blocking outcomes differ —
      // otherwise first-vs-last composition is extensionally identical.
      bool hostable = false;
      for (std::size_t oi = 0; oi < engine.cache.size() && !hostable; ++oi) {
        for (std::size_t oj = oi + 1; oj < engine.cache.size() && !hostable;
             ++oj) {
          for (const auto& ei : engine.cache[oi]) {
            for (const auto& ej : engine.cache[oj]) {
              // A mask combining these two sub-masks resolves to ei
              // under first-blocker composition and ej under last: it
              // diverges only where both cells block the same workload
              // with different outcomes.
              if ((ei.exploit_blocks && ej.exploit_blocks &&
                   !(ei.exploit == ej.exploit)) ||
                  (ei.benign_blocks && ej.benign_blocks &&
                   !(ei.benign == ej.benign))) {
                hostable = true;
                break;
              }
            }
            if (hostable) break;
          }
        }
      }
      if (!hostable) return std::nullopt;
      engine.compose_from_last = true;
      out.target = "gate composition";
      out.report = sweep_prepared(study, options, &engine);
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace dfsm::analysis
