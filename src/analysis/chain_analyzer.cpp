#include "analysis/chain_analyzer.h"

#include <set>

namespace dfsm::analysis {

bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                       const std::vector<bool>& mask, std::size_t op) {
  bool has_any = false;
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (checks[i].operation_index != op) continue;
    has_any = true;
    if (!mask[i]) return false;
  }
  return has_any;
}

LemmaReport sweep(const apps::CaseStudy& study) {
  LemmaReport report;
  report.study_name = study.name();
  report.checks = study.checks();
  const std::size_t k = report.checks.size();

  std::set<std::size_t> operations;
  for (const auto& c : report.checks) operations.insert(c.operation_index);

  report.lemma2_holds = true;
  report.benign_preserved = true;

  for (std::size_t bits = 0; bits < (std::size_t{1} << k); ++bits) {
    MaskResult row;
    row.mask.resize(k);
    for (std::size_t i = 0; i < k; ++i) row.mask[i] = (bits >> i) & 1;

    row.exploit = study.run_exploit(row.mask);
    row.benign = study.run_benign(row.mask);
    for (std::size_t op : operations) {
      if (operation_secured(report.checks, row.mask, op)) {
        row.some_operation_secured = true;
        break;
      }
    }

    if (bits == 0) report.baseline_exploited = row.exploit.exploited;
    if (bits == (std::size_t{1} << k) - 1) {
      report.all_checks_foil = !row.exploit.exploited;
    }
    if (row.some_operation_secured && row.exploit.exploited) {
      report.lemma2_holds = false;  // a counterexample to Lemma 2
    }
    if (!row.benign.service_ok) report.benign_preserved = false;

    // Single-check masks: exactly one bit set.
    if (bits != 0 && (bits & (bits - 1)) == 0 && !row.exploit.exploited) {
      std::size_t idx = 0;
      while (((bits >> idx) & 1) == 0) ++idx;
      report.foiling_single_checks.push_back(idx);
    }

    report.results.push_back(std::move(row));
  }
  return report;
}

std::vector<LemmaReport> sweep_all() {
  std::vector<LemmaReport> out;
  for (const auto& study : apps::all_case_studies()) {
    out.push_back(sweep(*study));
  }
  return out;
}

}  // namespace dfsm::analysis
