// chain_analyzer.h — the Lemma, machine-checked (paper §6).
//
//   Lemma. (1) To ensure the security of an operation requires [all] the
//   predicates (represented by pFSMs) constituting the operation to be
//   correctly implemented. (2) To foil an exploit consisting of a
//   sequence of vulnerable operations, it is sufficient to ensure
//   security of ONE of the operations in the sequence.
//
// ChainAnalyzer enumerates every 2^k combination of a case study's
// elementary-activity checks, runs the published exploit and a benign
// workload under each, and verifies:
//   * baseline (no checks)  -> exploited,
//   * any mask securing at least one whole operation -> NOT exploited
//     (Lemma 2),
//   * all checks on -> not exploited AND benign service intact (Lemma 1's
//     "sufficient" direction plus no functional regression),
//   * benign traffic is served under EVERY mask (checks are free).
//
// Two engines produce the same report (DESIGN.md §10):
//   * kDirect runs the study once per mask — 2^k full app runs, the
//     reference semantics;
//   * kMemoized exploits the Lemma's predicate independence: an
//     operation's behaviour depends only on the sub-mask of its OWN
//     checks, so each operation is evaluated at most 2^{k_op} times (a
//     per-operation outcome cache keyed by sub-mask) and the 2^k rows are
//     composed through the propagation-gate order — the first operation
//     whose sub-mask perturbs the run determines the row.
//
// On top of the memoized engine sit the cross-sweep layers (DESIGN.md
// §11): SweepOptions::memo plugs a shared SweepMemoStore under the cache
// fill so repeated sweeps of the same study family (sampled → exhaustive
// escalation, fault-campaign trials, sweep_all) re-evaluate nothing, and
// resweep / sweep_summary recompose a baseline sweep under a SweepDelta
// (changed and/or secured operations) — k patch-candidate evaluations
// cost one sweep plus k compositions instead of k sweeps.
//
// All engines fan out over the deterministic parallel runtime; reports
// are byte-identical at every DFSM_THREADS setting and across engines
// (tests + the fault-injection cross-check gate on it).
#ifndef DFSM_ANALYSIS_CHAIN_ANALYZER_H
#define DFSM_ANALYSIS_CHAIN_ANALYZER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/case_study.h"

namespace dfsm::analysis {

class SweepMemoStore;  // sweep_memo.h

/// One row of the sweep: a mask and what happened under it.
struct MaskResult {
  std::vector<bool> mask;
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool some_operation_secured = false;  ///< >=1 operation has all checks on
};

/// Full sweep over one case study.
struct LemmaReport {
  std::string study_name;
  std::vector<apps::CheckSpec> checks;
  std::vector<MaskResult> results;  ///< mask rows in ascending mask order

  bool baseline_exploited = false;   ///< mask 0...0 exploited
  bool all_checks_foil = false;      ///< mask 1...1 not exploited
  bool lemma2_holds = false;         ///< every secured-operation mask foils
  bool benign_preserved = false;     ///< benign served under every mask
  /// Single-check masks that already foil the exploit (the paper's "each
  /// elementary activity provides a security checking opportunity").
  std::vector<std::size_t> foiling_single_checks;

  // --- sweep accounting --------------------------------------------------
  std::uint64_t total_masks = 0;  ///< 2^k (even when rows were sampled)
  bool sampled = false;           ///< results hold a max_masks subset
  /// How many times study.run_exploit / run_benign actually ran. Direct:
  /// one each per row. Memoized: at most 1 + sum_ops (2^{k_op} - 1) each
  /// regardless of 2^k (tests assert the bound); with a memo store
  /// attached, only the cells the store could not serve.
  std::size_t exploit_evaluations = 0;
  std::size_t benign_evaluations = 0;

  // --- shared-store telemetry (all zero without SweepOptions::memo) ------
  std::size_t memo_hits = 0;           ///< cache cells served by the store
  std::size_t memo_misses = 0;         ///< cells evaluated then inserted
  std::size_t entries_invalidated = 0; ///< stale entries dropped (fingerprint)
};

/// Which evaluation engine drives the sweep.
enum class SweepMode {
  kMemoized,  ///< per-operation sub-mask cache + gate composition (default)
  kDirect,    ///< one full study run per mask (reference semantics)
};

/// Checks-count ceiling for exhaustive sweeps: 2^26 MaskResult rows is
/// already multi-GiB of report; beyond it a sweep must sample.
inline constexpr std::size_t kMaxExhaustiveSweepChecks = 26;

struct SweepOptions {
  SweepMode mode = SweepMode::kMemoized;
  /// 0 = enumerate all 2^k masks. Otherwise an evenly-strided,
  /// deterministic sample of at most max_masks masks that always
  /// includes mask 0...0 and mask 1...1 (so the baseline/all-checks
  /// verdicts stay meaningful); required once k >= 26.
  std::uint64_t max_masks = 0;
  /// Optional cross-sweep memo store (memoized engine only; the direct
  /// engine never touches it). The fill becomes three deterministic
  /// phases — serial lookup, parallel evaluation of the misses, serial
  /// insertion — so hit/miss/eviction accounting is byte-identical at
  /// every DFSM_THREADS setting.
  SweepMemoStore* memo = nullptr;
};

/// Sweeps one study's masks. Throws std::invalid_argument when the study
/// has kMaxExhaustiveSweepChecks or more checks and no max_masks cap.
[[nodiscard]] LemmaReport sweep(const apps::CaseStudy& study,
                                const SweepOptions& options);

/// Exhaustive sweep with default options (memoized engine).
[[nodiscard]] LemmaReport sweep(const apps::CaseStudy& study);

/// Sweeps every registered case study, sharding the (study x mask) work
/// over the parallel runtime; reports come back in registry order. An
/// options.memo store is shared by all studies (their keys are disjoint,
/// so per-study accounting stays deterministic as long as the store is
/// unbounded — a bound makes concurrent evictions timing-dependent).
[[nodiscard]] std::vector<LemmaReport> sweep_all();
[[nodiscard]] std::vector<LemmaReport> sweep_all(const SweepOptions& options);

// --- incremental re-analysis (DESIGN.md §11) ----------------------------

/// What changed relative to a baseline sweep.
struct SweepDelta {
  /// Operations whose pFSM/check set changed: their sub-mask cells are
  /// re-evaluated against the (new) study; everything else is reused
  /// from the baseline report.
  std::vector<std::size_t> changed_operations;
  /// Operations to secure (the patch candidate): every one of their
  /// checks is pinned on, by composition only — securing costs ZERO
  /// re-evaluations. The result equals a full sweep of
  /// apps::make_secured_study(study, secured_operations).
  std::vector<std::size_t> secured_operations;
};

/// Incremental re-analysis: recomposes `baseline` (an exhaustive,
/// unsampled sweep of `study`) under `delta`, re-evaluating only the
/// changed operations' sub-masks and recomposing every row through the
/// existing gate-order composition. Equivalent (reports_equivalent) to a
/// full memoized or direct sweep of the delta'd study at every
/// DFSM_THREADS setting. Throws std::invalid_argument when the baseline
/// is sampled, belongs to a different study, or the delta names an
/// operation without checks.
[[nodiscard]] LemmaReport resweep(const apps::CaseStudy& study,
                                  const LemmaReport& baseline,
                                  const SweepDelta& delta,
                                  const SweepOptions& options = {});

/// Aggregate sweep verdicts computed combinatorially from the
/// per-operation caches WITHOUT materializing the 2^k rows: the mask
/// space factors into per-operation sub-mask spaces, so every count is a
/// product-sum over at most sum_ops 2^{k_op} cells. This is the
/// k-candidates-for-one-sweep hot path: with a shared memo store the
/// marginal cost of a patch candidate is pure composition.
struct SweepSummary {
  std::string study_name;             ///< secured name when delta pins ops
  std::uint64_t total_masks = 0;
  std::uint64_t exploited_masks = 0;  ///< masks under which the exploit lands
  std::uint64_t benign_broken_masks = 0;  ///< masks breaking benign service
  bool baseline_exploited = false;    ///< mask 0...0 (after pinning)
  bool all_checks_foil = false;
  bool lemma2_holds = false;
  std::size_t exploit_evaluations = 0;
  std::size_t benign_evaluations = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::size_t entries_invalidated = 0;
};

/// Computes the summary for `study` with delta.secured_operations pinned
/// on (delta.changed_operations is irrelevant here: the fill always
/// evaluates against the current study, and a memo store revalidates by
/// fingerprint). Works for any k <= 62. Throws std::invalid_argument on
/// an operation without checks.
[[nodiscard]] SweepSummary sweep_summary(const apps::CaseStudy& study,
                                         const SweepDelta& delta = {},
                                         const SweepOptions& options = {});

/// True iff, under this mask, operation `op` of the study has every one of
/// its checks enabled.
[[nodiscard]] bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                                     const std::vector<bool>& mask, std::size_t op);

/// Result equality modulo accounting: same rows (masks, outcomes,
/// secured flags) and same verdicts, ignoring evaluation counters and
/// memo telemetry. This is the memoized-vs-direct cross-check contract.
[[nodiscard]] bool reports_equivalent(const LemmaReport& a,
                                      const LemmaReport& b);

// --- fault-injection surface (src/faultinject/) -------------------------

/// Seeded defects aimed at the memoized engine's cache and the
/// cross-sweep store. Each must be caught by the memoized-vs-direct
/// cross-check (reports_equivalent returning false against the
/// reference) — that cross-check is the safety net that licenses
/// shipping the memoized engine and the shared store as the default.
enum class SweepFault {
  /// A blocking sub-mask entry is overwritten with the baseline outcome,
  /// as if the cache were stale from a previous (all-checks-off) fill.
  kStaleSubmaskEntry,
  /// A blocking entry's cached exploit outcome has its `exploited` bit
  /// flipped (memoized rows inherit the corrupted verdict).
  kFlippedCacheOutcome,
  /// Rows are composed from the LAST blocking operation instead of the
  /// first — the propagation-gate order is applied backwards.
  kWrongGateComposition,
  /// The shared store serves an entry written for a DIFFERENT cell (a
  /// previous sweep generation) without consulting the invalidation
  /// fingerprint: one blocking cell inherits another cell's outcome.
  kStaleSharedMemoAcrossSweeps,
  /// Incremental re-analysis of a patch misses the invalidation/pinning
  /// of the secured operation: the "patched" report is composed from the
  /// unpatched entries. The cross-check reference is the direct sweep of
  /// the secured study (SweepFaultReport::reference).
  kMissedInvalidationOnPatch,
};

[[nodiscard]] const char* to_string(SweepFault f) noexcept;

/// What a sweep fault hit.
struct SweepFaultReport {
  LemmaReport report;  ///< the (corrupted) memoized sweep
  std::string target;  ///< "op <i> submask <s>" or "gate composition"
  /// The report the cross-check must diff against, when it is NOT the
  /// direct sweep of the study itself (kMissedInvalidationOnPatch
  /// compares against the secured study's direct sweep).
  std::optional<LemmaReport> reference;
};

/// Runs the memoized sweep with the given fault injected. Returns
/// nullopt when the study cannot host the fault (no blocking cache entry
/// to corrupt, no second differing cell to alias, or — for
/// kWrongGateComposition — no two operations whose blocking outcomes
/// differ, so first-vs-last is indistinguishable).
[[nodiscard]] std::optional<SweepFaultReport> sweep_with_fault(
    const apps::CaseStudy& study, SweepFault fault,
    const SweepOptions& options = {});

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_CHAIN_ANALYZER_H
