// chain_analyzer.h — the Lemma, machine-checked (paper §6).
//
//   Lemma. (1) To ensure the security of an operation requires [all] the
//   predicates (represented by pFSMs) constituting the operation to be
//   correctly implemented. (2) To foil an exploit consisting of a
//   sequence of vulnerable operations, it is sufficient to ensure
//   security of ONE of the operations in the sequence.
//
// ChainAnalyzer enumerates every 2^k combination of a case study's
// elementary-activity checks, runs the published exploit and a benign
// workload under each, and verifies:
//   * baseline (no checks)  -> exploited,
//   * any mask securing at least one whole operation -> NOT exploited
//     (Lemma 2),
//   * all checks on -> not exploited AND benign service intact (Lemma 1's
//     "sufficient" direction plus no functional regression),
//   * benign traffic is served under EVERY mask (checks are free).
//
// Two engines produce the same report (DESIGN.md §10):
//   * kDirect runs the study once per mask — 2^k full app runs, the
//     reference semantics;
//   * kMemoized exploits the Lemma's predicate independence: an
//     operation's behaviour depends only on the sub-mask of its OWN
//     checks, so each operation is evaluated at most 2^{k_op} times (a
//     per-operation OutcomeCache keyed by sub-mask) and the 2^k rows are
//     composed through the propagation-gate order — the first operation
//     whose sub-mask perturbs the run determines the row.
// Both engines fan out over the deterministic parallel runtime; reports
// are byte-identical at every DFSM_THREADS setting and across engines
// (tests + the fault-injection cross-check gate on it).
#ifndef DFSM_ANALYSIS_CHAIN_ANALYZER_H
#define DFSM_ANALYSIS_CHAIN_ANALYZER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/case_study.h"

namespace dfsm::analysis {

/// One row of the sweep: a mask and what happened under it.
struct MaskResult {
  std::vector<bool> mask;
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool some_operation_secured = false;  ///< >=1 operation has all checks on
};

/// Full sweep over one case study.
struct LemmaReport {
  std::string study_name;
  std::vector<apps::CheckSpec> checks;
  std::vector<MaskResult> results;  ///< mask rows in ascending mask order

  bool baseline_exploited = false;   ///< mask 0...0 exploited
  bool all_checks_foil = false;      ///< mask 1...1 not exploited
  bool lemma2_holds = false;         ///< every secured-operation mask foils
  bool benign_preserved = false;     ///< benign served under every mask
  /// Single-check masks that already foil the exploit (the paper's "each
  /// elementary activity provides a security checking opportunity").
  std::vector<std::size_t> foiling_single_checks;

  // --- sweep accounting --------------------------------------------------
  std::uint64_t total_masks = 0;  ///< 2^k (even when rows were sampled)
  bool sampled = false;           ///< results hold a max_masks subset
  /// How many times study.run_exploit / run_benign actually ran. Direct:
  /// one each per row. Memoized: at most 1 + sum_ops (2^{k_op} - 1) each
  /// regardless of 2^k (tests assert the bound).
  std::size_t exploit_evaluations = 0;
  std::size_t benign_evaluations = 0;
};

/// Which evaluation engine drives the sweep.
enum class SweepMode {
  kMemoized,  ///< per-operation sub-mask cache + gate composition (default)
  kDirect,    ///< one full study run per mask (reference semantics)
};

/// Checks-count ceiling for exhaustive sweeps: 2^26 MaskResult rows is
/// already multi-GiB of report; beyond it a sweep must sample.
inline constexpr std::size_t kMaxExhaustiveSweepChecks = 26;

struct SweepOptions {
  SweepMode mode = SweepMode::kMemoized;
  /// 0 = enumerate all 2^k masks. Otherwise an evenly-strided,
  /// deterministic sample of at most max_masks masks that always
  /// includes mask 0...0 and mask 1...1 (so the baseline/all-checks
  /// verdicts stay meaningful); required once k >= 26.
  std::uint64_t max_masks = 0;
};

/// Sweeps one study's masks. Throws std::invalid_argument when the study
/// has kMaxExhaustiveSweepChecks or more checks and no max_masks cap.
[[nodiscard]] LemmaReport sweep(const apps::CaseStudy& study,
                                const SweepOptions& options);

/// Exhaustive sweep with default options (memoized engine).
[[nodiscard]] LemmaReport sweep(const apps::CaseStudy& study);

/// Sweeps every registered case study, sharding the (study x mask) work
/// over the parallel runtime; reports come back in registry order.
[[nodiscard]] std::vector<LemmaReport> sweep_all();
[[nodiscard]] std::vector<LemmaReport> sweep_all(const SweepOptions& options);

/// True iff, under this mask, operation `op` of the study has every one of
/// its checks enabled.
[[nodiscard]] bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                                     const std::vector<bool>& mask, std::size_t op);

/// Result equality modulo accounting: same rows (masks, outcomes,
/// secured flags) and same verdicts, ignoring evaluation counters. This
/// is the memoized-vs-direct cross-check contract.
[[nodiscard]] bool reports_equivalent(const LemmaReport& a,
                                      const LemmaReport& b);

// --- fault-injection surface (src/faultinject/) -------------------------

/// Seeded defects aimed at the memoized engine's cache. Each must be
/// caught by the memoized-vs-direct cross-check (reports_equivalent
/// returning false) — that cross-check is the safety net that licenses
/// shipping the memoized engine as the default.
enum class SweepFault {
  /// A blocking sub-mask entry is overwritten with the baseline outcome,
  /// as if the cache were stale from a previous (all-checks-off) fill.
  kStaleSubmaskEntry,
  /// A blocking entry's cached exploit outcome has its `exploited` bit
  /// flipped (memoized rows inherit the corrupted verdict).
  kFlippedCacheOutcome,
  /// Rows are composed from the LAST blocking operation instead of the
  /// first — the propagation-gate order is applied backwards.
  kWrongGateComposition,
};

[[nodiscard]] const char* to_string(SweepFault f) noexcept;

/// What a sweep fault hit.
struct SweepFaultReport {
  LemmaReport report;  ///< the (corrupted) memoized sweep
  std::string target;  ///< "op <i> submask <s>" or "gate composition"
};

/// Runs the memoized sweep with the given fault injected. Returns
/// nullopt when the study cannot host the fault (no blocking cache entry
/// to corrupt, or — for kWrongGateComposition — no two operations whose
/// blocking outcomes differ, so first-vs-last is indistinguishable).
[[nodiscard]] std::optional<SweepFaultReport> sweep_with_fault(
    const apps::CaseStudy& study, SweepFault fault,
    const SweepOptions& options = {});

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_CHAIN_ANALYZER_H
