// chain_analyzer.h — the Lemma, machine-checked (paper §6).
//
//   Lemma. (1) To ensure the security of an operation requires [all] the
//   predicates (represented by pFSMs) constituting the operation to be
//   correctly implemented. (2) To foil an exploit consisting of a
//   sequence of vulnerable operations, it is sufficient to ensure
//   security of ONE of the operations in the sequence.
//
// ChainAnalyzer enumerates every 2^k combination of a case study's
// elementary-activity checks, runs the published exploit and a benign
// workload under each, and verifies:
//   * baseline (no checks)  -> exploited,
//   * any mask securing at least one whole operation -> NOT exploited
//     (Lemma 2),
//   * all checks on -> not exploited AND benign service intact (Lemma 1's
//     "sufficient" direction plus no functional regression),
//   * benign traffic is served under EVERY mask (checks are free).
#ifndef DFSM_ANALYSIS_CHAIN_ANALYZER_H
#define DFSM_ANALYSIS_CHAIN_ANALYZER_H

#include <string>
#include <vector>

#include "apps/case_study.h"

namespace dfsm::analysis {

/// One row of the sweep: a mask and what happened under it.
struct MaskResult {
  std::vector<bool> mask;
  apps::RunOutcome exploit;
  apps::RunOutcome benign;
  bool some_operation_secured = false;  ///< >=1 operation has all checks on
};

/// Full sweep over one case study.
struct LemmaReport {
  std::string study_name;
  std::vector<apps::CheckSpec> checks;
  std::vector<MaskResult> results;  ///< 2^k rows, mask = binary counting order

  bool baseline_exploited = false;   ///< mask 0...0 exploited
  bool all_checks_foil = false;      ///< mask 1...1 not exploited
  bool lemma2_holds = false;         ///< every secured-operation mask foils
  bool benign_preserved = false;     ///< benign served under every mask
  /// Single-check masks that already foil the exploit (the paper's "each
  /// elementary activity provides a security checking opportunity").
  std::vector<std::size_t> foiling_single_checks;
};

/// Sweeps all 2^k masks of one study.
[[nodiscard]] LemmaReport sweep(const apps::CaseStudy& study);

/// Sweeps every registered case study.
[[nodiscard]] std::vector<LemmaReport> sweep_all();

/// True iff, under this mask, operation `op` of the study has every one of
/// its checks enabled.
[[nodiscard]] bool operation_secured(const std::vector<apps::CheckSpec>& checks,
                                     const std::vector<bool>& mask, std::size_t op);

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_CHAIN_ANALYZER_H
