// anomaly.h — simple state-based program anomaly detection over event
// traces: the Michael & Ghosh approach the paper cites as the other FSM
// line of work (§2, [19]: "By training the model using normal traces, the
// FSM is able to identify abnormal program behaviors and thus detect
// intrusions").
//
// The detector learns the set of length-n windows (n-grams) occurring in
// benign traces — equivalently, the transition relation of an FSM whose
// states are (n-1)-grams — and scores a fresh trace by the fraction of
// windows it contains that were never seen in training. Exploited runs
// diverge from the learned automaton (truncated shutdown sequences,
// payload behaviour after the control-flow hijack) and score high.
//
// This complements the paper's pFSM approach: the pFSM model explains WHY
// an implementation is exploitable before deployment; the trace detector
// notices THAT something abnormal happened at run time.
#ifndef DFSM_ANALYSIS_ANOMALY_H
#define DFSM_ANALYSIS_ANOMALY_H

#include <set>
#include <string>
#include <vector>

namespace dfsm::analysis {

/// An event trace (e.g. the syscall-level event list an app run emits).
using EventTrace = std::vector<std::string>;

/// N-gram/FSM anomaly detector.
///
/// Invariant: n >= 1 (checked). Traces shorter than n contribute/score
/// their single padded window.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(std::size_t n = 2);

  /// Learns all windows of a benign trace (with implicit START/END
  /// sentinels, so truncation is observable).
  void train(const EventTrace& trace);
  void train_all(const std::vector<EventTrace>& traces);

  /// Fraction of the trace's windows that were never seen in training,
  /// in [0,1]. 0 on an untrained detector is impossible: with no known
  /// windows every window is novel (score 1), matching [19]'s behaviour.
  [[nodiscard]] double score(const EventTrace& trace) const;

  /// score(trace) > threshold.
  [[nodiscard]] bool anomalous(const EventTrace& trace,
                               double threshold = 0.0) const;

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t known_windows() const noexcept {
    return known_.size();
  }
  [[nodiscard]] std::size_t trained_traces() const noexcept {
    return trained_traces_;
  }

  /// The novel windows of a trace (for explanation in reports).
  [[nodiscard]] std::vector<std::string> novel_windows(const EventTrace& trace) const;

 private:
  [[nodiscard]] std::vector<std::string> windows(const EventTrace& trace) const;

  std::size_t n_;
  std::set<std::string> known_;
  std::size_t trained_traces_ = 0;
};

}  // namespace dfsm::analysis

#endif  // DFSM_ANALYSIS_ANOMALY_H
