#include "analysis/hidden_path.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/fingerprint.h"
#include "runtime/parallel.h"

namespace dfsm::analysis {

HiddenPathReport detect_hidden_path(const core::Pfsm& pfsm,
                                    const std::vector<core::Object>& domain,
                                    std::size_t max_witnesses) {
  HiddenPathReport report;
  report.pfsm_name = pfsm.name();
  report.domain_size = domain.size();
  for (const auto& o : domain) {
    if (pfsm.spec().accepts(o)) continue;
    ++report.spec_rejects;
    if (pfsm.impl().accepts(o) && report.witnesses.size() < max_witnesses) {
      report.witnesses.push_back(o);
    }
  }
  return report;
}

std::vector<HiddenPathReport> scan_model(
    const core::FsmModel& model,
    const std::map<std::string, std::vector<core::Object>>& domains,
    std::size_t max_witnesses) {
  // Flatten the (operation x pFSM) grid in chain order, then shard the
  // per-pFSM domain scans over the parallel runtime. parallel_map keeps
  // index order, so the report sequence is byte-identical to the serial
  // walk at every DFSM_THREADS setting.
  struct Job {
    const core::Pfsm* pfsm = nullptr;
    const std::vector<core::Object>* domain = nullptr;
  };
  std::vector<Job> jobs;
  for (const auto& op : model.chain().operations()) {
    for (const auto& p : op.pfsms()) {
      auto it = domains.find(p.name());
      if (it == domains.end()) continue;
      jobs.push_back({&p, &it->second});
    }
  }
  return runtime::parallel_map<HiddenPathReport>(
      jobs.size(), [&](std::size_t i) {
        return detect_hidden_path(*jobs[i].pfsm, *jobs[i].domain,
                                  max_witnesses);
      });
}

std::size_t ScanKeyHash::operator()(const ScanKey& k) const noexcept {
  core::Fingerprinter fp;
  fp.mix(k.model)
      .mix(k.model_fingerprint)
      .mix(k.domains_digest)
      .mix(static_cast<std::uint64_t>(k.max_witnesses));
  return static_cast<std::size_t>(fp.digest());
}

std::vector<HiddenPathReport> scan_model(
    const core::FsmModel& model,
    const std::map<std::string, std::vector<core::Object>>& domains,
    HiddenPathScanStore* memo, std::size_t max_witnesses) {
  if (memo == nullptr) return scan_model(model, domains, max_witnesses);
  core::Fingerprinter digest;
  for (const auto& [name, domain] : domains) {  // std::map: sorted, stable
    digest.mix(name).mix(static_cast<std::uint64_t>(domain.size()));
    for (const auto& o : domain) digest.mix(o.describe());
  }
  const ScanKey key{model.name(), core::fingerprint(model), digest.digest(),
                    max_witnesses};
  if (auto cached = memo->get(key)) return *std::move(cached);
  auto reports = scan_model(model, domains, max_witnesses);
  memo->put(key, reports);
  return reports;
}

std::vector<core::Object> int_boundary_domain(
    const std::string& name, const std::string& attr,
    const std::vector<std::int64_t>& interesting) {
  std::set<std::int64_t> values;
  for (std::int64_t v : interesting) {
    values.insert(v);
    if (v > std::numeric_limits<std::int64_t>::min()) values.insert(v - 1);
    if (v < std::numeric_limits<std::int64_t>::max()) values.insert(v + 1);
  }
  std::vector<core::Object> out;
  out.reserve(values.size());
  for (std::int64_t v : values) {
    out.push_back(core::Object{name}.with(attr, v));
  }
  return out;
}

std::vector<core::Object> int_range_domain(const std::string& name,
                                           const std::string& attr,
                                           std::int64_t lo, std::int64_t hi,
                                           std::int64_t step) {
  if (step <= 0) throw std::invalid_argument("int_range_domain: step must be > 0");
  std::vector<core::Object> out;
  for (std::int64_t v = lo; v <= hi; v += step) {
    out.push_back(core::Object{name}.with(attr, v));
    if (v > hi - step) break;  // overflow guard near the top
  }
  return out;
}

std::vector<core::Object> bool_domain(const std::string& name,
                                      const std::string& attr) {
  return {core::Object{name}.with(attr, false),
          core::Object{name}.with(attr, true)};
}

std::vector<core::Object> string_domain(const std::string& name,
                                        const std::string& attr,
                                        const std::vector<std::string>& samples) {
  std::vector<core::Object> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(core::Object{name}.with(attr, s));
  }
  return out;
}

}  // namespace dfsm::analysis
