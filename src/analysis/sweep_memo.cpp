#include "analysis/sweep_memo.h"

namespace dfsm::analysis {

std::optional<MemoEntry> SweepMemoStore::lookup(const MemoKey& key,
                                                std::uint64_t op_fingerprint,
                                                bool* invalidated) {
  if (invalidated != nullptr) *invalidated = false;
  auto entry = store_.get(key);
  if (entry && entry->op_fingerprint != op_fingerprint) {
    // Stale: the operation's pFSM set changed since this entry was
    // written. Only this operation's entries can carry the old
    // fingerprint, so invalidation never touches a neighbour. The erase
    // re-validates under the store lock so a fresh entry re-inserted by
    // a concurrent writer between the get and here survives, and only
    // the thread that actually dropped the entry counts an invalidation.
    const bool erased = store_.erase_if(key, [&](const MemoEntry& e) {
      return e.op_fingerprint != op_fingerprint;
    });
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (erased) ++invalidated_;
    ++misses_;
    if (invalidated != nullptr) *invalidated = erased;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  if (!entry) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return entry;
}

SweepMemoStore::Stats SweepMemoStore::stats() const {
  const auto lru = store_.stats();
  Stats s;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    s.hits = hits_;
    s.misses = misses_;
    s.invalidated = invalidated_;
  }
  s.evictions = lru.evictions;
  s.size = store_.size();
  s.max_entries = store_.max_entries();
  return s;
}

}  // namespace dfsm::analysis
