// predicates.h — a library of reusable, parameterized security predicates.
//
// Paper §7 (future work): "A future direction of this work is to study the
// security predicates specific to different software ... in addition to
// the generic predicates discussed in this paper (e.g., buffer boundary
// and array index checks). We hope that a comprehensive understanding of
// these predicates will enable us to build an automatic tool for the
// vulnerability analysis."
//
// This module is that predicate catalogue: every check that appears in
// the seven case studies (and Table 2) as a named, parameterized factory,
// each tagged with its Figure 8 generic type. autotool.h assembles them
// into models mechanically.
#ifndef DFSM_ANALYSIS_PREDICATES_H
#define DFSM_ANALYSIS_PREDICATES_H

#include <cstdint>
#include <string>

#include "core/pfsm.h"
#include "core/predicate.h"

namespace dfsm::analysis::predicates {

// ---- Object Type Checks ------------------------------------------------

/// "Does the input represent an integer a signed N-bit variable can hold?"
/// Object contract: integer attribute `attr` carrying the wide (pre-
/// truncation) value. (Sendmail pFSM1.)
[[nodiscard]] core::Predicate representable_as_int32(const std::string& attr);

/// "Is the target file of the expected type?" Object contract: string
/// attribute `attr` carrying the node type name ("terminal", "file", ...).
/// (rwall pFSM2.)
[[nodiscard]] core::Predicate file_type_is(const std::string& attr,
                                           const std::string& expected);

// ---- Content and Attribute Checks --------------------------------------

/// "lo <= value <= hi". Object contract: integer attribute `attr`.
/// (Sendmail pFSM2: 0 <= x <= 100.)
[[nodiscard]] core::Predicate int_in_range(const std::string& attr,
                                           std::int64_t lo, std::int64_t hi);

/// "value >= bound". (NULL HTTPD pFSM1: contentLen >= 0.)
[[nodiscard]] core::Predicate int_at_least(const std::string& attr,
                                           std::int64_t bound);

/// "value <= bound". (The historical, incomplete upper-bound-only check.)
[[nodiscard]] core::Predicate int_at_most(const std::string& attr,
                                          std::int64_t bound);

/// "length(len_attr) <= capacity(cap_attr)". (NULL HTTPD pFSM2; GHTTPD
/// pFSM1 with a constant capacity uses length_at_most.)
[[nodiscard]] core::Predicate length_within_capacity(const std::string& len_attr,
                                                     const std::string& cap_attr);

/// "length(attr) <= n". (GHTTPD pFSM1: size(message) <= 200.)
[[nodiscard]] core::Predicate length_at_most(const std::string& attr,
                                             std::int64_t n);

/// "the string contains no printf conversion directives".
/// (rpc.statd pFSM1.)
[[nodiscard]] core::Predicate no_format_directives(const std::string& attr);

/// "the (fully decoded) path contains no parent traversal". (IIS pFSM1.)
[[nodiscard]] core::Predicate no_path_traversal(const std::string& attr);

/// "the caller holds root privilege". Object contract: bool attribute.
/// (rwall pFSM1.)
[[nodiscard]] core::Predicate caller_is_root(const std::string& attr);

// ---- Reference Consistency Checks --------------------------------------

/// "the reference named by `attr` is unchanged between check and use".
/// Object contract: bool attribute that the observer computes (GOT
/// snapshot comparison, saved-return comparison, free-chunk link
/// round-trip, filename re-resolution). Covers Sendmail pFSM3, NULL HTTPD
/// pFSM3/pFSM4, GHTTPD pFSM2, rpc.statd pFSM2, xterm pFSM2.
[[nodiscard]] core::Predicate reference_unchanged(const std::string& attr);

// ---- Catalogue ----------------------------------------------------------

/// A named entry of the predicate catalogue (for the autotool's
/// by-name lookup and for documentation dumps).
struct CatalogueEntry {
  std::string name;           ///< e.g. "int_in_range"
  core::PfsmType type;        ///< Figure 8 classification
  std::string description;    ///< human-readable contract
};

/// Every predicate family the catalogue offers.
[[nodiscard]] const std::vector<CatalogueEntry>& catalogue();

}  // namespace dfsm::analysis::predicates

#endif  // DFSM_ANALYSIS_PREDICATES_H
