// io.h — socket I/O into sandbox memory: the recv(2) of the NULL HTTPD
// ReadPOSTData loop (paper Figure 4b, source line 4).
//
// recv writes up to `max` bytes at dst with NO knowledge of the buffer it
// is filling — bounding the write is the caller's job, which is precisely
// what NULL HTTPD gets wrong twice (#5774: buffer undersized via negative
// contentLen; #6255: loop keeps reading past the buffer).
#ifndef DFSM_LIBCSIM_IO_H
#define DFSM_LIBCSIM_IO_H

#include "memsim/address_space.h"
#include "netsim/bytestream.h"

namespace dfsm::libcsim {

using memsim::Addr;
using memsim::AddressSpace;

/// recv(2): reads up to max bytes from the stream into sandbox memory at
/// dst. Returns the byte count, 0 at EOF, -1 on socket error. Partial
/// delivery follows the stream's queue state, like a real socket.
int c_recv(AddressSpace& as, netsim::ByteStream& stream, Addr dst, std::size_t max);

}  // namespace dfsm::libcsim

#endif  // DFSM_LIBCSIM_IO_H
