// format.h — a printf-family engine over the sandbox, including the %n
// write-back directive that makes format string vulnerabilities (paper
// §3.2, rpc.statd #1480) exploitable.
//
// "format string vulnerabilities (i.e., user's input strings containing
// format directives, such as %n, %x, %d)". When a program passes user
// input as the *format* argument, the engine walks the argument area —
// which, for a buffer that itself lives on the stack, includes attacker
// bytes — and %n stores the running output count through an
// attacker-chosen pointer: an arbitrary-write primitive.
//
// Large pad widths are counted *virtually* (the count advances, the
// materialized bytes are capped), matching how real exploits produce
// multi-megabyte counts without multi-megabyte outputs mattering.
#ifndef DFSM_LIBCSIM_FORMAT_H
#define DFSM_LIBCSIM_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/address_space.h"

namespace dfsm::libcsim {

using memsim::Addr;
using memsim::AddressSpace;

/// Supplies the variadic arguments of a format call. Explicit host-side
/// arguments come first; once exhausted, further lookups read 8-byte words
/// from `vararg_base` upward — modeling printf walking the caller's stack
/// frame, where an on-stack buffer places attacker bytes in reach.
class ArgProvider {
 public:
  /// @param as           address space for the memory-walk region
  /// @param explicit_args host-side arguments, consumed first
  /// @param vararg_base  0 => no memory walk (out-of-args reads yield 0)
  ArgProvider(const AddressSpace& as, std::vector<std::uint64_t> explicit_args,
              Addr vararg_base = 0);

  /// 0-based argument fetch.
  [[nodiscard]] std::uint64_t get(std::size_t index) const;

 private:
  const AddressSpace& as_;
  std::vector<std::uint64_t> explicit_args_;
  Addr vararg_base_;
};

/// Outcome of one format call.
struct FormatResult {
  std::size_t count = 0;          ///< characters produced (incl. virtual pad)
  std::size_t bytes_written = 0;  ///< bytes materialized at dst (excl. NUL)
  std::size_t n_stores = 0;       ///< %n / %hn stores performed
  std::string text;               ///< materialized text (when requested)
};

/// The engine. Directives: %% %c %s %d %i %u %x %p %n %hn, optional
/// positional prefix "N$", a decimal width, and ".precision" (which
/// truncates %s arguments). Unknown directives are copied through
/// verbatim (lenient, like the studied programs' libcs).
class FormatEngine {
 public:
  explicit FormatEngine(AddressSpace& as) : as_(as) {}

  /// vsprintf(3) into the sandbox at dst: materializes up to
  /// `materialize_cap` bytes (then keeps counting virtually), always
  /// NUL-terminates after the materialized bytes, performs %n stores.
  /// NO bounds check against the destination buffer — that is the
  /// vulnerability under study.
  FormatResult vsprintf(Addr dst, const std::string& fmt, const ArgProvider& args,
                        std::size_t materialize_cap = 1 << 16);

  /// snprintf-like host-string output (no destination in the sandbox,
  /// %n stores still performed — it is the same engine).
  FormatResult format_to_string(const std::string& fmt, const ArgProvider& args,
                                std::size_t materialize_cap = 1 << 16);

  /// vsnprintf(3): the BOUNDED sibling — at most n-1 bytes plus NUL land
  /// at dst, however long the expansion; count still reports the full
  /// (untruncated) length, like C99. This is the "boundary-checked"
  /// defence of paper §3.2 for the formatting path. n == 0 writes nothing.
  FormatResult vsnprintf(Addr dst, std::size_t n, const std::string& fmt,
                         const ArgProvider& args);

  /// True if a string contains any conversion directive other than %% —
  /// the Content/Attribute predicate of the rpc.statd pFSM1 ("does the
  /// input contain format directives?").
  [[nodiscard]] static bool contains_directives(const std::string& s);

 private:
  FormatResult run(Addr dst, bool to_sandbox, const std::string& fmt,
                   const ArgProvider& args, std::size_t materialize_cap);

  AddressSpace& as_;
};

}  // namespace dfsm::libcsim

#endif  // DFSM_LIBCSIM_FORMAT_H
