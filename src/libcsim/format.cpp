#include "libcsim/format.h"

#include <cctype>

namespace dfsm::libcsim {

ArgProvider::ArgProvider(const AddressSpace& as,
                         std::vector<std::uint64_t> explicit_args,
                         Addr vararg_base)
    : as_(as), explicit_args_(std::move(explicit_args)), vararg_base_(vararg_base) {}

std::uint64_t ArgProvider::get(std::size_t index) const {
  if (index < explicit_args_.size()) return explicit_args_[index];
  if (vararg_base_ == 0) return 0;
  const std::size_t walk = index - explicit_args_.size();
  return as_.read64(vararg_base_ + 8 * walk);
}

bool FormatEngine::contains_directives(const std::string& s) {
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == '%' && s[i + 1] != '%') return true;
    if (s[i] == '%' && s[i + 1] == '%') ++i;  // skip the escaped pair
  }
  // A trailing lone '%' is not a conversion.
  return false;
}

FormatResult FormatEngine::vsprintf(Addr dst, const std::string& fmt,
                                    const ArgProvider& args,
                                    std::size_t materialize_cap) {
  return run(dst, /*to_sandbox=*/true, fmt, args, materialize_cap);
}

FormatResult FormatEngine::format_to_string(const std::string& fmt,
                                            const ArgProvider& args,
                                            std::size_t materialize_cap) {
  return run(0, /*to_sandbox=*/false, fmt, args, materialize_cap);
}

FormatResult FormatEngine::vsnprintf(Addr dst, std::size_t n,
                                     const std::string& fmt,
                                     const ArgProvider& args) {
  if (n == 0) {
    // C99: nothing is written, the count is still computed.
    return run(0, /*to_sandbox=*/false, fmt, args, 0);
  }
  return run(dst, /*to_sandbox=*/true, fmt, args, n - 1);
}

FormatResult FormatEngine::run(Addr dst, bool to_sandbox, const std::string& fmt,
                               const ArgProvider& args,
                               std::size_t materialize_cap) {
  FormatResult res;
  std::size_t next_arg = 0;

  auto emit_char = [&](char c) {
    if (res.bytes_written < materialize_cap) {
      if (to_sandbox) {
        as_.write8(dst + res.bytes_written, static_cast<std::uint8_t>(c));
      } else {
        res.text.push_back(c);
      }
      ++res.bytes_written;
    }
    ++res.count;  // the count always advances — that is what %n reads
  };
  auto emit_str = [&](const std::string& s, std::size_t width) {
    std::size_t pad = s.size() < width ? width - s.size() : 0;
    // Materialize padding while it fits under the cap; count the rest
    // virtually (emit_char advances count, so only the overflow is added).
    while (pad > 0 && res.bytes_written < materialize_cap) {
      emit_char(' ');
      --pad;
    }
    res.count += pad;
    for (char c : s) emit_char(c);
  };

  std::size_t i = 0;
  while (i < fmt.size()) {
    const char c = fmt[i];
    if (c != '%') {
      emit_char(c);
      ++i;
      continue;
    }
    // Parse a directive starting at fmt[i] == '%'.
    std::size_t j = i + 1;
    if (j >= fmt.size()) {  // trailing lone '%'
      emit_char('%');
      break;
    }
    if (fmt[j] == '%') {
      emit_char('%');
      i = j + 1;
      continue;
    }
    // Optional positional "N$" and/or width digits.
    std::size_t number = 0;
    bool have_number = false;
    std::size_t k = j;
    while (k < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[k]))) {
      number = number * 10 + static_cast<std::size_t>(fmt[k] - '0');
      have_number = true;
      ++k;
    }
    bool positional = false;
    std::size_t arg_index = 0;
    std::size_t width = 0;
    if (have_number && k < fmt.size() && fmt[k] == '$') {
      positional = true;
      arg_index = number == 0 ? 0 : number - 1;
      ++k;
      // A width may follow the positional prefix.
      std::size_t w = 0;
      while (k < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[k]))) {
        w = w * 10 + static_cast<std::size_t>(fmt[k] - '0');
        ++k;
      }
      width = w;
    } else if (have_number) {
      width = number;
    }
    // Optional ".precision" (meaningful for %s: truncate the argument).
    bool have_precision = false;
    std::size_t precision = 0;
    if (k < fmt.size() && fmt[k] == '.') {
      have_precision = true;
      ++k;
      while (k < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[k]))) {
        precision = precision * 10 + static_cast<std::size_t>(fmt[k] - '0');
        ++k;
      }
    }
    // Optional 'h' length modifier (for %hn).
    bool half = false;
    if (k < fmt.size() && fmt[k] == 'h') {
      half = true;
      ++k;
    }
    if (k >= fmt.size()) {  // malformed tail: copy verbatim
      while (i < fmt.size()) emit_char(fmt[i++]);
      break;
    }
    const char conv = fmt[k];
    auto take_arg = [&]() -> std::uint64_t {
      if (positional) return args.get(arg_index);
      return args.get(next_arg++);
    };
    switch (conv) {
      case 'd':
      case 'i': {
        const auto v = static_cast<std::int64_t>(take_arg());
        emit_str(std::to_string(v), width);
        break;
      }
      case 'u': {
        emit_str(std::to_string(take_arg()), width);
        break;
      }
      case 'x':
      case 'p': {
        char buf[32];
        std::snprintf(buf, sizeof buf, conv == 'p' ? "0x%llx" : "%llx",
                      static_cast<unsigned long long>(take_arg()));
        emit_str(buf, width);
        break;
      }
      case 'c': {
        const char ch = static_cast<char>(take_arg() & 0xFF);
        emit_str(std::string(1, ch), width);
        break;
      }
      case 's': {
        const Addr p = take_arg();
        std::string s = p == 0 ? "(null)" : as_.read_cstring(p);
        if (have_precision && s.size() > precision) s.resize(precision);
        emit_str(s, width);
        break;
      }
      case 'n': {
        const Addr p = take_arg();
        if (half) {
          as_.write16(p, static_cast<std::uint16_t>(res.count));
        } else {
          as_.write64(p, static_cast<std::uint64_t>(res.count));
        }
        ++res.n_stores;
        break;
      }
      default:
        // Unknown conversion: copy the whole directive through verbatim.
        for (std::size_t m = i; m <= k; ++m) emit_char(fmt[m]);
        break;
    }
    i = k + 1;
  }
  if (to_sandbox) {
    as_.write8(dst + res.bytes_written, 0);  // terminator (not counted)
  }
  return res;
}

}  // namespace dfsm::libcsim
