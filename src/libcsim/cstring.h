// cstring.h — C string/memory routines over the sandboxed address space,
// bug-for-bug faithful: the unbounded variants (strcpy, strcat, gets,
// sprintf) copy until the source ends, regardless of destination size —
// the destination's owner must get the bounds right, which is exactly the
// elementary activity the paper's Content/Attribute pFSMs check.
//
// The bounded variants (strncpy, getns) are the "boundary-checked string
// functions" the paper lists as the elementary-activity-2 defence (§3.2).
#ifndef DFSM_LIBCSIM_CSTRING_H
#define DFSM_LIBCSIM_CSTRING_H

#include <span>
#include <string>

#include "memsim/address_space.h"

namespace dfsm::libcsim {

using memsim::Addr;
using memsim::AddressSpace;

/// strlen(3): bytes before the first NUL at src.
[[nodiscard]] std::size_t c_strlen(const AddressSpace& as, Addr src);

/// strcpy(3): copies the NUL-terminated string at src to dst, including
/// the terminator. NO bounds check — overruns dst if the source is longer.
/// Returns dst.
Addr c_strcpy(AddressSpace& as, Addr dst, Addr src);

/// Host-source convenience: copies `src` + NUL into the sandbox at dst,
/// unbounded (models "copy the user's string into the buffer").
Addr c_strcpy(AddressSpace& as, Addr dst, const std::string& src);

/// strncpy(3): copies at most n bytes; pads with NULs up to n if the
/// source is shorter; does NOT NUL-terminate when the source is >= n.
Addr c_strncpy(AddressSpace& as, Addr dst, const std::string& src, std::size_t n);

/// strcat(3): unbounded append.
Addr c_strcat(AddressSpace& as, Addr dst, const std::string& src);

/// memcpy(3): raw bounded-by-caller copy of host bytes into the sandbox.
Addr c_memcpy(AddressSpace& as, Addr dst, std::span<const std::uint8_t> src);

/// memset(3).
Addr c_memset(AddressSpace& as, Addr dst, std::uint8_t value, std::size_t n);

/// gets(3): copies an entire input line, unbounded — the canonical
/// elementary-activity-1/2 failure.
Addr c_gets(AddressSpace& as, Addr dst, const std::string& line);

/// getns-style bounded read: at most n-1 bytes plus NUL.
Addr c_getns(AddressSpace& as, Addr dst, std::size_t n, const std::string& line);

}  // namespace dfsm::libcsim

#endif  // DFSM_LIBCSIM_CSTRING_H
