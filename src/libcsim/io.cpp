#include "libcsim/io.h"

namespace dfsm::libcsim {

int c_recv(AddressSpace& as, netsim::ByteStream& stream, Addr dst, std::size_t max) {
  std::vector<std::uint8_t> buf;
  const int rc = stream.recv(buf, max);
  if (rc > 0) {
    as.write_bytes(dst, buf);
  }
  return rc;
}

}  // namespace dfsm::libcsim
