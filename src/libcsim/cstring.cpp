#include "libcsim/cstring.h"

#include <vector>

namespace dfsm::libcsim {

std::size_t c_strlen(const AddressSpace& as, Addr src) {
  std::size_t n = 0;
  while (as.read8(src + n) != 0) ++n;
  return n;
}

Addr c_strcpy(AddressSpace& as, Addr dst, Addr src) {
  std::size_t i = 0;
  for (;; ++i) {
    const std::uint8_t c = as.read8(src + i);
    as.write8(dst + i, c);
    if (c == 0) break;
  }
  return dst;
}

Addr c_strcpy(AddressSpace& as, Addr dst, const std::string& src) {
  as.write_string(dst, src, /*nul_terminate=*/true);
  return dst;
}

Addr c_strncpy(AddressSpace& as, Addr dst, const std::string& src, std::size_t n) {
  std::vector<std::uint8_t> buf(n, 0);
  const std::size_t m = std::min(n, src.size());
  for (std::size_t i = 0; i < m; ++i) buf[i] = static_cast<std::uint8_t>(src[i]);
  as.write_bytes(dst, buf);
  return dst;
}

Addr c_strcat(AddressSpace& as, Addr dst, const std::string& src) {
  const std::size_t at = c_strlen(as, dst);
  as.write_string(dst + at, src, /*nul_terminate=*/true);
  return dst;
}

Addr c_memcpy(AddressSpace& as, Addr dst, std::span<const std::uint8_t> src) {
  as.write_bytes(dst, src);
  return dst;
}

Addr c_memset(AddressSpace& as, Addr dst, std::uint8_t value, std::size_t n) {
  std::vector<std::uint8_t> buf(n, value);
  as.write_bytes(dst, buf);
  return dst;
}

Addr c_gets(AddressSpace& as, Addr dst, const std::string& line) {
  as.write_string(dst, line, /*nul_terminate=*/true);
  return dst;
}

Addr c_getns(AddressSpace& as, Addr dst, std::size_t n, const std::string& line) {
  if (n == 0) return dst;
  const std::size_t m = std::min(n - 1, line.size());
  as.write_string(dst, line.substr(0, m), /*nul_terminate=*/true);
  return dst;
}

}  // namespace dfsm::libcsim
