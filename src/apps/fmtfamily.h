// fmtfamily.h — the format-string family of paper §3.2, runnable.
//
// "format string vulnerabilities are classified as input validation error
// (e.g., #1387 wu-ftpd remote format string stack overwrite
// vulnerability), access validation error (e.g., #2210 splitvt format
// string vulnerability), or boundary condition error (e.g., #2264 icecast
// print_client() format string vulnerability). Therefore, format string
// vulnerabilities also involve at least three elementary activities."
//
// One parameterizable victim, three profiles:
//   kWuFtpd   (#1387) — remote: the SITE EXEC argument reaches *printf as
//              the format; the %n store rewrites the saved return address
//              (the rpc.statd mechanics, at the FTP command layer).
//   kSplitvt  (#2210) — local: a setuid binary formats an attacker-
//              controlled environment-derived string; same %n mechanics,
//              but the analyst's reference point is the privileged
//              pointer dereference (access validation).
//   kIcecast  (#2264) — the BOUNDARY flavour: print_client() vsprintf's
//              the string into a fixed stack buffer, so a long format
//              (mostly literal bytes) overflows it like a classic stack
//              smash — no %n needed.
//
// The same root cause (user data as format string) thus produces three
// different exploit mechanics and three different Bugtraq categories —
// the Table 1 argument replayed on a second vulnerability class.
#ifndef DFSM_APPS_FMTFAMILY_H
#define DFSM_APPS_FMTFAMILY_H

#include <string>

#include "apps/case_study.h"
#include "apps/sandbox.h"

namespace dfsm::apps {

enum class FmtProfile {
  kWuFtpd,   ///< #1387: remote %n via SITE EXEC
  kSplitvt,  ///< #2210: local %n in a setuid context
  kIcecast,  ///< #2264: expansion overflow of a fixed buffer
};

[[nodiscard]] const char* to_string(FmtProfile p) noexcept;

struct FmtFamilyChecks {
  bool no_format_directives = false;  ///< pFSM1 (input validation flavour)
  bool bounded_expansion = false;     ///< vsnprintf (icecast's actual fix)
  bool ret_consistency = false;       ///< pFSM2 (reference consistency)
};

struct FmtFamilyResult {
  bool rejected = false;
  std::string rejected_by;
  bool logged = false;
  bool ret_modified = false;
  bool mcode_executed = false;
  bool crashed = false;
  std::string detail;
};

class FmtFamilyVictim {
 public:
  /// icecast's fixed output buffer (the #2264 boundary).
  static constexpr std::size_t kOutBufferSize = 256;
  /// The %n profiles' stack buffer holding the attacker string.
  static constexpr std::size_t kFmtBufferSize = 1024;

  explicit FmtFamilyVictim(FmtProfile profile, FmtFamilyChecks checks = {});

  /// Feeds the attacker-controlled string down the profile's vulnerable
  /// formatting path.
  FmtFamilyResult handle_input(const std::string& input);

  /// The profile-appropriate exploit string.
  [[nodiscard]] std::string build_exploit() const;

  [[nodiscard]] FmtProfile profile() const noexcept { return profile_; }
  [[nodiscard]] SandboxProcess& process() noexcept { return proc_; }

  /// The Bugtraq category the paper reports for this profile — the
  /// three-way split that motivates Observation 1.
  [[nodiscard]] static const char* paper_category(FmtProfile p) noexcept;

 private:
  FmtProfile profile_;
  FmtFamilyChecks checks_;
  SandboxProcess proc_;
  memsim::Addr caller_ = 0;
};

/// CaseStudy adapter for the whole family (parameterized by profile).
[[nodiscard]] std::unique_ptr<CaseStudy> make_fmtfamily_case_study(FmtProfile p);

}  // namespace dfsm::apps

#endif  // DFSM_APPS_FMTFAMILY_H
