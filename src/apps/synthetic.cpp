#include "apps/synthetic.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfsm::apps {

namespace {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class SyntheticWideStudy final : public CaseStudy {
 public:
  explicit SyntheticWideStudy(SyntheticStudyConfig config) : config_(config) {
    if (config_.operations == 0 || config_.checks_per_operation == 0) {
      throw std::invalid_argument(
          "synthetic wide study needs >= 1 operation and >= 1 check per "
          "operation");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "Synthetic wide chain (" + std::to_string(config_.operations) +
           " ops x " + std::to_string(config_.checks_per_operation) +
           " checks)";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    std::vector<CheckSpec> out;
    out.reserve(config_.operations * config_.checks_per_operation);
    for (std::size_t op = 0; op < config_.operations; ++op) {
      for (std::size_t c = 0; c < config_.checks_per_operation; ++c) {
        out.push_back({"op" + std::to_string(op) + " pFSM" + std::to_string(c),
                       op, PfsmType::kContentAttributeCheck});
      }
    }
    return out;
  }

  [[nodiscard]] RunOutcome run_exploit(
      const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RunOutcome out;
    const std::uint64_t h = simulate_application_work(enabled);
    // Observation 1 semantics: every elementary activity is a checking
    // opportunity, so the first enabled check — in chain order — foils
    // the published exploit at its operation.
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (!enabled[i]) continue;
      const std::size_t op = i / config_.checks_per_operation;
      out.foiled = true;
      out.detail = "exploit foiled at operation " + std::to_string(op) +
                   " by check '" + "op" + std::to_string(op) + " pFSM" +
                   std::to_string(i % config_.checks_per_operation) + "'";
      return out;
    }
    out.exploited = true;
    out.detail = "hidden path traversed through all " +
                 std::to_string(config_.operations) + " operations";
    if (h == 0) out.detail += " (!)";  // keeps the work loop observable
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(
      const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RunOutcome out;
    const std::uint64_t h = simulate_application_work(enabled);
    out.service_ok = true;
    out.detail = "benign request served";
    if (h == 1) out.detail += " (!)";
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    core::ExploitChain chain{name()};
    for (std::size_t op = 0; op < config_.operations; ++op) {
      core::Operation operation{"synthetic operation " + std::to_string(op),
                                "synthetic payload"};
      for (std::size_t c = 0; c < config_.checks_per_operation; ++c) {
        Predicate spec{"0 <= x <= 100", [](const Object& o) {
                         const auto v = o.attr_int("x");
                         return v && *v >= 0 && *v <= 100;
                       }};
        Predicate impl{"x <= 100", [](const Object& o) {
                         const auto v = o.attr_int("x");
                         return v && *v <= 100;
                       }};
        operation.add(Pfsm{"op" + std::to_string(op) + " pFSM" +
                               std::to_string(c),
                           PfsmType::kContentAttributeCheck,
                           "bounds-check synthetic input x", std::move(spec),
                           std::move(impl), "consume x"});
      }
      chain.add(std::move(operation),
                core::PropagationGate{
                    op + 1 < config_.operations
                        ? "operation " + std::to_string(op) +
                              " output feeds operation " +
                              std::to_string(op + 1)
                        : "attacker-controlled consequence executes"});
    }
    return core::FsmModel{name(),
                          {0},  // synthetic: no Bugtraq report
                          "Synthetic",
                          "synthetic wide chain",
                          "synthetic consequence",
                          std::move(chain)};
  }

 private:
  /// A deterministic slug of arithmetic standing in for the application
  /// run the curated studies perform (memory writes, HTTP parsing, ...).
  /// Folded into the run so the sweep engines are measured against a
  /// realistic nonzero per-run cost; the result cannot affect outcomes
  /// (the sentinel comparisons above are never true in practice but keep
  /// the compiler from deleting the loop).
  [[nodiscard]] std::uint64_t simulate_application_work(
      const std::vector<bool>& enabled) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      h = mix(h ^ (enabled[i] ? i + 1 : 0));
    }
    for (std::size_t w = 0; w < config_.work; ++w) h = mix(h + w);
    return h;
  }

  SyntheticStudyConfig config_;
};

}  // namespace

std::unique_ptr<CaseStudy> make_synthetic_wide_study(
    const SyntheticStudyConfig& config) {
  return std::make_unique<SyntheticWideStudy>(config);
}

}  // namespace dfsm::apps
