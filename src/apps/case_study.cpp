#include "apps/case_study.h"

#include <stdexcept>

#include "apps/fmtfamily.h"
#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/rwall.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"

namespace dfsm::apps {

void require_mask(const CaseStudy& study, const std::vector<bool>& mask) {
  const std::size_t want = study.checks().size();
  if (mask.size() != want) {
    throw std::invalid_argument(study.name() + " expects " + std::to_string(want) +
                                " check flags, got " + std::to_string(mask.size()));
  }
}

std::vector<std::unique_ptr<CaseStudy>> all_case_studies() {
  std::vector<std::unique_ptr<CaseStudy>> out;
  out.push_back(make_sendmail_case_study());
  out.push_back(make_nullhttpd_case_study());
  out.push_back(make_nullhttpd_6255_case_study());
  out.push_back(make_xterm_case_study());
  out.push_back(make_rwall_case_study());
  out.push_back(make_iis_case_study());
  out.push_back(make_ghttpd_case_study());
  out.push_back(make_rpcstatd_case_study());
  out.push_back(make_fmtfamily_case_study(FmtProfile::kWuFtpd));
  out.push_back(make_fmtfamily_case_study(FmtProfile::kSplitvt));
  out.push_back(make_fmtfamily_case_study(FmtProfile::kIcecast));
  return out;
}

}  // namespace dfsm::apps
