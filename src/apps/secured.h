// secured.h — the patch-candidate view of a case study.
//
// The Lemma's second statement says securing ONE operation foils the
// whole exploit, so the natural patch-ranking loop asks, for each
// operation in turn: "what does the sweep look like if this operation's
// checks are always on?" A secured study answers exactly that: it
// exposes the SAME check vector as the base study, but every run first
// ORs the pinned operations' check bits into the mask — mask m of the
// secured study behaves like mask m|pin of the base study.
//
// The wrapper takes a DISTINCT study name (secured_study_name) on
// purpose: a study-family name identifies unchecked baseline behaviour
// for the cross-sweep memo store (analysis::SweepMemoStore), and the
// secured variant's baseline differs from the base one's, so sharing the
// name would be exactly the staleness the store's fingerprints guard
// against. The incremental re-analysis path (analysis::resweep /
// sweep_summary) never re-runs a secured study at all — it composes the
// pinned rows from the base study's caches; this wrapper exists as the
// REFERENCE those compositions are tested against.
#ifndef DFSM_APPS_SECURED_H
#define DFSM_APPS_SECURED_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "apps/case_study.h"

namespace dfsm::apps {

/// The canonical name of the secured variant: shared by the wrapper and
/// the incremental engine so their reports compare byte-for-byte.
[[nodiscard]] std::string secured_study_name(
    const CaseStudy& base, const std::vector<std::size_t>& secured_operations);

/// Wraps `base` so the checks of every operation in `secured_operations`
/// are forced on in every run. Throws std::invalid_argument when an
/// operation index has no checks in the base study. The returned study
/// keeps a reference to `base`, which must outlive it.
[[nodiscard]] std::unique_ptr<CaseStudy> make_secured_study(
    const CaseStudy& base, std::vector<std::size_t> secured_operations);

}  // namespace dfsm::apps

#endif  // DFSM_APPS_SECURED_H
