#include "apps/sendmail.h"

#include <limits>

#include "netsim/http.h"  // atoi32 / atol64 (C conversion semantics)

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

namespace {
// tTvect sits 0x800 into the data segment; each entry is one 8-byte debug
// word. The GOT lives below the data segment, so a negative index
// underflows into it — the memory geometry of the published exploit.
constexpr memsim::Addr kTTvectOffset = 0x800;
}  // namespace

SendmailTTflag::SendmailTTflag(SendmailChecks checks) : checks_(checks) {
  proc_.register_got_function("setuid");
  ttvect_ = SandboxProcess::kDataBase + kTTvectOffset;
}

SendmailResult SendmailTTflag::run_debug_command(const std::string& str_x,
                                                 const std::string& str_i) {
  SendmailResult r;

  // --- Operation 1 / elementary activity 1: get str_x, str_i; convert to
  //     signed integers (pFSM1).
  if (checks_.input_representable) {
    const auto long_x = netsim::atol64(str_x);
    const auto long_i = netsim::atol64(str_i);
    const auto fits = [](std::int64_t v) {
      return v >= std::numeric_limits<std::int32_t>::min() &&
             v <= std::numeric_limits<std::int32_t>::max();
    };
    if (!fits(long_x) || !fits(long_i)) {
      r.rejected = true;
      r.rejected_by = "pFSM1";
      r.detail = "input does not represent an int (value exceeds 2^31)";
      return r;
    }
  }
  r.x = netsim::atoi32(str_x);  // the silent wrap: the root cause
  r.i = netsim::atoi32(str_i);

  // --- Elementary activity 2: write i to tTvect[x] (pFSM2). The real
  //     implementation checks only the upper bound.
  if (r.x > static_cast<std::int32_t>(kTTvectEntries)) {
    r.rejected = true;
    r.rejected_by = "pFSM2(impl)";
    r.detail = "x > 100 rejected by the shipped check";
    return r;
  }
  if (checks_.index_full_range && r.x < 0) {
    r.rejected = true;
    r.rejected_by = "pFSM2";
    r.detail = "0 <= x <= 100 violated (negative index)";
    return r;
  }
  r.write_addr = ttvect_ + static_cast<memsim::Addr>(
                               static_cast<std::int64_t>(r.x) * 8);
  try {
    proc_.mem().write64(r.write_addr, static_cast<std::uint64_t>(
                                          static_cast<std::int64_t>(r.i)));
    r.wrote = true;
  } catch (const memsim::MemoryFault&) {
    r.crashed = true;
    r.detail = "tTvect[x] write faulted (index outside mapped memory)";
    return r;
  }

  // --- Operation 2 / elementary activity 3: call setuid() through the
  //     GOT (pFSM3).
  if (checks_.got_unchanged && !proc_.got().unchanged("setuid")) {
    r.rejected = true;
    r.rejected_by = "pFSM3";
    r.detail = "GOT entry of setuid() changed since load — call refused";
    return r;
  }
  const auto landing = proc_.cpu().call_through_got(proc_.got(), "setuid");
  proc_.cpu().count_landing(landing);
  switch (landing.kind) {
    case memsim::LandingKind::kFunction:
      r.detail = "setuid() executed normally";
      break;
    case memsim::LandingKind::kMcode:
      r.mcode_executed = true;
      r.detail = "control transferred to Mcode via corrupted addr_setuid";
      break;
    case memsim::LandingKind::kWild:
      r.crashed = true;
      r.detail = "wild jump through corrupted addr_setuid";
      break;
  }
  return r;
}

SendmailResult SendmailTTflag::run_debug_session(
    const std::vector<DebugFlag>& flags) {
  SendmailResult session;
  for (const auto& [str_x, str_i] : flags) {
    SendmailResult r;
    // Per-flag checks, identical to the word-mode path.
    if (checks_.input_representable) {
      const auto long_x = netsim::atol64(str_x);
      const auto long_i = netsim::atol64(str_i);
      const auto fits = [](std::int64_t v) {
        return v >= std::numeric_limits<std::int32_t>::min() &&
               v <= std::numeric_limits<std::int32_t>::max();
      };
      if (!fits(long_x) || !fits(long_i)) {
        session.rejected = true;
        session.rejected_by = "pFSM1";
        session.detail = "flag rejected: value exceeds 2^31";
        break;
      }
    }
    const auto x = netsim::atoi32(str_x);
    const auto i = netsim::atoi32(str_i);
    if (x > static_cast<std::int32_t>(kTTvectEntries)) {
      session.rejected = true;
      session.rejected_by = "pFSM2(impl)";
      session.detail = "flag rejected by the shipped x <= 100 check";
      break;
    }
    if (checks_.index_full_range && x < 0) {
      session.rejected = true;
      session.rejected_by = "pFSM2";
      session.detail = "flag rejected: negative index";
      break;
    }
    // u_char tTvect[100]: a ONE-BYTE store.
    const auto addr =
        ttvect_ + static_cast<memsim::Addr>(static_cast<std::int64_t>(x));
    try {
      proc_.mem().write8(addr, static_cast<std::uint8_t>(i));
      session.wrote = true;
      session.x = x;
      session.i = i;
      session.write_addr = addr;
    } catch (const memsim::MemoryFault&) {
      session.crashed = true;
      session.detail = "byte write faulted";
      return session;
    }
  }

  // setuid() runs once, whatever the flags did (Operation 2 of Figure 3).
  if (checks_.got_unchanged && !proc_.got().unchanged("setuid")) {
    session.rejected = true;
    session.rejected_by = "pFSM3";
    session.detail = "GOT entry of setuid() changed since load — call refused";
    return session;
  }
  const auto landing = proc_.cpu().call_through_got(proc_.got(), "setuid");
  proc_.cpu().count_landing(landing);
  switch (landing.kind) {
    case memsim::LandingKind::kFunction:
      if (session.detail.empty()) session.detail = "setuid() executed normally";
      break;
    case memsim::LandingKind::kMcode:
      session.mcode_executed = true;
      session.detail = "byte-composed addr_setuid transferred control to Mcode";
      break;
    case memsim::LandingKind::kWild:
      session.crashed = true;
      session.detail = "wild jump through partially overwritten addr_setuid";
      break;
  }
  return session;
}

std::vector<SendmailTTflag::DebugFlag> SendmailTTflag::build_exploit_session()
    const {
  // Compose the Mcode address over the 8 bytes of the setuid() GOT slot,
  // one "-d x.i" flag per byte, each index wrap-encoded as in the
  // published exploit.
  const memsim::Addr slot = proc_.got().slot_address("setuid");
  const std::uint64_t value = proc_.mcode();
  std::vector<DebugFlag> flags;
  for (int byte = 0; byte < 8; ++byte) {
    const auto x = static_cast<std::int64_t>(slot) + byte -
                   static_cast<std::int64_t>(ttvect_);
    const std::uint64_t wrapped = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(static_cast<std::int32_t>(x)));
    flags.emplace_back(std::to_string(wrapped),
                       std::to_string((value >> (8 * byte)) & 0xFF));
  }
  return flags;
}

SendmailTTflag::Exploit SendmailTTflag::build_exploit() const {
  // Find x with ttvect + 8x == GOT slot of setuid; encode it as the
  // positive value 2^32 + x so the int32 conversion wraps (the "signed
  // integer overflow" of the report title).
  const memsim::Addr slot = proc_.got().slot_address("setuid");
  const auto delta = static_cast<std::int64_t>(slot) -
                     static_cast<std::int64_t>(ttvect_);
  const std::int64_t x = delta / 8;  // both 8-aligned by construction
  const std::uint64_t wrapped = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(static_cast<std::int32_t>(x)));
  Exploit e;
  e.str_x = std::to_string(wrapped);  // > 2^31: pFSM1's spec rejects it
  e.str_i = std::to_string(proc_.mcode());
  return e;
}

core::FsmModel SendmailTTflag::figure3_model() {
  // Predicates are over Objects carrying the relevant attributes:
  //   activity 1 object: {"long_x": int64 from str_x}
  //   activity 2 object: {"x": int32 value}
  //   activity 3 object: {"addr_setuid_unchanged": bool}
  Predicate spec1{
      "str_x represents an integer representable as a signed int (|v| < 2^31)",
      [](const Object& o) {
        const auto v = o.attr_int("long_x");
        return v && *v >= std::numeric_limits<std::int32_t>::min() &&
               *v <= std::numeric_limits<std::int32_t>::max();
      }};
  Pfsm pfsm1 = Pfsm::unchecked(
      "pFSM1", PfsmType::kObjectTypeCheck,
      "get text strings str_x and str_i; convert to integers x and i",
      std::move(spec1), "convert str_i and str_x to integer i and x");

  Predicate spec2{"0 <= x <= 100", [](const Object& o) {
                    const auto v = o.attr_int("x");
                    return v && *v >= 0 && *v <= 100;
                  }};
  Predicate impl2{"x <= 100", [](const Object& o) {
                    const auto v = o.attr_int("x");
                    return v && *v <= 100;
                  }};
  Pfsm pfsm2{"pFSM2", PfsmType::kContentAttributeCheck, "write i to tTvect[x]",
             std::move(spec2), std::move(impl2), "tTvect[x] = i"};

  Predicate spec3{"addr_setuid unchanged since program initialization",
                  [](const Object& o) {
                    return o.attr_bool("addr_setuid_unchanged").value_or(false);
                  }};
  Pfsm pfsm3 = Pfsm::unchecked(
      "pFSM3", PfsmType::kReferenceConsistencyCheck,
      "execute code referred by addr_setuid when setuid() is called",
      std::move(spec3), "call through the GOT entry of setuid()");

  core::Operation op1{"Write debug level i to tTvect[x]", "input integers x, i"};
  op1.add(std::move(pfsm1));
  op1.add(std::move(pfsm2));
  core::Operation op2{"Manipulate the GOT entry of function setuid",
                      "addr_setuid (function pointer)"};
  op2.add(std::move(pfsm3));

  core::ExploitChain chain{"Sendmail debugging function signed integer overflow"};
  chain.add(std::move(op1),
            core::PropagationGate{".GOT entry of setuid (addr_setuid) points to Mcode"});
  chain.add(std::move(op2), core::PropagationGate{"Execute Mcode"});

  return core::FsmModel{"Sendmail Signed Integer Overflow (Figure 3)",
                        {3163},
                        "Integer Overflow",
                        "Sendmail",
                        "attacker-specified code runs with Sendmail's privileges",
                        std::move(chain)};
}

namespace {

class SendmailCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "Sendmail #3163 signed integer overflow";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: input representable as int", 0, PfsmType::kObjectTypeCheck},
        {"pFSM2: 0 <= x <= 100", 0, PfsmType::kContentAttributeCheck},
        {"pFSM3: GOT entry of setuid unchanged", 1,
         PfsmType::kReferenceConsistencyCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    SendmailTTflag app{make_checks(enabled)};
    const auto exploit = app.build_exploit();
    const auto r = app.run_debug_command(exploit.str_x, exploit.str_i);
    RunOutcome out;
    out.exploited = r.mcode_executed;
    out.foiled = r.rejected;
    out.crashed = r.crashed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    SendmailTTflag app{make_checks(enabled)};
    const auto r = app.run_debug_command("7", "1");  // -d 7.1
    RunOutcome out;
    out.service_ok = r.wrote && !r.rejected && !r.crashed && !r.mcode_executed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return SendmailTTflag::figure3_model();
  }

 private:
  static SendmailChecks make_checks(const std::vector<bool>& enabled) {
    SendmailChecks c;
    c.input_representable = enabled[0];
    c.index_full_range = enabled[1];
    c.got_unchanged = enabled[2];
    return c;
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_sendmail_case_study() {
  return std::make_unique<SendmailCaseStudy>();
}

}  // namespace dfsm::apps
