// sandbox.h — the standard sandboxed process the memory-corruption case
// studies run in: text + GOT + data + heap + stack + an attacker Mcode
// region, assembled with one fixed layout so exploit arithmetic is
// deterministic and "scouting" a twin instance predicts the target
// instance exactly.
//
// Layout note: every segment lives below 2^24 so that code addresses have
// at most three non-zero little-endian bytes. 2003-era exploits depended
// on exactly this property (a string-copy overflow can only deposit
// NUL-free bytes plus one terminating NUL), and the GHTTPD and rpc.statd
// replicas reproduce those byte-level mechanics.
#ifndef DFSM_APPS_SANDBOX_H
#define DFSM_APPS_SANDBOX_H

#include <memory>

#include "memsim/address_space.h"
#include "memsim/cpu.h"
#include "memsim/got.h"
#include "memsim/heap.h"
#include "memsim/stack.h"

namespace dfsm::apps {

/// Hardening knobs of the simulated platform (the paper's elementary-
/// activity-level defences that live below the application).
struct SandboxOptions {
  bool stack_canaries = false;   ///< StackGuard
  bool heap_safe_unlink = false; ///< free-chunk link consistency check
};

/// The standard process image.
///
/// Fixed layout (all addresses < 2^24):
///   text   0x010000  64 functions max (RX)
///   got    0x020000  64 slots (RW — non-RELRO, as in 2003)
///   data   0x030000  16 KiB globals (RW)
///   heap   0x100000  256 KiB
///   stack  0x200000  128 KiB, grows down from 0x220000
///   mcode  0x77AB01  4 KiB attacker payload region (RWX)
class SandboxProcess {
 public:
  static constexpr memsim::Addr kTextBase = 0x010000;
  static constexpr std::size_t kTextSize = 0x1000;
  static constexpr memsim::Addr kGotBase = 0x020000;
  static constexpr std::size_t kGotEntries = 64;
  static constexpr memsim::Addr kDataBase = 0x030000;
  static constexpr std::size_t kDataSize = 0x4000;
  static constexpr memsim::Addr kHeapBase = 0x100000;
  static constexpr std::size_t kHeapSize = 0x40000;
  static constexpr memsim::Addr kStackBase = 0x200000;
  static constexpr std::size_t kStackSize = 0x20000;
  static constexpr memsim::Addr kMcodeBase = 0x77AB01;  // three NUL-free low bytes
  static constexpr std::size_t kMcodeSize = 0x1000;

  explicit SandboxProcess(SandboxOptions opts = {});

  [[nodiscard]] memsim::AddressSpace& mem() noexcept { return *mem_; }
  [[nodiscard]] const memsim::AddressSpace& mem() const noexcept { return *mem_; }
  [[nodiscard]] memsim::CpuContext& cpu() noexcept { return *cpu_; }
  [[nodiscard]] memsim::Got& got() noexcept { return *got_; }
  [[nodiscard]] const memsim::Got& got() const noexcept { return *got_; }
  [[nodiscard]] memsim::Stack& stack() noexcept { return *stack_; }
  [[nodiscard]] memsim::HeapAllocator& heap() noexcept { return *heap_; }

  [[nodiscard]] memsim::Addr mcode() const noexcept { return kMcodeBase; }
  [[nodiscard]] const SandboxOptions& options() const noexcept { return opts_; }

  /// Registers a library function and binds it in the GOT ("load the
  /// function address to the memory during program initialization").
  memsim::Addr register_got_function(const std::string& name);

 private:
  SandboxOptions opts_;
  std::unique_ptr<memsim::AddressSpace> mem_;
  std::unique_ptr<memsim::CpuContext> cpu_;
  std::unique_ptr<memsim::Got> got_;
  std::unique_ptr<memsim::Stack> stack_;
  std::unique_ptr<memsim::HeapAllocator> heap_;
};

}  // namespace dfsm::apps

#endif  // DFSM_APPS_SANDBOX_H
