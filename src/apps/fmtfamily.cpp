#include "apps/fmtfamily.h"

#include "libcsim/cstring.h"
#include "libcsim/format.h"

namespace dfsm::apps {

using memsim::Addr;

const char* to_string(FmtProfile p) noexcept {
  switch (p) {
    case FmtProfile::kWuFtpd: return "wu-ftpd #1387 (SITE EXEC)";
    case FmtProfile::kSplitvt: return "splitvt #2210 (setuid)";
    case FmtProfile::kIcecast: return "icecast #2264 (print_client)";
  }
  return "?";
}

const char* FmtFamilyVictim::paper_category(FmtProfile p) noexcept {
  switch (p) {
    case FmtProfile::kWuFtpd: return "Input Validation Error";
    case FmtProfile::kSplitvt: return "Access Validation Error";
    case FmtProfile::kIcecast: return "Boundary Condition Error";
  }
  return "?";
}

FmtFamilyVictim::FmtFamilyVictim(FmtProfile profile, FmtFamilyChecks checks)
    : profile_(profile), checks_(checks), proc_(SandboxOptions{}) {
  caller_ = proc_.cpu().register_function("command_loop");
}

FmtFamilyResult FmtFamilyVictim::handle_input(const std::string& input) {
  FmtFamilyResult r;

  if (checks_.no_format_directives &&
      libcsim::FormatEngine::contains_directives(input)) {
    r.rejected = true;
    r.rejected_by = "pFSM1";
    r.detail = "input contains format directives — rejected";
    return r;
  }

  libcsim::FormatEngine fmt{proc_.mem()};

  if (profile_ == FmtProfile::kIcecast) {
    // print_client(): the attacker string IS the format, materialized
    // into a fixed 256-byte stack buffer — the BOUNDARY flavour.
    auto frame = proc_.stack().push_frame("print_client", caller_,
                                          {{"outbuf", kOutBufferSize}});
    const libcsim::ArgProvider args{proc_.mem(), {}};
    try {
      if (checks_.bounded_expansion) {
        fmt.vsnprintf(frame.locals.at("outbuf"), kOutBufferSize, input, args);
      } else {
        fmt.vsprintf(frame.locals.at("outbuf"), input, args);
      }
    } catch (const memsim::MemoryFault&) {
      r.crashed = true;
      r.ret_modified = proc_.stack().saved_return(frame) != caller_;
      r.detail = "expansion overran the stack segment";
      return r;
    }
    r.logged = true;
    const auto ret = proc_.stack().pop_frame(frame);
    r.ret_modified = ret.ret_modified;
    if (checks_.ret_consistency && ret.ret_modified) {
      r.rejected = true;
      r.rejected_by = "pFSM2";
      r.detail = "return address changed — consistency check aborts";
      return r;
    }
    const auto landing = proc_.cpu().dispatch(ret.return_address);
    proc_.cpu().count_landing(landing);
    r.mcode_executed = landing.kind == memsim::LandingKind::kMcode;
    r.crashed = landing.kind == memsim::LandingKind::kWild;
    r.detail = r.mcode_executed ? "expansion smashed the return address into Mcode"
               : r.crashed     ? "wild return address"
                               : "client line printed";
    return r;
  }

  // wu-ftpd / splitvt: the attacker string reaches *printf AS the format
  // from an on-stack buffer — the %n arbitrary-write mechanics.
  auto frame = proc_.stack().push_frame(
      profile_ == FmtProfile::kWuFtpd ? "site_exec" : "splitvt_log", caller_,
      {{"fmtbuf", kFmtBufferSize}});
  const Addr fmtbuf = frame.locals.at("fmtbuf");
  libcsim::c_strcpy(proc_.mem(), fmtbuf, input);
  const libcsim::ArgProvider args{proc_.mem(), {}, /*vararg_base=*/fmtbuf};
  (void)fmt.format_to_string(proc_.mem().read_cstring(fmtbuf), args,
                             /*materialize_cap=*/4096);
  r.logged = true;

  const auto ret = proc_.stack().pop_frame(frame);
  r.ret_modified = ret.ret_modified;
  if (checks_.ret_consistency && ret.ret_modified) {
    r.rejected = true;
    r.rejected_by = "pFSM2";
    r.detail = "return address changed — consistency check aborts";
    return r;
  }
  const auto landing = proc_.cpu().dispatch(ret.return_address);
  proc_.cpu().count_landing(landing);
  r.mcode_executed = landing.kind == memsim::LandingKind::kMcode;
  r.crashed = landing.kind == memsim::LandingKind::kWild;
  r.detail = r.mcode_executed ? "%n rewrote the return address into Mcode"
             : r.crashed     ? "wild return address"
                             : "command handled";
  return r;
}

std::string FmtFamilyVictim::build_exploit() const {
  if (profile_ == FmtProfile::kIcecast) {
    // Literal overflow: fill the out buffer, then the three NUL-free low
    // bytes of Mcode (none of which is '%').
    std::string payload(kOutBufferSize, 'A');
    const Addr mcode = proc_.mcode();
    payload.push_back(static_cast<char>(mcode & 0xFF));
    payload.push_back(static_cast<char>((mcode >> 8) & 0xFF));
    payload.push_back(static_cast<char>((mcode >> 16) & 0xFF));
    return payload;
  }
  // The %n pattern of rpc.statd: count = Mcode, pointer = ret slot,
  // planted at word offset 3 of the on-stack format buffer.
  const Addr ret_slot =
      SandboxProcess::kStackBase + SandboxProcess::kStackSize - 8;
  std::string payload = "%" + std::to_string(proc_.mcode()) + "c%4$n";
  payload.append(24 - payload.size(), 'A');
  payload.push_back(static_cast<char>(ret_slot & 0xFF));
  payload.push_back(static_cast<char>((ret_slot >> 8) & 0xFF));
  payload.push_back(static_cast<char>((ret_slot >> 16) & 0xFF));
  return payload;
}

namespace {

class FmtFamilyCaseStudy final : public CaseStudy {
 public:
  explicit FmtFamilyCaseStudy(FmtProfile p) : profile_(p) {}

  [[nodiscard]] std::string name() const override {
    return std::string("format-string family: ") + to_string(profile_);
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    if (profile_ == FmtProfile::kIcecast) {
      return {{"pFSM1: length(expansion) <= size(outbuf)", 0,
               core::PfsmType::kContentAttributeCheck},
              {"pFSM2: return address unchanged", 1,
               core::PfsmType::kReferenceConsistencyCheck}};
    }
    return {{"pFSM1: no format directives in the input", 0,
             core::PfsmType::kContentAttributeCheck},
            {"pFSM2: return address unchanged", 1,
             core::PfsmType::kReferenceConsistencyCheck}};
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    FmtFamilyVictim app{profile_, make_checks(enabled)};
    const auto r = app.handle_input(app.build_exploit());
    RunOutcome out;
    out.exploited = r.mcode_executed;
    out.foiled = r.rejected;
    out.crashed = r.crashed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    FmtFamilyVictim app{profile_, make_checks(enabled)};
    const auto r = app.handle_input(profile_ == FmtProfile::kIcecast
                                        ? "client 10.0.0.7 connected"
                                        : "ls -la /incoming");
    RunOutcome out;
    out.service_ok = r.logged && !r.rejected && !r.crashed && !r.mcode_executed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    using core::Object;
    using core::Pfsm;
    using core::PfsmType;
    using core::Predicate;
    Pfsm pfsm1 =
        profile_ == FmtProfile::kIcecast
            ? Pfsm::unchecked(
                  "pFSM1", PfsmType::kContentAttributeCheck,
                  "materialize the client line into the 256-byte buffer",
                  Predicate{"length(expansion) <= 256",
                            [](const Object& o) {
                              const auto n = o.attr_int("expansion_length");
                              return n && *n <= 256;
                            }},
                  "vsprintf(outbuf, client_fmt)")
            : Pfsm::unchecked(
                  "pFSM1", PfsmType::kContentAttributeCheck,
                  "pass the user string to *printf as the format",
                  Predicate{"the input contains no format directives",
                            [](const Object& o) {
                              const auto s = o.attr_string("input");
                              return s && !libcsim::FormatEngine::
                                              contains_directives(*s);
                            }},
                  "printf(user_input)");
    Pfsm pfsm2 = Pfsm::unchecked(
        "pFSM2", PfsmType::kReferenceConsistencyCheck,
        "return through the saved return address",
        Predicate{"the saved return address is unchanged",
                  [](const Object& o) {
                    return o.attr_bool("ret_unchanged").value_or(false);
                  }},
        "jump to the saved return address");

    core::Operation op1{"Format the attacker-influenced string", "the input"};
    op1.add(std::move(pfsm1));
    core::Operation op2{"Return from the formatting function",
                        "the saved return address"};
    op2.add(std::move(pfsm2));
    core::ExploitChain chain{name()};
    chain.add(std::move(op1),
              core::PropagationGate{"the saved return address points to Mcode"});
    chain.add(std::move(op2), core::PropagationGate{"Execute Mcode"});
    return core::FsmModel{name(),
                          {profile_ == FmtProfile::kWuFtpd   ? 1387
                           : profile_ == FmtProfile::kSplitvt ? 2210
                                                              : 2264},
                          "Format String",
                          to_string(profile_),
                          "attacker code runs in the victim process",
                          std::move(chain)};
  }

 private:
  FmtFamilyChecks make_checks(const std::vector<bool>& enabled) const {
    FmtFamilyChecks c;
    if (profile_ == FmtProfile::kIcecast) {
      c.bounded_expansion = enabled[0];
    } else {
      c.no_format_directives = enabled[0];
    }
    c.ret_consistency = enabled[1];
    return c;
  }

  FmtProfile profile_;
};

}  // namespace

std::unique_ptr<CaseStudy> make_fmtfamily_case_study(FmtProfile p) {
  return std::make_unique<FmtFamilyCaseStudy>(p);
}

}  // namespace dfsm::apps
