// synthetic.h — a size-parameterized wide exploit chain for scaling the
// Lemma sweep machinery past the paper's case studies.
//
// The curated studies top out at 6 checks; the candidate-chain space of
// chained multi-vulnerability exploits is effectively unbounded, so the
// sweep engines are benchmarked and stress-tested on synthetic chains of
// `operations x checks_per_operation` checks (k = 12/16/20 in
// bench_extensions). The study honours the paper's structure exactly:
// the published exploit is foiled by the FIRST enabled check in chain
// order (every elementary activity is a checking opportunity,
// Observation 1), benign traffic is served under every mask, and each
// run burns a deterministic slug of simulated application work so the
// sweep engines are measured against realistic per-run cost.
//
// Synthetic studies are NOT part of apps::all_case_studies(): the
// curated registry stays exactly the paper's eleven.
#ifndef DFSM_APPS_SYNTHETIC_H
#define DFSM_APPS_SYNTHETIC_H

#include <cstddef>
#include <memory>

#include "apps/case_study.h"

namespace dfsm::apps {

struct SyntheticStudyConfig {
  std::size_t operations = 4;            ///< chain length
  std::size_t checks_per_operation = 4;  ///< k = operations * checks_per_operation
  /// Simulated per-run application work (arithmetic mixing rounds) —
  /// models the cost of driving a real exploit once.
  std::size_t work = 64;
};

/// Builds the wide-chain study. Throws std::invalid_argument when
/// operations or checks_per_operation is zero.
[[nodiscard]] std::unique_ptr<CaseStudy> make_synthetic_wide_study(
    const SyntheticStudyConfig& config);

}  // namespace dfsm::apps

#endif  // DFSM_APPS_SYNTHETIC_H
