#include "apps/iis.h"

#include "netsim/decode.h"

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using fssim::Cred;
using fssim::FileSystem;
using fssim::Mode;

IisDecoder::IisDecoder(IisChecks checks) : checks_(checks) {}

FileSystem IisDecoder::initial_world() const {
  FileSystem fs;
  const Cred root = Cred::root();
  fs.mkdir(root, "/wwwroot");
  fs.mkdir(root, "/wwwroot/scripts");
  fs.create(root, "/wwwroot/scripts/hello.cgi", Mode::executable());
  fs.mkdir(root, "/winnt");
  fs.mkdir(root, "/winnt/system32");
  fs.create(root, "/winnt/system32/cmd.exe", Mode::executable());
  return fs;
}

IisResult IisDecoder::handle_cgi_request(FileSystem& fs,
                                         const std::string& encoded_filepath) const {
  IisResult r;

  // First decoding pass.
  r.decoded_once = netsim::percent_decode(encoded_filepath);

  // The shipped security check: reject "../" after the FIRST decode.
  if (netsim::contains_dotdot(r.decoded_once)) {
    r.rejected = true;
    r.rejected_by = "traversal check (after first decode)";
    r.detail = "filename contains ../ after first decoding — request rejected";
    return r;
  }

  // The superfluous second decoding pass (the bug).
  std::string effective = r.decoded_once;
  if (!checks_.single_decode) {
    r.decoded_twice = netsim::percent_decode(r.decoded_once);
    effective = r.decoded_twice;
    if (checks_.recheck_after_decode && netsim::contains_dotdot(effective)) {
      r.rejected = true;
      r.rejected_by = "traversal re-check (after second decode)";
      r.detail = "filename contains ../ after second decoding — request rejected";
      return r;
    }
  }

  // Resolve relative to /wwwroot/scripts and execute.
  r.resolved_path =
      netsim::lexically_normalize(std::string(kScriptsRoot) + "/" + effective);
  r.outside_scripts = !netsim::stays_under(kScriptsRoot, effective);
  auto st = fs.stat(r.resolved_path);
  if (!st.ok()) {
    r.detail = "target " + r.resolved_path + " not found";
    return r;
  }
  r.executed = true;
  r.detail = "executed " + r.resolved_path +
             (r.outside_scripts ? " (OUTSIDE the scripts directory)" : "");
  return r;
}

std::string IisDecoder::nimda_payload() {
  // "..%252f" -> (1st decode) "..%2f" -> (2nd decode) "../"
  return "..%252f..%252fwinnt/system32/cmd.exe";
}

core::FsmModel IisDecoder::figure7_model() {
  // Spec: the executed target resides under /wwwroot/scripts — equivalent
  // (paths being scripts-relative) to "the fully decoded path contains no
  // ../". Impl: "no ../ after the FIRST decoding" — "..%252f" is accepted.
  Predicate spec1{"the target file resides in the directory /wwwroot/scripts/",
                  [](const Object& o) {
                    const auto p = o.attr_string("fully_decoded");
                    return p && !netsim::contains_dotdot(*p);
                  }};
  Predicate impl1{
      "filename without \"../\" after first decoding (\"..%252f\" accepted)",
      [](const Object& o) {
        const auto p = o.attr_string("once_decoded");
        return p && !netsim::contains_dotdot(*p);
      }};
  Pfsm pfsm1{"pFSM1", PfsmType::kContentAttributeCheck,
             "get the filename of a CGI program; decode and check it",
             std::move(spec1), std::move(impl1),
             "decode filename a second time and execute the target CGI program"};

  core::Operation op1{"Decode and validate the CGI filename",
                      "the requested CGI filepath"};
  op1.add(std::move(pfsm1));

  core::ExploitChain chain{"IIS superfluous filename decoding"};
  chain.add(std::move(op1),
            core::PropagationGate{
                "execute arbitrary program, even outside /wwwroot/scripts/, "
                "because \"../\" appears after the second decoding"});

  return core::FsmModel{"IIS Filename Superfluous Decoding (Figure 7)",
                        {2708},
                        "Path Traversal",
                        "Microsoft IIS",
                        "arbitrary program execution outside the CGI root "
                        "(exploited by the Nimda worm)",
                        std::move(chain)};
}

namespace {

class IisCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "IIS #2708 superfluous filename decoding";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"decode exactly once (remove the superfluous pass)", 0,
         PfsmType::kContentAttributeCheck},
        {"re-check for ../ after the second decode", 0,
         PfsmType::kContentAttributeCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    IisDecoder app{IisChecks{enabled[0], enabled[1]}};
    auto fs = app.initial_world();
    const auto r = app.handle_cgi_request(fs, IisDecoder::nimda_payload());
    RunOutcome out;
    out.exploited = r.executed && r.outside_scripts;
    out.foiled = r.rejected || (!out.exploited && !r.executed);
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    IisDecoder app{IisChecks{enabled[0], enabled[1]}};
    auto fs = app.initial_world();
    const auto r = app.handle_cgi_request(fs, "hello.cgi");
    RunOutcome out;
    out.service_ok = r.executed && !r.outside_scripts;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return IisDecoder::figure7_model();
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_iis_case_study() {
  return std::make_unique<IisCaseStudy>();
}

}  // namespace dfsm::apps
