#include "apps/nullhttpd.h"

#include <cstring>

#include "libcsim/io.h"
#include "memsim/heap.h"
#include "netsim/http.h"

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using memsim::Addr;
using memsim::ChunkLayout;
using memsim::HeapError;
using memsim::MemoryFault;

NullHttpd::NullHttpd(NullHttpdChecks checks)
    : checks_(checks),
      proc_(SandboxOptions{/*stack_canaries=*/false,
                           /*heap_safe_unlink=*/checks.heap_safe_unlink}) {
  proc_.register_got_function("free");
  proc_.register_got_function("calloc");
  proc_.register_got_function("recv");
}

namespace {

/// The size calloc is asked for, with the original's C arithmetic:
/// contentLen+1024 computed as int, then converted to size_t (so very
/// negative contentLen becomes a huge request that fails).
std::size_t calloc_request(std::int32_t content_len) {
  const std::int32_t want = content_len + 1024;  // may be negative
  return static_cast<std::size_t>(static_cast<std::int64_t>(want));
}

}  // namespace

NullHttpdResult NullHttpd::handle_post(std::int32_t content_len,
                                       const std::string& body) {
  NullHttpdResult r;
  r.content_len = content_len;

  netsim::ByteStream sock;
  sock.send(body);
  sock.close_write();

  auto& heap = proc_.heap();
  auto& mem = proc_.mem();
  r.events.push_back("accept");

  // Per-connection allocation (stays live across ReadPOSTData, so the
  // chunk after PostData is the free top — "chunk B" of Figure 4).
  Addr conn = 0;
  try {
    conn = heap.malloc(512);
    r.events.push_back("malloc");
  } catch (const HeapError& e) {
    r.crashed = true;
    r.detail = e.what();
    return r;
  }

  // pFSM1: the v0.5.1 fix — "imposing the appropriate check to block a
  // negative contentLen value before calling the function ReadPOSTData".
  if (checks_.content_len_nonneg && content_len < 0) {
    r.rejected = true;
    r.rejected_by = "pFSM1";
    r.detail = "negative Content-Length rejected (v0.5.1 check)";
    heap.free(conn);
    return r;
  }

  // --- ReadPOSTData (Figure 4b), bug-for-bug. ---
  Addr postdata = 0;
  try {
    postdata = heap.calloc(calloc_request(content_len), 1);  // line 1
    r.events.push_back("calloc");
  } catch (const HeapError& e) {
    r.crashed = true;
    r.detail = std::string("calloc failed: ") + e.what();
    heap.free(conn);
    return r;
  }
  r.postdata_usable = heap.usable_size(postdata);

  Addr p = postdata;  // line 2: pPostData = PostData
  std::int64_t x = 0;
  int rc = 0;
  do {
    std::size_t cap = 1024;
    if (checks_.bounded_read_loop) {
      // pFSM2 as implemented by the fix: never read past the buffer
      // (boundary-checked read) and use '&&' in the loop condition.
      const auto used = static_cast<std::size_t>(x);
      const std::size_t remaining =
          r.postdata_usable > used ? r.postdata_usable - used : 0;
      cap = std::min<std::size_t>(1024, remaining);
      if (cap == 0) break;  // buffer full
    }
    try {
      rc = libcsim::c_recv(mem, sock, p, cap);  // line 4
      r.events.push_back("recv");
    } catch (const MemoryFault& e) {
      r.crashed = true;
      r.detail = std::string("recv write faulted: ") + e.what();
      return r;
    }
    if (rc == -1) {  // lines 5-8
      r.detail = "socket error; connection closed";
      return r;
    }
    if (rc == 0) break;  // orderly EOF (the real server would block here)
    p += static_cast<Addr>(rc);  // line 9
    x += rc;                     // line 10
  } while (checks_.bounded_read_loop
               ? (rc == 1024 && x < content_len)    // the '&&' fix
               : (rc == 1024 || x < content_len));  // line 11: the '||' bug

  r.bytes_read = static_cast<std::size_t>(x);
  r.heap_overflowed = r.bytes_read > r.postdata_usable;

  // --- Request processed; release buffers. Every free goes through the
  //     GOT, as library calls do. ---
  auto call_free = [&](Addr ptr) -> bool {
    if (checks_.got_free_unchanged && !proc_.got().unchanged("free")) {
      r.rejected = true;
      r.rejected_by = "pFSM4";
      r.detail = "GOT entry of free() changed since load — call refused";
      return false;
    }
    const auto landing = proc_.cpu().call_through_got(proc_.got(), "free");
    proc_.cpu().count_landing(landing);
    if (landing.kind == memsim::LandingKind::kMcode) {
      r.mcode_executed = true;
      // The payload's own behaviour, as a trace-level observer sees it.
      r.events.push_back("mcode:execve");
      r.events.push_back("mcode:dup2");
      r.detail = "free() call transferred control to Mcode via corrupted addr_free";
      return false;
    }
    if (landing.kind == memsim::LandingKind::kWild) {
      r.crashed = true;
      r.detail = "wild jump through corrupted addr_free";
      return false;
    }
    try {
      heap.free(ptr);
      r.events.push_back("free");
    } catch (const HeapError& e) {
      const bool safe_unlink_hit =
          std::string(e.what()).find("safe-unlink") != std::string::npos;
      if (checks_.heap_safe_unlink && safe_unlink_hit) {
        r.rejected = true;
        r.rejected_by = "pFSM3";
      } else {
        r.crashed = true;
      }
      r.detail = e.what();
      return false;
    } catch (const MemoryFault& e) {
      r.crashed = true;
      r.detail = std::string("free() faulted on corrupt metadata: ") + e.what();
      return false;
    }
    return true;
  };

  // Operation 2: free(PostData) — the unlink of corrupted chunk B fires
  // here. Operation 3: the next free() goes through the (possibly
  // corrupted) GOT.
  if (!call_free(postdata)) return r;
  if (!call_free(conn)) return r;

  r.events.push_back("respond");
  r.served = true;
  if (r.detail.empty()) r.detail = "request served";
  return r;
}

NullHttpdResult NullHttpd::handle_raw(const std::string& raw_request) {
  std::size_t consumed = 0;
  const auto head = netsim::parse_head(raw_request, &consumed);
  if (!head) {
    NullHttpdResult r;
    r.rejected = true;
    r.rejected_by = "parser";
    r.detail = "400 Bad Request: malformed head";
    return r;
  }
  if (head->method != "POST") {
    NullHttpdResult r;
    r.rejected = true;
    r.rejected_by = "parser";
    r.detail = "only POST reaches ReadPOSTData";
    return r;
  }
  // Content-Length parsed with the original's atoi: "4294958848" wraps.
  const std::int32_t cl = head->content_length().value_or(0);
  return handle_post(cl, raw_request.substr(consumed));
}

std::string NullHttpd::build_exploit_request(const ScoutInfo& info,
                                             std::int32_t content_len) {
  netsim::HttpRequest req;
  req.method = "POST";
  req.path = "/cgi-bin/form";
  req.headers["Content-Length"] = std::to_string(content_len);
  req.headers["Host"] = "victim";
  const auto body = build_overflow_body(info);
  return netsim::serialize(req, std::string(body.begin(), body.end()));
}

NullHttpd::ScoutInfo NullHttpd::scout(std::int32_t content_len,
                                      NullHttpdChecks checks) {
  NullHttpd twin{checks};
  auto& heap = twin.proc_.heap();
  auto& mem = twin.proc_.mem();
  // Mirror handle_post's allocation sequence exactly.
  (void)heap.malloc(512);                               // conn
  const Addr postdata = heap.calloc(calloc_request(content_len), 1);

  ScoutInfo info;
  info.postdata_user = postdata;
  info.postdata_usable = heap.usable_size(postdata);
  info.following_chunk = heap.following_free_chunk(postdata);
  if (info.following_chunk != 0) {
    info.b_prev_size = mem.read64(info.following_chunk);
    info.b_size_field = mem.read64(info.following_chunk + 8);
  }
  info.got_free_slot = twin.proc_.got().slot_address("free");
  info.mcode = twin.proc_.mcode();
  return info;
}

std::vector<std::uint8_t> NullHttpd::build_overflow_body(const ScoutInfo& info) {
  std::vector<std::uint8_t> body(info.postdata_usable, 'A');
  auto push64 = [&body](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  // Preserve B's header so the allocator's size walk still works, then
  // plant the poisoned links (paper footnote 7):
  //   B->fd = &addr_free - (offset of field bk);  B->bk = Mcode
  push64(info.b_prev_size);
  push64(info.b_size_field);
  push64(info.got_free_slot - ChunkLayout::kBkOffset);
  push64(info.mcode);
  return body;
}

core::FsmModel NullHttpd::figure4_model() {
  Predicate spec1{"contentLen >= 0", [](const Object& o) {
                    const auto v = o.attr_int("contentLen");
                    return v && *v >= 0;
                  }};
  Pfsm pfsm1 = Pfsm::unchecked(
      "pFSM1", PfsmType::kContentAttributeCheck,
      "get contentLen from the request head",
      std::move(spec1), "calloc PostData[1024+contentLen]");

  Predicate spec2{"length(input) <= size(PostData)", [](const Object& o) {
                    const auto len = o.attr_int("input_length");
                    const auto size = o.attr_int("buffer_size");
                    return len && size && *len <= *size;
                  }};
  Pfsm pfsm2 = Pfsm::unchecked(
      "pFSM2", PfsmType::kContentAttributeCheck,
      "read the POST body from the socket into PostData",
      std::move(spec2), "copy input into PostData");

  Predicate spec3{"free-chunk links (B->fd, B->bk) unchanged",
                  [](const Object& o) {
                    return o.attr_bool("links_unchanged").value_or(false);
                  }};
  Pfsm pfsm3 = Pfsm::unchecked(
      "pFSM3", PfsmType::kReferenceConsistencyCheck,
      "free the buffer PostData (unlink of the following free chunk)",
      std::move(spec3), "execute B->fd->bk = B->bk and B->bk->fd = B->fd");

  Predicate spec4{"addr_free unchanged since program initialization",
                  [](const Object& o) {
                    return o.attr_bool("addr_free_unchanged").value_or(false);
                  }};
  Pfsm pfsm4 = Pfsm::unchecked(
      "pFSM4", PfsmType::kReferenceConsistencyCheck,
      "execute addr_free when function free is called",
      std::move(spec4), "call through the GOT entry of free()");

  core::Operation op1{"Read postdata from socket to an allocated buffer PostData",
                      "contentLen and input (the POST body)"};
  op1.add(std::move(pfsm1));
  op1.add(std::move(pfsm2));
  core::Operation op2{"Allocate and free the buffer PostData",
                      "free chunk B following PostData"};
  op2.add(std::move(pfsm3));
  core::Operation op3{"Manipulate the GOT entry of function free",
                      "addr_free (function pointer)"};
  op3.add(std::move(pfsm4));

  core::ExploitChain chain{"NULL HTTPD heap overflow"};
  chain.add(std::move(op1),
            core::PropagationGate{"B->fd = &addr_free - offsetof(bk); B->bk = Mcode"});
  chain.add(std::move(op2),
            core::PropagationGate{".GOT entry of function free points to Mcode"});
  chain.add(std::move(op3), core::PropagationGate{"Mcode is executed"});

  return core::FsmModel{"NULL HTTPD Heap Overflow (Figure 4)",
                        {5774, 6255},
                        "Heap Overflow",
                        "Null HTTPD 0.5",
                        "attacker writes an arbitrary value to an arbitrary "
                        "location and redirects free() to Mcode",
                        std::move(chain)};
}

namespace {

class NullHttpdCaseStudy final : public CaseStudy {
 public:
  explicit NullHttpdCaseStudy(bool use_6255_exploit)
      : use_6255_(use_6255_exploit) {}

  [[nodiscard]] std::string name() const override {
    return use_6255_ ? "NULL HTTPD #6255 recv-loop heap overflow"
                     : "NULL HTTPD #5774 negative Content-Length heap overflow";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: contentLen >= 0", 0, PfsmType::kContentAttributeCheck},
        {"pFSM2: length(input) <= size(PostData)", 0,
         PfsmType::kContentAttributeCheck},
        {"pFSM3: free-chunk links unchanged", 1,
         PfsmType::kReferenceConsistencyCheck},
        {"pFSM4: GOT entry of free unchanged", 2,
         PfsmType::kReferenceConsistencyCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    const NullHttpdChecks checks = make_checks(enabled);
    // #5774 pairs a negative contentLen with a >=1024-byte body; #6255
    // declares a truthful contentLen of 0 and oversends.
    const std::int32_t cl = use_6255_ ? 0 : -800;
    const auto info = NullHttpd::scout(cl, checks);
    const auto body = NullHttpd::build_overflow_body(info);
    NullHttpd app{checks};
    const auto r = app.handle_post(cl, std::string(body.begin(), body.end()));
    RunOutcome out;
    out.exploited = r.mcode_executed;
    out.foiled = r.rejected;
    out.crashed = r.crashed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    NullHttpd app{make_checks(enabled)};
    const std::string body(300, 'b');
    const auto r = app.handle_post(static_cast<std::int32_t>(body.size()), body);
    RunOutcome out;
    out.service_ok = r.served && !r.heap_overflowed && !r.mcode_executed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return NullHttpd::figure4_model();
  }

 private:
  static NullHttpdChecks make_checks(const std::vector<bool>& enabled) {
    NullHttpdChecks c;
    c.content_len_nonneg = enabled[0];
    c.bounded_read_loop = enabled[1];
    c.heap_safe_unlink = enabled[2];
    c.got_free_unchanged = enabled[3];
    return c;
  }

  bool use_6255_;
};

}  // namespace

std::unique_ptr<CaseStudy> make_nullhttpd_case_study() {
  return std::make_unique<NullHttpdCaseStudy>(/*use_6255_exploit=*/false);
}

std::unique_ptr<CaseStudy> make_nullhttpd_6255_case_study() {
  return std::make_unique<NullHttpdCaseStudy>(/*use_6255_exploit=*/true);
}

}  // namespace dfsm::apps
