#include "apps/sandbox.h"

namespace dfsm::apps {

SandboxProcess::SandboxProcess(SandboxOptions opts) : opts_(opts) {
  mem_ = std::make_unique<memsim::AddressSpace>();
  cpu_ = std::make_unique<memsim::CpuContext>(*mem_, kTextBase, kTextSize);
  got_ = std::make_unique<memsim::Got>(*mem_, kGotBase, kGotEntries);
  mem_->map("data", kDataBase, kDataSize, memsim::Perm::kRW);
  stack_ = std::make_unique<memsim::Stack>(*mem_, kStackBase, kStackSize,
                                           opts_.stack_canaries);
  heap_ = std::make_unique<memsim::HeapAllocator>(*mem_, kHeapBase, kHeapSize,
                                                  opts_.heap_safe_unlink);
  cpu_->plant_mcode(kMcodeBase, kMcodeSize);
}

memsim::Addr SandboxProcess::register_got_function(const std::string& name) {
  const memsim::Addr entry = cpu_->register_function(name);
  got_->bind(name, entry);
  return entry;
}

}  // namespace dfsm::apps
