// rpcstatd.h — replica of the rpc.statd remote format string
// vulnerability, Bugtraq #1480 (paper §5.5 reference [21], Table 2).
//
// statd logs a caller-supplied filename via syslog() with the user string
// as the FORMAT argument. The string sits in a stack buffer, so printf's
// argument walk reaches attacker bytes: a "%<pad>c%<k>$n" payload makes
// the engine's running output count equal the Mcode address and stores it
// through a pointer the attacker planted in the same buffer — overwriting
// the saved return address without ever touching the canary (which is why
// StackGuard does not stop format-string attacks, and why the paper's
// pFSM2 here is a *return-address consistency* check, not a canary).
//
// The two pFSMs (Table 2):
//   pFSM1 (Content/Attribute)      does the input contain format
//                                  directives (%n, %d, ...)? [impl: none]
//   pFSM2 (Reference Consistency)  return address unchanged? [split-stack]
#ifndef DFSM_APPS_RPCSTATD_H
#define DFSM_APPS_RPCSTATD_H

#include <string>

#include "apps/case_study.h"
#include "apps/sandbox.h"

namespace dfsm::apps {

struct RpcStatdChecks {
  bool no_format_directives = false;  ///< pFSM1
  bool ret_consistency = false;       ///< pFSM2 (split-stack / shadow stack)
};

struct RpcStatdResult {
  bool rejected = false;
  std::string rejected_by;
  bool logged = false;
  std::size_t n_stores = 0;     ///< %n writes the engine performed
  bool ret_modified = false;
  bool canary_intact = true;    ///< stays true even under attack (see above)
  bool mcode_executed = false;
  bool crashed = false;
  std::string detail;
};

class RpcStatd {
 public:
  static constexpr std::size_t kLogBufferSize = 1024;

  explicit RpcStatd(RpcStatdChecks checks = {}, bool with_canary = true);

  /// Handles one SM_MON request whose "filename" is attacker-controlled;
  /// the daemon logs it via the vulnerable syslog path.
  RpcStatdResult handle_mon_request(const std::string& filename);

  [[nodiscard]] SandboxProcess& process() noexcept { return proc_; }

  /// Builds the %n exploit for this deterministic layout:
  /// "%<mcode>c%4$n" + padding + the 3 NUL-free low bytes of the saved-
  /// return-address slot.
  [[nodiscard]] std::string build_exploit() const;

  /// The saved-return-address slot of the logging frame (deterministic:
  /// first frame on the stack).
  [[nodiscard]] memsim::Addr ret_slot() const noexcept;

  /// rpc.statd's pFSM pair as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel statd_model();

 private:
  RpcStatdChecks checks_;
  SandboxProcess proc_;
  memsim::Addr svc_run_ = 0;
};

/// CaseStudy adapter (checks: pFSM1 directives, pFSM2 ret consistency).
[[nodiscard]] std::unique_ptr<CaseStudy> make_rpcstatd_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_RPCSTATD_H
