#include "apps/rpcstatd.h"

#include "libcsim/cstring.h"
#include "libcsim/format.h"

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using memsim::Addr;

RpcStatd::RpcStatd(RpcStatdChecks checks, bool with_canary)
    : checks_(checks),
      proc_(SandboxOptions{/*stack_canaries=*/with_canary,
                           /*heap_safe_unlink=*/false}) {
  svc_run_ = proc_.cpu().register_function("svc_run");
}

Addr RpcStatd::ret_slot() const noexcept {
  // First frame pushed on a fresh stack: the ret slot is the top 8 bytes.
  return SandboxProcess::kStackBase + SandboxProcess::kStackSize - 8;
}

RpcStatdResult RpcStatd::handle_mon_request(const std::string& filename) {
  RpcStatdResult r;

  // pFSM1: "the system should check whether format directives are not
  // embedded in the input".
  if (checks_.no_format_directives &&
      libcsim::FormatEngine::contains_directives(filename)) {
    r.rejected = true;
    r.rejected_by = "pFSM1";
    r.detail = "filename contains format directives — request refused";
    return r;
  }

  auto frame = proc_.stack().push_frame(
      "statd_log", svc_run_, {{"logbuf", kLogBufferSize}});
  const Addr logbuf = frame.locals.at("logbuf");

  // The daemon builds its log line in a stack buffer...
  libcsim::c_strcpy(proc_.mem(), logbuf, filename);

  // ...and passes that buffer to syslog() AS THE FORMAT STRING. printf's
  // argument walk starts in the caller frame region — i.e. inside logbuf
  // itself, where the attacker's bytes are.
  libcsim::FormatEngine fmt{proc_.mem()};
  const libcsim::ArgProvider args{proc_.mem(), {}, /*vararg_base=*/logbuf};
  const std::string fmt_string = proc_.mem().read_cstring(logbuf);
  const auto res = fmt.format_to_string(fmt_string, args, /*materialize_cap=*/4096);
  r.n_stores = res.n_stores;
  r.logged = true;

  const auto ret = proc_.stack().pop_frame(frame);
  r.ret_modified = ret.ret_modified;
  r.canary_intact = ret.canary_intact;  // %n skips the canary entirely
  if (checks_.ret_consistency && ret.ret_modified) {
    r.rejected = true;
    r.rejected_by = "pFSM2";
    r.detail = "saved return address changed — split-stack consistency check "
               "aborts the return";
    return r;
  }
  const auto landing = proc_.cpu().dispatch(ret.return_address);
  proc_.cpu().count_landing(landing);
  switch (landing.kind) {
    case memsim::LandingKind::kFunction:
      r.detail = "statd_log returned to " + landing.function;
      break;
    case memsim::LandingKind::kMcode:
      r.mcode_executed = true;
      r.detail = "return address rewritten by %n — control transferred to Mcode";
      break;
    case memsim::LandingKind::kWild:
      r.crashed = true;
      r.detail = "wild return address (SIGSEGV)";
      break;
  }
  return r;
}

std::string RpcStatd::build_exploit() const {
  // Layout: [directives][pad 'A' to offset 24][3 low bytes of ret slot].
  // %<mcode>c makes the output count equal the Mcode address; %4$n stores
  // that count through argument word 3 = read64(logbuf + 24) = ret slot
  // (its bytes 3..7 are the zeros the strcpy terminator and the fresh
  // stack provide).
  const Addr target_value = proc_.mcode();
  const Addr slot = ret_slot();
  std::string payload = "%" + std::to_string(target_value) + "c%4$n";
  if (payload.size() > 24) {
    throw std::logic_error("statd exploit directives exceed the pad area");
  }
  payload.append(24 - payload.size(), 'A');
  payload.push_back(static_cast<char>(slot & 0xFF));
  payload.push_back(static_cast<char>((slot >> 8) & 0xFF));
  payload.push_back(static_cast<char>((slot >> 16) & 0xFF));
  return payload;
}

core::FsmModel RpcStatd::statd_model() {
  Predicate spec1{
      "the filename contains no format directives (e.g. %n, %d)",
      [](const Object& o) {
        const auto s = o.attr_string("filename");
        return s && !libcsim::FormatEngine::contains_directives(*s);
      }};
  Pfsm pfsm1 = Pfsm::unchecked(
      "pFSM1", PfsmType::kContentAttributeCheck,
      "get the filename from the SM_MON request and log it",
      std::move(spec1), "syslog(LOG_ERR, buf) with user data as the format");

  Predicate spec2{"the saved return address is unchanged", [](const Object& o) {
                    return o.attr_bool("ret_unchanged").value_or(false);
                  }};
  Pfsm pfsm2 = Pfsm::unchecked(
      "pFSM2", PfsmType::kReferenceConsistencyCheck,
      "return from the logging function",
      std::move(spec2), "jump to the saved return address");

  core::Operation op1{"Log the caller-supplied filename", "the filename string"};
  op1.add(std::move(pfsm1));
  core::Operation op2{"Return from the logging function",
                      "the saved return address"};
  op2.add(std::move(pfsm2));

  core::ExploitChain chain{"rpc.statd remote format string"};
  chain.add(std::move(op1),
            core::PropagationGate{
                "%n stores the attacker-chosen count over the saved return address"});
  chain.add(std::move(op2), core::PropagationGate{"Execute Mcode"});

  return core::FsmModel{"rpc.statd Remote Format String ([21])",
                        {1480},
                        "Format String",
                        "rpc.statd (Multiple Linux Vendors)",
                        "remote root: Mcode runs in the statd process",
                        std::move(chain)};
}

namespace {

class RpcStatdCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "rpc.statd #1480 remote format string";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: no format directives in the input", 0,
         PfsmType::kContentAttributeCheck},
        {"pFSM2: return address unchanged (split-stack)", 1,
         PfsmType::kReferenceConsistencyCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RpcStatd app{RpcStatdChecks{enabled[0], enabled[1]}};
    const auto r = app.handle_mon_request(app.build_exploit());
    RunOutcome out;
    out.exploited = r.mcode_executed;
    out.foiled = r.rejected;
    out.crashed = r.crashed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RpcStatd app{RpcStatdChecks{enabled[0], enabled[1]}};
    const auto r = app.handle_mon_request("/var/lib/nfs/state");
    RunOutcome out;
    out.service_ok = r.logged && !r.rejected && !r.crashed && !r.mcode_executed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return RpcStatd::statd_model();
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_rpcstatd_case_study() {
  return std::make_unique<RpcStatdCaseStudy>();
}

}  // namespace dfsm::apps
