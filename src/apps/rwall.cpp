#include "apps/rwall.h"

#include <sstream>

#include "netsim/decode.h"  // lexically_normalize for /dev/../etc/passwd

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using fssim::Cred;
using fssim::FileSystem;
using fssim::Mode;
using fssim::NodeType;
using fssim::OpenFlags;

RwallDaemon::RwallDaemon(RwallChecks checks) : checks_(checks) {}

FileSystem RwallDaemon::initial_world() const {
  FileSystem fs;
  const Cred root = Cred::root();
  fs.mkdir(root, "/etc");
  fs.mkdir(root, "/dev");
  fs.mkdir(root, "/dev/pts");
  fs.create(root, kPasswd, Mode::private_file());
  {
    auto h = fs.open(root, kPasswd, OpenFlags{.write = true});
    fs.write(h.value, "root:x:0:0:root:/root:/bin/sh\n");
  }
  fs.create(root, kTerminal, Mode::world_writable(), NodeType::kTerminal);
  // The root cause of pFSM1's hidden path: the utmp mode bit.
  fs.create(root, kUtmp,
            checks_.utmp_root_only ? Mode::file_default() : Mode::world_writable());
  {
    auto h = fs.open(root, kUtmp, OpenFlags{.write = true});
    fs.write(h.value, "pts/25\n");
  }
  return fs;
}

void RwallDaemon::wall(FileSystem& fs, const std::string& message,
                       RwallResult& r) const {
  const Cred root = Cred::root();
  auto utmp = fs.read(kUtmp);
  if (!utmp.ok()) {
    r.detail = "cannot read /etc/utmp";
    return;
  }
  std::istringstream lines{utmp.value};
  std::string entry;
  while (std::getline(lines, entry)) {
    if (entry.empty()) continue;
    // utmp names terminals relative to /dev — "../etc/passwd" escapes it.
    const std::string path = netsim::lexically_normalize("/dev/" + entry);
    if (checks_.terminal_type_check) {
      auto st = fs.stat(path);
      if (!st.ok() || st.value.type != NodeType::kTerminal) {
        r.skipped.push_back(path);  // pFSM2: IMPL_REJ — non-terminal refused
        continue;
      }
    }
    auto h = fs.open(root, path, OpenFlags{.write = true, .append = true});
    if (!h.ok()) continue;
    fs.write(h.value, message);
    r.wrote_to.push_back(path);
  }
}

RwallResult RwallDaemon::run_attack(FileSystem& fs, const std::string& entry,
                                    const std::string& message) const {
  RwallResult r;
  const Cred attacker = Cred::user_named("mallory");

  // Step 1: the malicious user edits /etc/utmp (possible only because the
  // write permission "is set on" — pFSM1's hidden path).
  auto h = fs.open(attacker, kUtmp, OpenFlags{.write = true, .append = true});
  if (!h.ok()) {
    r.attacker_rejected = true;
    r.detail = "EACCES: /etc/utmp is not writable by a regular user (pFSM1)";
    return r;
  }
  fs.write(h.value, entry + "\n");
  r.utmp_tampered = true;

  // Step 2: "rwall hostname < newpasswordfile" — the daemon writes the
  // message to every listed entry.
  wall(fs, message, r);

  auto pw = fs.read(kPasswd);
  r.passwd_corrupted = pw.ok() && pw.value.find(message) != std::string::npos;
  r.detail = r.passwd_corrupted
                 ? "rwalld wrote the attacker's message into /etc/passwd"
                 : "the attack did not reach /etc/passwd";
  return r;
}

RwallResult RwallDaemon::run_benign(FileSystem& fs, const std::string& message) const {
  RwallResult r;
  wall(fs, message, r);
  auto term = fs.read(kTerminal);
  r.detail = (term.ok() && term.value.find(message) != std::string::npos)
                 ? "message delivered to the terminal"
                 : "message not delivered";
  return r;
}

std::vector<fssim::CtxStep> RwallDaemon::victim_steps(
    std::size_t window_steps) const {
  using fssim::CtxStep;
  using fssim::RaceContext;
  const Cred root = Cred::root();
  const bool type_check = checks_.terminal_type_check;

  std::vector<CtxStep> steps;
  steps.push_back(CtxStep{
      "rwalld: read(\"/etc/utmp\") snapshot",
      [](FileSystem& fs, RaceContext& ctx) {
        auto utmp = fs.read(RwallDaemon::kUtmp);
        if (!utmp.ok()) {
          ctx.aborted = true;
          return;
        }
        ctx.strs["utmp"] = utmp.value;
      }});
  for (std::size_t i = 0; i < window_steps; ++i) {
    steps.push_back(CtxStep{"rwalld: fan-out bookkeeping",
                            [](FileSystem&, RaceContext&) {}});
  }
  steps.push_back(CtxStep{
      "rwalld: write message to every snapshotted entry",
      [root, type_check](FileSystem& fs, RaceContext& ctx) {
        if (ctx.aborted) return;
        std::istringstream lines{ctx.strs["utmp"]};
        std::string entry;
        while (std::getline(lines, entry)) {
          if (entry.empty()) continue;
          const std::string path =
              netsim::lexically_normalize("/dev/" + entry);
          if (type_check) {
            auto st = fs.stat(path);
            if (!st.ok() || st.value.type != NodeType::kTerminal) continue;
          }
          auto h = fs.open(root, path, OpenFlags{.write = true, .append = true});
          if (!h.ok()) continue;
          fs.write(h.value, RwallDaemon::kRaceMessage);
        }
      }});
  return steps;
}

std::vector<fssim::CtxStep> RwallDaemon::attacker_steps() const {
  using fssim::CtxStep;
  using fssim::RaceContext;
  const Cred attacker = Cred::user_named("mallory");
  return {
      CtxStep{"mallory: open(\"/etc/utmp\", O_WRONLY|O_APPEND)",
              [attacker](FileSystem& fs, RaceContext& ctx) {
                auto h = fs.open(attacker, RwallDaemon::kUtmp,
                                 OpenFlags{.write = true, .append = true});
                if (!h.ok()) {
                  ctx.ints["rejected"] = 1;  // pFSM1 held: EACCES
                  return;
                }
                ctx.file = h.value;
              }},
      CtxStep{"mallory: write(\"../etc/passwd\\n\")",
              [](FileSystem& fs, RaceContext& ctx) {
                if (ctx.ints.count("rejected") != 0) return;
                fs.write(ctx.file, "../etc/passwd\n");
              }},
  };
}

bool RwallDaemon::passwd_corrupted(const fssim::FileSystem& fs,
                                   const fssim::RaceContext&) {
  auto pw = fs.read(kPasswd);
  return pw.ok() && pw.value.find(kRaceMessage) != std::string::npos;
}

fssim::RaceReport RwallDaemon::run_race(std::size_t window_steps) const {
  return fssim::enumerate_interleavings(
      initial_world(), victim_steps(window_steps), attacker_steps(),
      [](const FileSystem& fs, const fssim::RaceContext& ctx) {
        return passwd_corrupted(fs, ctx);
      });
}

core::FsmModel RwallDaemon::figure6_model() {
  Predicate spec1{"the requesting user has root privilege", [](const Object& o) {
                    return o.attr_bool("is_root").value_or(false);
                  }};
  Pfsm pfsm1 = Pfsm::unchecked(
      "pFSM1", PfsmType::kContentAttributeCheck,
      "user request to write /etc/utmp",
      std::move(spec1), "open /etc/utmp for the user");

  Predicate spec2{"the target file is a terminal", [](const Object& o) {
                    return o.attr_string("file_type").value_or("") == "terminal";
                  }};
  Pfsm pfsm2 = Pfsm::unchecked(
      "pFSM2", PfsmType::kObjectTypeCheck,
      "get a filename from /etc/utmp and write the user message to it",
      std::move(spec2), "write user message to the terminal or file");

  core::Operation op1{"Write to /etc/utmp", "the file /etc/utmp"};
  op1.add(std::move(pfsm1));
  core::Operation op2{"Rwall daemon writes messages", "filenames read from /etc/utmp"};
  op2.add(std::move(pfsm2));

  core::ExploitChain chain{"Solaris rwall arbitrary file corruption"};
  chain.add(std::move(op1),
            core::PropagationGate{"add \"../etc/passwd\" entry to the file /etc/utmp"});
  chain.add(std::move(op2),
            core::PropagationGate{
                "rwall daemon writes the user message to regular file /etc/passwd"});

  // id 0 = pre-Bugtraq CERT advisory (CA-1994-06), matching the curated
  // database's convention for this record.
  return core::FsmModel{"Solaris Rwall Arbitrary File Corruption (Figure 6)",
                        {0},
                        "Access Validation",
                        "Solaris rwalld",
                        "a regular user rewrites /etc/passwd via the daemon",
                        std::move(chain)};
}

namespace {

class RwallCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "Solaris rwall /etc/utmp file corruption";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: only root may write /etc/utmp", 0,
         PfsmType::kContentAttributeCheck},
        {"pFSM2: write target must be a terminal", 1,
         PfsmType::kObjectTypeCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RwallDaemon app{RwallChecks{enabled[0], enabled[1]}};
    auto fs = app.initial_world();
    const auto r = app.run_attack(fs, "../etc/passwd",
                                  "mallory::0:0:intruder:/:/bin/sh\n");
    RunOutcome out;
    out.exploited = r.passwd_corrupted;
    out.foiled = r.attacker_rejected || (!r.passwd_corrupted && !r.skipped.empty());
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    RwallDaemon app{RwallChecks{enabled[0], enabled[1]}};
    auto fs = app.initial_world();
    const auto r = app.run_benign(fs, "system going down at 5pm\n");
    RunOutcome out;
    out.service_ok = !r.wrote_to.empty() && !r.passwd_corrupted;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return RwallDaemon::figure6_model();
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_rwall_case_study() {
  return std::make_unique<RwallCaseStudy>();
}

}  // namespace dfsm::apps
