#include "apps/ghttpd.h"

#include "libcsim/format.h"

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using memsim::Addr;

Ghttpd::Ghttpd(GhttpdChecks checks)
    : checks_(checks),
      proc_(SandboxOptions{/*stack_canaries=*/checks.stackguard,
                           /*heap_safe_unlink=*/false}) {
  main_loop_ = proc_.cpu().register_function("serveconnection");
  netbuf_ = SandboxProcess::kDataBase;  // recv target for the request line
}

GhttpdResult Ghttpd::serve(const std::string& request_line) {
  GhttpdResult r;

  // The request line has been recv'd into a large network buffer; Log()
  // copies it into its 200-byte stack temp via vsprintf("%s", ...).
  proc_.mem().write_string(netbuf_, request_line);
  r.events.push_back("recv");

  if (checks_.length_check && request_line.size() > kLogBufferSize) {
    r.rejected = true;
    r.rejected_by = "pFSM1";
    r.detail = "size(message) > 200 — Log() refuses the request line";
    return r;
  }

  auto frame = proc_.stack().push_frame(
      "Log", main_loop_, {{"temp", kLogBufferSize}});

  libcsim::FormatEngine fmt{proc_.mem()};
  const libcsim::ArgProvider args{proc_.mem(), {netbuf_}};
  try {
    if (checks_.use_snprintf) {
      // The shipped fix: the bounded sibling caps the copy at the buffer.
      fmt.vsnprintf(frame.locals.at("temp"), kLogBufferSize, "%s", args);
    } else {
      fmt.vsprintf(frame.locals.at("temp"), "%s", args);  // NO bounds check
    }
  } catch (const memsim::MemoryFault&) {
    // The copy ran off the top of the stack segment: the process dies
    // with SIGSEGV mid-copy. The return address may already be smashed.
    r.crashed = true;
    r.ret_modified = proc_.stack().saved_return(frame) != main_loop_;
    r.detail = "vsprintf overran the stack segment (SIGSEGV during the copy)";
    return r;
  }
  r.logged = true;
  r.events.push_back("log");

  const auto ret = proc_.stack().pop_frame(frame);
  r.ret_modified = ret.ret_modified;
  if (!ret.canary_intact) {
    r.canary_smashed = true;
    r.rejected = true;
    r.rejected_by = "pFSM2";
    r.detail = "*** stack smashing detected ***: StackGuard aborts Log()";
    return r;
  }
  if (checks_.ret_consistency && ret.ret_modified) {
    r.rejected = true;
    r.rejected_by = "pFSM2";
    r.detail = "saved return address changed — split-stack check aborts";
    return r;
  }
  const auto landing = proc_.cpu().dispatch(ret.return_address);
  proc_.cpu().count_landing(landing);
  switch (landing.kind) {
    case memsim::LandingKind::kFunction:
      r.detail = "Log() returned to " + landing.function;
      r.events.push_back("ret");
      r.events.push_back("respond");
      break;
    case memsim::LandingKind::kMcode:
      r.mcode_executed = true;
      r.events.push_back("mcode:execve");
      r.events.push_back("mcode:dup2");
      r.detail = "Log() returned into Mcode via the smashed return address";
      break;
    case memsim::LandingKind::kWild:
      r.crashed = true;
      r.detail = "Log() returned to a wild address (SIGSEGV)";
      break;
  }
  return r;
}

std::string Ghttpd::build_exploit() const {
  std::string payload(kLogBufferSize, 'A');
  if (checks_.stackguard) {
    // With a canary the slot sits 8 bytes higher; the payload must plough
    // through it (and will be caught) — keep the same geometry.
    payload.append(8, 'C');
  }
  const Addr mcode = proc_.mcode();
  payload.push_back(static_cast<char>(mcode & 0xFF));
  payload.push_back(static_cast<char>((mcode >> 8) & 0xFF));
  payload.push_back(static_cast<char>((mcode >> 16) & 0xFF));
  // The vsprintf terminator writes byte 3 = 0; bytes 4..7 of the slot
  // already hold zeros (code addresses < 2^24).
  return payload;
}

core::FsmModel Ghttpd::ghttpd_model() {
  Predicate spec1{"size(message) <= 200", [](const Object& o) {
                    const auto n = o.attr_int("message_length");
                    return n && *n <= 200;
                  }};
  Pfsm pfsm1 = Pfsm::unchecked(
      "pFSM1", PfsmType::kContentAttributeCheck,
      "copy the request line into the 200-byte log buffer",
      std::move(spec1), "vsprintf(temp, \"%s ...\", request)");

  Predicate spec2{"the saved return address is unchanged", [](const Object& o) {
                    return o.attr_bool("ret_unchanged").value_or(false);
                  }};
  Pfsm pfsm2 = Pfsm::unchecked(
      "pFSM2", PfsmType::kReferenceConsistencyCheck,
      "return from Log() through the saved return address",
      std::move(spec2), "jump to the saved return address");

  core::Operation op1{"Log the request line", "the request message"};
  op1.add(std::move(pfsm1));
  core::Operation op2{"Return from Log()", "the saved return address"};
  op2.add(std::move(pfsm2));

  core::ExploitChain chain{"GHTTPD Log() stack buffer overflow"};
  chain.add(std::move(op1),
            core::PropagationGate{"the saved return address points to Mcode"});
  chain.add(std::move(op2), core::PropagationGate{"Execute Mcode"});

  return core::FsmModel{"GHTTPD Log() Buffer Overflow on Stack ([21])",
                        {5960},
                        "Stack Buffer Overflow",
                        "GHTTPD 1.4",
                        "remote code execution with the server's privileges",
                        std::move(chain)};
}

namespace {

class GhttpdCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "GHTTPD #5960 Log() stack buffer overflow";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: size(message) <= 200", 0, PfsmType::kContentAttributeCheck},
        {"pFSM2: return address unchanged (StackGuard)", 1,
         PfsmType::kReferenceConsistencyCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    Ghttpd app{GhttpdChecks{enabled[0], enabled[1]}};
    const auto r = app.serve(app.build_exploit());
    RunOutcome out;
    out.exploited = r.mcode_executed;
    out.foiled = r.rejected;
    out.crashed = r.crashed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    Ghttpd app{GhttpdChecks{enabled[0], enabled[1]}};
    const auto r = app.serve("GET /index.html HTTP/1.0");
    RunOutcome out;
    out.service_ok = r.logged && !r.rejected && !r.crashed && !r.mcode_executed;
    out.detail = r.detail;
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return Ghttpd::ghttpd_model();
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_ghttpd_case_study() {
  return std::make_unique<GhttpdCaseStudy>();
}

}  // namespace dfsm::apps
