#include "apps/xterm.h"

namespace dfsm::apps {

using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;
using fssim::Access;
using fssim::Cred;
using fssim::CtxStep;
using fssim::FileSystem;
using fssim::Mode;
using fssim::NodeType;
using fssim::OpenFlags;
using fssim::RaceContext;

XtermLogger::XtermLogger(XtermChecks checks) : checks_(checks) {}

FileSystem XtermLogger::initial_world() const {
  FileSystem fs;
  const Cred root = Cred::root();
  fs.mkdir(root, "/etc");
  auto pw = fs.create(root, kPasswd, Mode::file_default());
  (void)pw;
  {
    auto h = fs.open(root, kPasswd, OpenFlags{.write = true});
    fs.write(h.value, "root:x:0:0:root:/root:/bin/sh\n");
  }
  fs.mkdir(root, "/usr");
  fs.mkdir(root, "/usr/tom");
  fs.chown(root, "/usr/tom", "tom");
  fs.create(Cred::user_named("tom"), kLogPath, Mode::file_default());
  return fs;
}

std::vector<CtxStep> XtermLogger::victim_steps(std::size_t window_steps) const {
  const Cred tom = Cred::user_named("tom");
  const Cred root = Cred::root();
  const bool check = checks_.write_permission;
  const bool atomic = checks_.atomic_binding;

  std::vector<CtxStep> steps;
  steps.push_back(CtxStep{
      "xterm: access(\"/usr/tom/x\", W_OK) as tom + symlink check",
      [tom, check](FileSystem& fs, RaceContext& ctx) {
        if (!check) return;  // pFSM1 disabled for the ablation
        const bool may_write = fs.access(tom, XtermLogger::kLogPath, Access::kWrite);
        auto ls = fs.lstat(XtermLogger::kLogPath);
        const bool is_symlink = ls.ok() && ls.value.type == NodeType::kSymlink;
        if (!may_write || is_symlink) ctx.aborted = true;  // IMPL_REJ: refuse
      }});
  for (std::size_t i = 0; i < window_steps; ++i) {
    steps.push_back(CtxStep{"xterm: bookkeeping between check and open",
                            [](FileSystem&, RaceContext&) {}});
  }
  steps.push_back(CtxStep{
      "xterm: open(\"/usr/tom/x\", O_WRONLY|O_APPEND) as root",
      [root, tom, atomic](FileSystem& fs, RaceContext& ctx) {
        if (ctx.aborted) return;
        OpenFlags flags;
        flags.write = true;
        flags.append = true;
        flags.nofollow = atomic;  // the fix: refuse a symlink at open time
        auto h = fs.open(root, XtermLogger::kLogPath, flags);
        if (!h.ok()) {
          ctx.aborted = true;
          return;
        }
        if (atomic) {
          // ...and re-verify the opened object is still Tom's plain file.
          auto st = fs.fstat(h.value);
          if (!st.ok() || st.value.owner != tom.user ||
              st.value.type != NodeType::kFile) {
            ctx.aborted = true;
            return;
          }
        }
        ctx.file = h.value;
      }});
  steps.push_back(CtxStep{
      "xterm: write(log message) as root",
      [](FileSystem& fs, RaceContext& ctx) {
        if (ctx.aborted) return;
        fs.write(ctx.file, XtermLogger::kMessage);
        ctx.ints["wrote"] = 1;
      }});
  return steps;
}

std::vector<CtxStep> XtermLogger::attacker_steps() const {
  const Cred tom = Cred::user_named("tom");
  return {
      CtxStep{"tom: unlink(\"/usr/tom/x\")",
              [tom](FileSystem& fs, RaceContext&) {
                fs.unlink(tom, XtermLogger::kLogPath);
              }},
      CtxStep{"tom: symlink(\"/etc/passwd\", \"/usr/tom/x\")",
              [tom](FileSystem& fs, RaceContext&) {
                fs.symlink(tom, XtermLogger::kPasswd, XtermLogger::kLogPath);
              }},
  };
}

std::vector<CtxStep> XtermLogger::attacker_steps_atomic() const {
  const Cred tom = Cred::user_named("tom");
  return {
      CtxStep{"tom: rename(\"/usr/tom/evil\", \"/usr/tom/x\")  [atomic swap]",
              [tom](FileSystem& fs, RaceContext&) {
                fs.rename(tom, "/usr/tom/evil", XtermLogger::kLogPath);
              }},
  };
}

FileSystem XtermLogger::initial_world_with_staged_symlink() const {
  FileSystem fs = initial_world();
  fs.symlink(Cred::user_named("tom"), kPasswd, "/usr/tom/evil");
  return fs;
}

XtermRaceResult XtermLogger::run_race_atomic(std::size_t window_steps) const {
  XtermRaceResult result;
  result.window_steps = window_steps;
  result.report = fssim::enumerate_interleavings(
      initial_world_with_staged_symlink(), victim_steps(window_steps),
      attacker_steps_atomic(),
      [](const FileSystem& fs, const RaceContext& ctx) {
        return passwd_corrupted(fs, ctx);
      });
  return result;
}

bool XtermLogger::passwd_corrupted(const FileSystem& fs, const RaceContext&) {
  auto content = fs.read(kPasswd);
  return content.ok() && content.value.find(kMessage) != std::string::npos;
}

XtermRaceResult XtermLogger::run_race(std::size_t window_steps) const {
  XtermRaceResult result;
  result.window_steps = window_steps;
  result.report = fssim::enumerate_interleavings(
      initial_world(), victim_steps(window_steps), attacker_steps(),
      [](const FileSystem& fs, const RaceContext& ctx) {
        return passwd_corrupted(fs, ctx);
      });
  return result;
}

bool XtermLogger::run_benign() const {
  FileSystem fs = initial_world();
  RaceContext ctx;
  for (const auto& s : victim_steps(0)) s.run(fs, ctx);
  auto content = fs.read(kLogPath);
  return content.ok() && content.value.find(kMessage) != std::string::npos &&
         !passwd_corrupted(fs, ctx);
}

core::FsmModel XtermLogger::figure5_model() {
  // pFSM1 is SECURE in the real implementation (the permission check
  // exists and matches the spec) — the paper's point is that pFSM2 is not.
  Predicate spec1{
      "Tom has write permission to the file and the file is not a symbolic link",
      [](const Object& o) {
        return o.attr_bool("tom_may_write").value_or(false) &&
               !o.attr_bool("is_symlink").value_or(true);
      }};
  Pfsm pfsm1 = Pfsm::secure("pFSM1", PfsmType::kContentAttributeCheck,
                            "get the filename of Tom's log file",
                            std::move(spec1), "proceed to open /usr/tom/x");

  Predicate spec2{
      "/usr/tom/x is not re-bound (no symlink created) between check and open",
      [](const Object& o) {
        return o.attr_bool("binding_preserved").value_or(false);
      }};
  Pfsm pfsm2 = Pfsm::unchecked(
      "pFSM2", PfsmType::kReferenceConsistencyCheck,
      "open \"/usr/tom/x\" with write permission",
      std::move(spec2), "append the log message to the opened file");

  core::Operation op1{"Write the log file of user Tom", "the filename /usr/tom/x"};
  op1.add(std::move(pfsm1));
  op1.add(std::move(pfsm2));

  core::ExploitChain chain{"xterm log-file race condition"};
  chain.add(std::move(op1),
            core::PropagationGate{"Tom appends his own data to the file /etc/passwd"});

  // id 0 = pre-Bugtraq CERT advisory era (the 1993 xterm logging race),
  // matching the curated database's convention for this record.
  return core::FsmModel{"xterm Log File Race Condition (Figure 5)",
                        {0},
                        "File Race Condition",
                        "xterm (X11)",
                        "a regular user appends chosen data to /etc/passwd",
                        std::move(chain)};
}

namespace {

class XtermCaseStudy final : public CaseStudy {
 public:
  [[nodiscard]] std::string name() const override {
    return "xterm log-file symlink race";
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return {
        {"pFSM1: user may write the log file (and it is not a symlink)", 0,
         PfsmType::kContentAttributeCheck},
        {"pFSM2: filename binding preserved from check to use", 0,
         PfsmType::kReferenceConsistencyCheck},
    };
  }

  [[nodiscard]] RunOutcome run_exploit(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    XtermLogger app{XtermChecks{enabled[0], enabled[1]}};
    const auto race = app.run_race(/*window_steps=*/1);
    RunOutcome out;
    out.exploited = race.report.race_exists();
    out.foiled = !out.exploited;
    out.detail = std::to_string(race.report.violating_schedules) + "/" +
                 std::to_string(race.report.total_schedules) +
                 " schedules corrupt /etc/passwd";
    return out;
  }

  [[nodiscard]] RunOutcome run_benign(const std::vector<bool>& enabled) const override {
    require_mask(*this, enabled);
    XtermLogger app{XtermChecks{enabled[0], enabled[1]}};
    RunOutcome out;
    out.service_ok = app.run_benign();
    out.detail = out.service_ok ? "log message reached /usr/tom/x"
                                : "logging failed";
    return out;
  }

  [[nodiscard]] core::FsmModel model() const override {
    return XtermLogger::figure5_model();
  }
};

}  // namespace

std::unique_ptr<CaseStudy> make_xterm_case_study() {
  return std::make_unique<XtermCaseStudy>();
}

}  // namespace dfsm::apps
