// case_study.h — the uniform interface every replicated vulnerable
// application exposes to the analysis layer.
//
// A case study names its elementary-activity-level security checks (one
// per pFSM in its paper figure), can run its published exploit and a
// benign workload under any on/off combination of those checks, and hands
// out its predicate-level FsmModel. The Lemma sweeps (analysis::
// ChainAnalyzer, bench_lemma) enumerate all 2^k check masks through this
// interface.
#ifndef DFSM_APPS_CASE_STUDY_H
#define DFSM_APPS_CASE_STUDY_H

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"

namespace dfsm::apps {

/// One toggleable security check == one pFSM of the paper's model.
struct CheckSpec {
  std::string name;              ///< e.g. "pFSM2: 0 <= x <= 100"
  std::size_t operation_index;   ///< which operation of the chain it belongs to
  core::PfsmType type;           ///< Figure 8 classification

  /// Field-for-field equality: resweep validates that a baseline report's
  /// check layout still matches the study before recomposing from it.
  [[nodiscard]] bool operator==(const CheckSpec&) const = default;
};

/// Outcome of driving the exploit (or benign traffic) once.
struct RunOutcome {
  bool exploited = false;   ///< attacker goal reached (Mcode ran / file corrupted)
  bool foiled = false;      ///< a check rejected the attack
  bool crashed = false;     ///< uncontrolled failure (fault, wild jump)
  bool service_ok = false;  ///< for benign runs: the request was served
  std::string detail;       ///< human-readable narration

  /// Field-for-field equality (detail included): the memoized Lemma
  /// sweep keys its composition on "does this sub-mask change the run",
  /// and the fault-injection cross-check diffs whole reports.
  [[nodiscard]] bool operator==(const RunOutcome&) const = default;
};

/// The uniform case-study interface.
class CaseStudy {
 public:
  virtual ~CaseStudy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<CheckSpec> checks() const = 0;

  /// Runs the published exploit on a FRESH instance with the given check
  /// mask (size must equal checks().size()).
  [[nodiscard]] virtual RunOutcome run_exploit(const std::vector<bool>& enabled) const = 0;

  /// Runs a representative benign workload under the same mask — enabling
  /// security checks must not break legitimate service.
  [[nodiscard]] virtual RunOutcome run_benign(const std::vector<bool>& enabled) const = 0;

  /// The paper-figure FSM model (predicate level, all checks as authored —
  /// i.e. the vulnerable implementation).
  [[nodiscard]] virtual core::FsmModel model() const = 0;
};

/// All seven case studies, in paper order (Sendmail, NULL HTTPD, xterm,
/// rwall, IIS, GHTTPD, rpc.statd).
[[nodiscard]] std::vector<std::unique_ptr<CaseStudy>> all_case_studies();

/// Validates a mask length against a study's check count; throws
/// std::invalid_argument on mismatch (shared helper for implementations).
void require_mask(const CaseStudy& study, const std::vector<bool>& mask);

}  // namespace dfsm::apps

#endif  // DFSM_APPS_CASE_STUDY_H
