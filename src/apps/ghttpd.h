// ghttpd.h — replica of the GHTTPD Log() stack buffer overflow, Bugtraq
// #5960 (paper §5.5 reference [21], Table 2).
//
// Log() vsprintf's the request line into a 200-byte stack buffer. A longer
// request overruns the buffer and smashes the saved return address; the
// attacker plants the Mcode address at the right offset and Log()'s return
// jumps into the payload.
//
// The two pFSMs (Table 2):
//   pFSM1 (Content/Attribute)      size(message) <= 200?    [impl: none]
//   pFSM2 (Reference Consistency)  return address unchanged? [StackGuard]
#ifndef DFSM_APPS_GHTTPD_H
#define DFSM_APPS_GHTTPD_H

#include <string>

#include "apps/case_study.h"
#include "apps/sandbox.h"

namespace dfsm::apps {

struct GhttpdChecks {
  bool length_check = false;  ///< pFSM1: reject messages > 200 bytes
  bool stackguard = false;    ///< pFSM2: canary between locals and ret addr
  /// Alternative implementation of pFSM1's predicate: the actual GHTTPD
  /// patch replaced vsprintf with the bounded vsnprintf — the copy can
  /// then never exceed the buffer, whatever the message length.
  bool use_snprintf = false;
  /// Alternative implementation of pFSM2's predicate: split-stack-style
  /// return-address consistency (compare the saved return address against
  /// the pushed value before jumping), rather than a canary.
  bool ret_consistency = false;
};

struct GhttpdResult {
  bool rejected = false;
  std::string rejected_by;
  bool logged = false;
  bool canary_smashed = false;   ///< StackGuard would abort here
  bool ret_modified = false;
  bool mcode_executed = false;
  bool crashed = false;
  std::string detail;
  /// Syscall-level event trace ("recv", "log", "ret", "respond",
  /// "mcode:execve", ...) for the trace anomaly detector.
  std::vector<std::string> events;
};

class Ghttpd {
 public:
  static constexpr std::size_t kLogBufferSize = 200;  ///< char temp[200]

  explicit Ghttpd(GhttpdChecks checks = {});

  /// Serves one request: the request line is passed to Log().
  GhttpdResult serve(const std::string& request_line);

  [[nodiscard]] SandboxProcess& process() noexcept { return proc_; }

  /// Builds the published exploit: 200 filler bytes followed by the three
  /// NUL-free low bytes of the Mcode address (the copy's terminating NUL
  /// completes the little-endian pointer because code addresses have zero
  /// high bytes — the 2003 exploit mechanics, see sandbox.h).
  [[nodiscard]] std::string build_exploit() const;

  /// GHTTPD's pFSM pair as a predicate-level FsmModel (companion to the
  /// paper's [21] appendix).
  [[nodiscard]] static core::FsmModel ghttpd_model();

 private:
  GhttpdChecks checks_;
  SandboxProcess proc_;
  memsim::Addr netbuf_ = 0;   ///< scratch buffer the request arrives in
  memsim::Addr main_loop_ = 0;
};

/// CaseStudy adapter (checks: pFSM1 length, pFSM2 StackGuard).
[[nodiscard]] std::unique_ptr<CaseStudy> make_ghttpd_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_GHTTPD_H
