#include "apps/secured.h"

#include <algorithm>
#include <stdexcept>

namespace dfsm::apps {

namespace {

std::vector<std::size_t> normalized_ops(const CaseStudy& base,
                                        std::vector<std::size_t> ops) {
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  const auto checks = base.checks();
  for (const std::size_t op : ops) {
    const bool has_checks =
        std::any_of(checks.begin(), checks.end(),
                    [op](const CheckSpec& c) { return c.operation_index == op; });
    if (!has_checks) {
      throw std::invalid_argument("make_secured_study: '" + base.name() +
                                  "' has no checks for operation " +
                                  std::to_string(op));
    }
  }
  return ops;
}

class SecuredStudy final : public CaseStudy {
 public:
  SecuredStudy(const CaseStudy& base, std::vector<std::size_t> ops)
      : base_(base), ops_(std::move(ops)) {
    const auto checks = base_.checks();
    pin_.assign(checks.size(), false);
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (std::binary_search(ops_.begin(), ops_.end(),
                             checks[i].operation_index)) {
        pin_[i] = true;
      }
    }
  }

  [[nodiscard]] std::string name() const override {
    return secured_study_name(base_, ops_);
  }

  [[nodiscard]] std::vector<CheckSpec> checks() const override {
    return base_.checks();
  }

  [[nodiscard]] RunOutcome run_exploit(
      const std::vector<bool>& enabled) const override {
    return base_.run_exploit(pinned(enabled));
  }

  [[nodiscard]] RunOutcome run_benign(
      const std::vector<bool>& enabled) const override {
    return base_.run_benign(pinned(enabled));
  }

  [[nodiscard]] core::FsmModel model() const override { return base_.model(); }

 private:
  [[nodiscard]] std::vector<bool> pinned(std::vector<bool> mask) const {
    require_mask(*this, mask);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (pin_[i]) mask[i] = true;
    }
    return mask;
  }

  const CaseStudy& base_;
  std::vector<std::size_t> ops_;  ///< sorted, deduplicated
  std::vector<bool> pin_;         ///< per-check pin bit
};

}  // namespace

std::string secured_study_name(
    const CaseStudy& base, const std::vector<std::size_t>& secured_operations) {
  auto ops = secured_operations;
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  std::string name = base.name() + " [secured:";
  if (ops.empty()) name += " none";
  for (const std::size_t op : ops) name += " op" + std::to_string(op);
  name += "]";
  return name;
}

std::unique_ptr<CaseStudy> make_secured_study(
    const CaseStudy& base, std::vector<std::size_t> secured_operations) {
  return std::make_unique<SecuredStudy>(
      base, normalized_ops(base, std::move(secured_operations)));
}

}  // namespace dfsm::apps
