// sendmail.h — replica of the Sendmail Debugging Function Signed Integer
// Overflow vulnerability, Bugtraq #3163 (paper §4, Figure 3, Table 2).
//
// tTflag() writes a user-supplied debug level i into tTvect[x] with x
// parsed from the command line. The implementation checks only x <= 100;
// a string representing a value in (2^31, 2^32) wraps to a negative int,
// underflows the array, and lands the write on the GOT entry of setuid().
// When setuid() is later called through the GOT, control transfers to the
// attacker's Mcode.
//
// The three elementary activities / pFSMs (Figure 3):
//   pFSM1 (Object Type Check)          does str_x represent a value an int
//                                      can hold?        [impl: no check]
//   pFSM2 (Content/Attribute Check)    0 <= x <= 100?   [impl: x <= 100]
//   pFSM3 (Reference Consistency)      GOT entry of setuid() unchanged?
//                                                       [impl: no check]
#ifndef DFSM_APPS_SENDMAIL_H
#define DFSM_APPS_SENDMAIL_H

#include <string>

#include "apps/case_study.h"
#include "apps/sandbox.h"
#include "core/model.h"

namespace dfsm::apps {

/// Which of the paper's per-activity checks are compiled in.
struct SendmailChecks {
  bool input_representable = false;  ///< pFSM1
  bool index_full_range = false;     ///< pFSM2 (0 <= x, in addition to x <= 100)
  bool got_unchanged = false;        ///< pFSM3
};

/// Result of one "-d x.i" debug command.
struct SendmailResult {
  bool rejected = false;     ///< some check refused the input
  std::string rejected_by;   ///< which pFSM's check fired
  bool wrote = false;        ///< tTvect[x] = i executed
  bool crashed = false;      ///< the write faulted (x pointed at unmapped memory)
  bool mcode_executed = false;
  std::int32_t x = 0;
  std::int32_t i = 0;
  memsim::Addr write_addr = 0;
  std::string detail;
};

class SendmailTTflag {
 public:
  static constexpr std::size_t kTTvectEntries = 100;  ///< tTvect[100]

  explicit SendmailTTflag(SendmailChecks checks = {});

  /// Runs the debugging command "-d <str_x>.<str_i>" and then the
  /// setuid() call (operation 2 of Figure 3).
  SendmailResult run_debug_command(const std::string& str_x, const std::string& str_i);

  /// Address of tTvect (for tests and exploit arithmetic).
  [[nodiscard]] memsim::Addr ttvect() const noexcept { return ttvect_; }
  [[nodiscard]] SandboxProcess& process() noexcept { return proc_; }

  /// The published exploit inputs against this layout: str_x encodes
  /// 2^32 - offset so the int32 wrap lands tTvect+8x on the setuid GOT
  /// slot, str_i is the Mcode address.
  struct Exploit {
    std::string str_x;
    std::string str_i;
  };
  [[nodiscard]] Exploit build_exploit() const;

  // --- Byte-wise mode: the REAL Sendmail semantics. --------------------
  // In the original, tTvect is `u_char tTvect[100]` and each "-d x.i"
  // flag stores ONE byte; the published exploit therefore issues several
  // -d flags, composing the corrupted GOT entry byte by byte (footnote 5
  // chooses setuid() as the target). run_debug_session replays such a
  // multi-flag command line: every byte write passes the same per-flag
  // checks; setuid() is called once at the end.

  /// One "-d x.i" pair of a session.
  using DebugFlag = std::pair<std::string, std::string>;

  /// Applies each flag's single-byte write (tTvect[x] = (u_char)i), then
  /// calls setuid() through the GOT. Returns the outcome of the session;
  /// a rejected flag aborts the remaining writes but setuid() still runs
  /// (the program continues with the flags it accepted).
  SendmailResult run_debug_session(const std::vector<DebugFlag>& flags);

  /// The 8 flags composing the Mcode address over addr_setuid, byte by
  /// byte, each index again wrap-encoded as a value > 2^31.
  [[nodiscard]] std::vector<DebugFlag> build_exploit_session() const;

  /// The paper's Figure 3 as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel figure3_model();

 private:
  SendmailChecks checks_;
  SandboxProcess proc_;
  memsim::Addr ttvect_ = 0;
};

/// CaseStudy adapter (checks: pFSM1, pFSM2, pFSM3).
[[nodiscard]] std::unique_ptr<CaseStudy> make_sendmail_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_SENDMAIL_H
