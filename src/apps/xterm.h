// xterm.h — replica of the xterm log-file race condition (paper §5.2,
// Figure 5).
//
// xterm runs setuid-root and logs the user's messages to a user-chosen
// log file. It (correctly) checks that the user may write the file —
// pFSM1, declared secure — but the check and the open are separate
// syscalls. In the window between them, Tom unlinks /usr/tom/x and
// symlinks it to /etc/passwd; root's open follows the link and Tom's
// "log message" is appended to the password file — pFSM2's hidden path
// (a Reference Consistency violation: the filename's binding to the
// checked file is not preserved from check time to use time).
//
// The replica enumerates ALL interleavings of the victim's and attacker's
// syscall sequences (DESIGN.md §2), so the race-window measurement is
// exact rather than probabilistic.
#ifndef DFSM_APPS_XTERM_H
#define DFSM_APPS_XTERM_H

#include <string>

#include "apps/case_study.h"
#include "fssim/filesystem.h"
#include "fssim/race.h"

namespace dfsm::apps {

struct XtermChecks {
  /// pFSM1: verify the requesting user may write the log file (and that
  /// it is not a symlink at check time). The real xterm performs this —
  /// the paper declares pFSM1 secure — but it can be disabled for the
  /// ablation sweep.
  bool write_permission = true;
  /// pFSM2: preserve the filename->file binding from check to use
  /// (open with O_NOFOLLOW + fstat ownership verification). The fix.
  bool atomic_binding = false;
};

/// One race-enumeration result for a given window width.
struct XtermRaceResult {
  fssim::RaceReport report;
  std::size_t window_steps = 0;  ///< extra victim steps between check and open
};

class XtermLogger {
 public:
  static constexpr const char* kLogPath = "/usr/tom/x";
  static constexpr const char* kPasswd = "/etc/passwd";
  static constexpr const char* kMessage = "tom's log message\n";

  explicit XtermLogger(XtermChecks checks = {});

  /// The initial world: /etc/passwd (root, 0644), /usr/tom (tom's dir),
  /// /usr/tom/x (tom's log file, 0644).
  [[nodiscard]] fssim::FileSystem initial_world() const;

  /// Victim syscall sequence: [check] [window_steps no-ops] [open] [write].
  /// The no-ops widen the check-to-use window, modeling work the real
  /// xterm does between the two syscalls.
  [[nodiscard]] std::vector<fssim::CtxStep> victim_steps(std::size_t window_steps = 0) const;

  /// Attacker (Tom): unlink the log file, then symlink it to /etc/passwd.
  [[nodiscard]] std::vector<fssim::CtxStep> attacker_steps() const;

  /// Stronger attacker: a symlink to /etc/passwd prepared in advance at
  /// /usr/tom/evil, swapped over the log file with ONE atomic rename(2) —
  /// the race needs only a single step inside the window.
  [[nodiscard]] std::vector<fssim::CtxStep> attacker_steps_atomic() const;

  /// initial_world() plus the attacker's pre-staged /usr/tom/evil symlink.
  [[nodiscard]] fssim::FileSystem initial_world_with_staged_symlink() const;

  /// Race enumeration against the atomic single-step attacker.
  [[nodiscard]] XtermRaceResult run_race_atomic(std::size_t window_steps = 0) const;

  /// The violation predicate: Tom's message ended up inside /etc/passwd.
  [[nodiscard]] static bool passwd_corrupted(const fssim::FileSystem& fs,
                                             const fssim::RaceContext& ctx);

  /// Enumerates every interleaving for the given window width.
  [[nodiscard]] XtermRaceResult run_race(std::size_t window_steps = 0) const;

  /// Runs the benign schedule (victim alone, no attacker).
  [[nodiscard]] bool run_benign() const;

  /// The paper's Figure 5 as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel figure5_model();

 private:
  XtermChecks checks_;
};

/// CaseStudy adapter (checks: pFSM1 permission, pFSM2 binding).
[[nodiscard]] std::unique_ptr<CaseStudy> make_xterm_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_XTERM_H
