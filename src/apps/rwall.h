// rwall.h — replica of the Solaris rwall arbitrary file corruption
// (paper §5.3, Figure 6; CERT CA-1994-06).
//
// rwalld sends a message to every user listed in /etc/utmp by writing to
// each listed terminal. Two predicate failures compose:
//   pFSM1 (Content/Attribute)  only root should be able to modify
//                              /etc/utmp — but the file is world-writable,
//                              so a regular user appends "../etc/passwd".
//   pFSM2 (Object Type Check)  the write target should be a terminal —
//                              but no file-type check is performed, so the
//                              daemon happily writes the "message" (a new
//                              password file) into /etc/passwd.
#ifndef DFSM_APPS_RWALL_H
#define DFSM_APPS_RWALL_H

#include <string>
#include <vector>

#include "apps/case_study.h"
#include "fssim/filesystem.h"
#include "fssim/race.h"

namespace dfsm::apps {

struct RwallChecks {
  /// pFSM1: /etc/utmp is root-writable only (0644). The vulnerable
  /// configuration ships it world-writable (0666).
  bool utmp_root_only = false;
  /// pFSM2: rwalld verifies the target is a terminal before writing.
  bool terminal_type_check = false;
};

struct RwallResult {
  bool utmp_tampered = false;    ///< the attacker's entry landed in /etc/utmp
  bool attacker_rejected = false;///< EACCES writing /etc/utmp
  std::vector<std::string> wrote_to;   ///< resolved paths the daemon wrote
  std::vector<std::string> skipped;    ///< entries refused by the type check
  bool passwd_corrupted = false;
  std::string detail;
};

class RwallDaemon {
 public:
  static constexpr const char* kUtmp = "/etc/utmp";
  static constexpr const char* kPasswd = "/etc/passwd";
  static constexpr const char* kTerminal = "/dev/pts/25";

  explicit RwallDaemon(RwallChecks checks = {});

  /// The initial world: /etc/utmp listing "pts/25", /etc/passwd, and the
  /// terminal device /dev/pts/25.
  [[nodiscard]] fssim::FileSystem initial_world() const;

  /// The full scenario: the attacker (a regular user) appends `entry` to
  /// /etc/utmp, then issues `rwall hostname < message`; the daemon (root)
  /// writes `message` to every utmp entry.
  RwallResult run_attack(fssim::FileSystem& fs, const std::string& entry,
                         const std::string& message) const;

  /// Benign wall: no tampering; the message must reach the terminal only.
  RwallResult run_benign(fssim::FileSystem& fs, const std::string& message) const;

  /// The paper's Figure 6 as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel figure6_model();

  // -------------------------------------------------------------------
  // Step-decomposed race variant (DESIGN.md §14). The shared object is
  // /etc/utmp: the daemon snapshots it once, then fans the message out to
  // the snapshot's entries. The attacker's append races the snapshot —
  // /etc/passwd is corrupted exactly when BOTH attacker steps precede the
  // daemon's read, i.e. in precisely one interleaving: the lexicographic
  // last schedule (the attacker runs entirely first).

  /// Daemon sequence: [read /etc/utmp into ctx] [window_steps no-ops]
  /// [write message to every snapshotted entry].
  [[nodiscard]] std::vector<fssim::CtxStep> victim_steps(
      std::size_t window_steps = 1) const;

  /// Attacker (mallory): open /etc/utmp for append, write the
  /// "../etc/passwd" entry.
  [[nodiscard]] std::vector<fssim::CtxStep> attacker_steps() const;

  /// The violation predicate: the broadcast message landed in /etc/passwd.
  [[nodiscard]] static bool passwd_corrupted(const fssim::FileSystem& fs,
                                             const fssim::RaceContext& ctx);

  /// Enumerates every interleaving for the given window width.
  [[nodiscard]] fssim::RaceReport run_race(std::size_t window_steps = 1) const;

  /// The message the race victim broadcasts (a forged passwd line).
  static constexpr const char* kRaceMessage =
      "mallory::0:0:intruder:/:/bin/sh\n";

 private:
  /// The daemon's write pass over /etc/utmp.
  void wall(fssim::FileSystem& fs, const std::string& message, RwallResult& r) const;

  RwallChecks checks_;
};

/// CaseStudy adapter (checks: pFSM1 utmp permission, pFSM2 file type).
[[nodiscard]] std::unique_ptr<CaseStudy> make_rwall_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_RWALL_H
