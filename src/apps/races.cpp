#include "apps/races.h"

#include "apps/rwall.h"
#include "apps/xterm.h"

namespace dfsm::apps {

std::vector<fssim::RaceScenario> race_scenarios() {
  std::vector<fssim::RaceScenario> scenarios;

  {
    const XtermLogger app{};  // vulnerable defaults: check, no atomic bind
    fssim::RaceScenario s;
    s.name = "xterm-figure5";
    s.description =
        "xterm log-file symlink race (paper Figure 5): unlink+symlink "
        "inside the check-to-open window corrupts /etc/passwd";
    s.world = [] { return XtermLogger{}.initial_world(); };
    s.victim = app.victim_steps(/*window_steps=*/1);
    s.attacker = app.attacker_steps();
    s.violated = [](const fssim::FileSystem& fs,
                    const fssim::RaceContext& ctx) {
      return XtermLogger::passwd_corrupted(fs, ctx);
    };
    s.expected_total = 15;     // C(6, 2): 4 victim x 2 attacker steps
    s.expected_violating = 3;  // both attacker steps inside the window
    s.last_schedule_violates = false;  // attacker-first trips the check
    scenarios.push_back(std::move(s));
  }

  {
    const RwallDaemon app{};  // vulnerable defaults: utmp world-writable
    fssim::RaceScenario s;
    s.name = "rwall-figure6";
    s.description =
        "Solaris rwall utmp broadcast race (paper Figure 6): the "
        "attacker's \"../etc/passwd\" append must beat the daemon's "
        "snapshot read";
    s.world = [] { return RwallDaemon{}.initial_world(); };
    s.victim = app.victim_steps(/*window_steps=*/1);
    s.attacker = app.attacker_steps();
    s.violated = [](const fssim::FileSystem& fs,
                    const fssim::RaceContext& ctx) {
      return RwallDaemon::passwd_corrupted(fs, ctx);
    };
    s.expected_total = 10;     // C(5, 2): 3 victim x 2 attacker steps
    s.expected_violating = 1;  // attacker entirely before the read
    s.last_schedule_violates = true;  // ...which IS the pinned last rank
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

}  // namespace dfsm::apps
