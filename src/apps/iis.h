// iis.h — replica of the IIS CGI filename superfluous-decoding
// vulnerability (paper §5.4, Figure 7; Bugtraq #2708, exploited by the
// Nimda worm).
//
// IIS decodes the requested CGI path, checks it for "../" traversal, then
// decodes it AGAIN before use. "%25" -> '%' and "%2f" -> '/', so
// "..%252f" survives the check as "..%2f" and only becomes "../" in the
// second decode — an inconsistency between the predicate pFSM1 specifies
// (the *executed* path stays under /wwwroot/scripts) and the predicate
// the implementation enforces (the *once-decoded* path has no "../").
#ifndef DFSM_APPS_IIS_H
#define DFSM_APPS_IIS_H

#include <string>

#include "apps/case_study.h"
#include "fssim/filesystem.h"

namespace dfsm::apps {

struct IisChecks {
  /// The fix actually shipped: decode exactly once (no superfluous pass).
  bool single_decode = false;
  /// Defence-in-depth alternative: re-apply the traversal check after
  /// every decode pass.
  bool recheck_after_decode = false;
};

struct IisResult {
  bool rejected = false;
  std::string rejected_by;
  bool executed = false;             ///< a CGI target was executed
  bool outside_scripts = false;      ///< ...and it lay outside /wwwroot/scripts
  std::string decoded_once;
  std::string decoded_twice;
  std::string resolved_path;
  std::string detail;
};

class IisDecoder {
 public:
  static constexpr const char* kScriptsRoot = "/wwwroot/scripts";

  explicit IisDecoder(IisChecks checks = {});

  /// The server's filesystem: /wwwroot/scripts/hello.cgi plus the
  /// out-of-root target /winnt/system32/cmd.exe.
  [[nodiscard]] fssim::FileSystem initial_world() const;

  /// Handles "GET /scripts/<encoded-filepath>": decode, check, (decode
  /// again,) resolve relative to the scripts root, execute.
  IisResult handle_cgi_request(fssim::FileSystem& fs,
                               const std::string& encoded_filepath) const;

  /// The canonical Nimda-style payload escaping to cmd.exe.
  [[nodiscard]] static std::string nimda_payload();

  /// The paper's Figure 7 as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel figure7_model();

 private:
  IisChecks checks_;
};

/// CaseStudy adapter (checks: single decode, recheck after decode).
[[nodiscard]] std::unique_ptr<CaseStudy> make_iis_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_IIS_H
