// races.h — curated race-scenario registry for the interleaving
// exploration engine (fssim/explore.h).
//
// Each entry packages one of the paper's TOCTOU case studies as a
// self-contained RaceScenario: world factory, victim/attacker step
// sequences, violation predicate, and the exact exhaustive counts the
// exploration campaign must rediscover (DESIGN.md §14).
#ifndef DFSM_APPS_RACES_H
#define DFSM_APPS_RACES_H

#include <vector>

#include "fssim/explore.h"

namespace dfsm::apps {

/// The curated scenarios:
///   - "xterm-figure5": the §5.2 log-file symlink race at window 1 —
///     C(6,2) = 15 schedules, 3 violating (both attacker steps must land
///     between the check and the open; the window no-op interleaves three
///     ways).
///   - "rwall-figure6": the §5.3 utmp broadcast race at window 1 —
///     C(5,2) = 10 schedules, 1 violating (the attacker's append must
///     precede the daemon's snapshot read entirely, i.e. the
///     lexicographic last schedule — always caught by pinned sampling).
[[nodiscard]] std::vector<fssim::RaceScenario> race_scenarios();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_RACES_H
