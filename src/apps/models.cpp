#include "apps/models.h"

#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/rwall.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"

namespace dfsm::apps {

std::vector<core::FsmModel> standard_models() {
  std::vector<core::FsmModel> models;
  models.push_back(SendmailTTflag::figure3_model());
  models.push_back(NullHttpd::figure4_model());
  models.push_back(XtermLogger::figure5_model());
  models.push_back(RwallDaemon::figure6_model());
  models.push_back(IisDecoder::figure7_model());
  models.push_back(Ghttpd::ghttpd_model());
  models.push_back(RpcStatd::statd_model());
  return models;
}

}  // namespace dfsm::apps
