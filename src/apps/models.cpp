#include "apps/models.h"

#include "apps/fmtfamily.h"
#include "apps/ghttpd.h"
#include "apps/iis.h"
#include "apps/nullhttpd.h"
#include "apps/rpcstatd.h"
#include "apps/rwall.h"
#include "apps/sendmail.h"
#include "apps/xterm.h"

namespace dfsm::apps {

std::vector<core::FsmModel> standard_models() {
  std::vector<core::FsmModel> models;
  models.push_back(SendmailTTflag::figure3_model());
  models.push_back(NullHttpd::figure4_model());
  models.push_back(XtermLogger::figure5_model());
  models.push_back(RwallDaemon::figure6_model());
  models.push_back(IisDecoder::figure7_model());
  models.push_back(Ghttpd::ghttpd_model());
  models.push_back(RpcStatd::statd_model());
  return models;
}

std::vector<core::FsmModel> all_models() {
  auto models = standard_models();
  for (const auto profile :
       {FmtProfile::kWuFtpd, FmtProfile::kSplitvt, FmtProfile::kIcecast}) {
    models.push_back(make_fmtfamily_case_study(profile)->model());
  }
  return models;
}

}  // namespace dfsm::apps
