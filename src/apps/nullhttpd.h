// nullhttpd.h — replica of the NULL HTTPD heap overflows: the known
// negative-Content-Length overflow (Bugtraq #5774) and the recv-loop
// logic error the paper's authors discovered while modeling it
// (Bugtraq #6255) — paper §5.1, Figure 4.
//
// ReadPOSTData, bug-for-bug (Figure 4b):
//   1: PostData = calloc(contentLen+1024, sizeof(char)); x=0; rc=0;
//   2: pPostData = PostData;
//   3: do {
//   4:   rc = recv(sid, pPostData, 1024);
//   5:   if (rc == -1) { closeconnect(sid,1); return; }
//   9:   pPostData += rc;
//  10:   x += rc;
//  11: } while ((rc==1024) || (x < contentLen));   // '||' should be '&&'
//
// v0.5   : no contentLen check at all -> #5774 (contentLen = -800 gives a
//          224-byte buffer; the server still copies >= 1024 bytes).
// v0.5.1 : rejects negative contentLen before ReadPOSTData, but keeps the
//          '||' loop -> #6255 (right contentLen, oversized body).
//
// The overflow corrupts the fd/bk links of the free chunk following
// PostData; free(PostData) forward-coalesces, and the allocator's unlink
// (FD->bk = BK; BK->fd = FD) writes the Mcode address over the GOT entry
// of free(). The next free() call through the GOT executes Mcode.
//
// The four pFSMs (Figure 4a):
//   pFSM1 (Content/Attribute)      contentLen >= 0        [v0.5: no check]
//   pFSM2 (Content/Attribute)      length(input) <= size(PostData)
//                                  [the '&&' loop fix]
//   pFSM3 (Reference Consistency)  free-chunk links unchanged (safe unlink)
//   pFSM4 (Reference Consistency)  GOT entry of free() unchanged
#ifndef DFSM_APPS_NULLHTTPD_H
#define DFSM_APPS_NULLHTTPD_H

#include <string>
#include <vector>

#include "apps/case_study.h"
#include "apps/sandbox.h"
#include "netsim/bytestream.h"

namespace dfsm::apps {

/// The four per-pFSM checks of Figure 4.
struct NullHttpdChecks {
  bool content_len_nonneg = false;  ///< pFSM1 (the v0.5.1 fix)
  bool bounded_read_loop = false;   ///< pFSM2 ('&&' termination condition)
  bool heap_safe_unlink = false;    ///< pFSM3
  bool got_free_unchanged = false;  ///< pFSM4
};

/// Result of serving one request.
struct NullHttpdResult {
  bool rejected = false;
  std::string rejected_by;
  bool served = false;          ///< request processed to completion
  bool crashed = false;         ///< fault / allocator abort
  bool heap_overflowed = false; ///< bytes written past PostData's usable size
  bool mcode_executed = false;
  std::int32_t content_len = 0;
  std::size_t bytes_read = 0;
  std::size_t postdata_usable = 0;
  std::string detail;
  /// Syscall-level event trace of the run ("accept", "calloc", "recv",
  /// "free", "respond", "mcode:execve", ...) — input for the
  /// Michael-&-Ghosh-style anomaly detector (analysis/anomaly.h).
  std::vector<std::string> events;
};

class NullHttpd {
 public:
  explicit NullHttpd(NullHttpdChecks checks = {});

  /// Serves one POST request whose head declares `content_len` and whose
  /// body is `body` (delivered through the simulated socket in 1024-byte
  /// recv chunks, exactly like the original).
  NullHttpdResult handle_post(std::int32_t content_len, const std::string& body);

  /// The full front door: parses a raw request off the wire (netsim HTTP
  /// head, Content-Length with C atoi semantics — "4294958848" wraps),
  /// then serves it. Malformed heads and non-POST methods are rejected
  /// with a 400-style result.
  NullHttpdResult handle_raw(const std::string& raw_request);

  [[nodiscard]] SandboxProcess& process() noexcept { return proc_; }

  /// Heap layout facts an attacker learns by scouting a twin instance
  /// (the sandbox is deterministic, so a fresh instance reproduces them).
  struct ScoutInfo {
    memsim::Addr postdata_user = 0;      ///< PostData user pointer
    std::size_t postdata_usable = 0;     ///< usable bytes of PostData
    memsim::Addr following_chunk = 0;    ///< the free chunk B after PostData
    std::uint64_t b_prev_size = 0;       ///< B's prev_size field value
    std::uint64_t b_size_field = 0;      ///< B's size|flags field value
    memsim::Addr got_free_slot = 0;      ///< &addr_free
    memsim::Addr mcode = 0;
  };
  /// Scouts the layout a fresh instance will have after callocing
  /// PostData for the given contentLen.
  [[nodiscard]] static ScoutInfo scout(std::int32_t content_len,
                                       NullHttpdChecks checks = {});

  /// Builds the #5774 exploit body (to pair with contentLen = -800) or
  /// the #6255 body (to pair with a legitimate contentLen): PostData fill,
  /// then B's header preserved, then fd = &addr_free - offsetof(bk) and
  /// bk = Mcode (paper footnote 7).
  [[nodiscard]] static std::vector<std::uint8_t> build_overflow_body(
      const ScoutInfo& info);

  /// Serializes a complete exploit request (head declaring `content_len`
  /// + the crafted overflow body) for the raw front door.
  [[nodiscard]] static std::string build_exploit_request(const ScoutInfo& info,
                                                         std::int32_t content_len);

  /// The paper's Figure 4 as a predicate-level FsmModel.
  [[nodiscard]] static core::FsmModel figure4_model();

 private:
  NullHttpdResult read_post_data(netsim::ByteStream& sock, std::int32_t content_len);

  NullHttpdChecks checks_;
  SandboxProcess proc_;
};

/// CaseStudy adapter for #5774 (v0.5 exploit: negative contentLen).
[[nodiscard]] std::unique_ptr<CaseStudy> make_nullhttpd_case_study();

/// CaseStudy adapter for #6255 (the newly discovered exploit: truthful
/// contentLen, oversized body through the '||' recv loop).
[[nodiscard]] std::unique_ptr<CaseStudy> make_nullhttpd_6255_case_study();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_NULLHTTPD_H
