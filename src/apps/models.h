// models.h — the registry of all paper-figure FSM models, feeding the
// Table 2 and Figure 8 generators.
#ifndef DFSM_APPS_MODELS_H
#define DFSM_APPS_MODELS_H

#include <vector>

#include "core/model.h"

namespace dfsm::apps {

/// All seven case-study models, in paper order: Sendmail (Fig. 3),
/// NULL HTTPD (Fig. 4), xterm (Fig. 5), rwall (Fig. 6), IIS (Fig. 7),
/// GHTTPD and rpc.statd ([21], Table 2 rows 6-7).
[[nodiscard]] std::vector<core::FsmModel> standard_models();

/// The full curated registry: standard_models() plus the three
/// format-string-family profiles of §3.2 (#1387 wu-ftpd, #2210 splitvt,
/// #2264 icecast). This is the set the static linter sweeps.
[[nodiscard]] std::vector<core::FsmModel> all_models();

}  // namespace dfsm::apps

#endif  // DFSM_APPS_MODELS_H
