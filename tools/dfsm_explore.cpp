// dfsm_explore — interleaving-exploration campaign driver (DESIGN.md
// §14).
//
// Explores the schedule space of the curated race scenarios with the
// deterministic engine in fssim/explore.h: exhaustive when the space
// fits --budget, pinned + strided sampling beyond it. Exhaustive runs
// are held to the curated expected counts; sampled runs must still find
// any race whose violating schedule is the pinned lexicographic last
// rank (rwall).
//
//   dfsm_explore --list
//   dfsm_explore --scenario all --format json
//   dfsm_explore --scenario rwall-figure6 --budget 4 --seed 7
//
// Exit codes: 0 = every explored scenario met its expectations, 1 = a
// curated expectation was missed, 2 = usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/races.h"
#include "fssim/explore.h"
#include "runtime/thread_pool.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario <s>   curated scenario name, or \"all\" (default)\n"
      << "  --list           list curated scenarios and exit\n"
      << "  --budget <n>     schedule budget; spaces larger than this are\n"
      << "                   sampled with pinned first/last ranks\n"
      << "                   (default: 4096)\n"
      << "  --seed <n>       sampling seed (default: 1)\n"
      << "  --benign-cap <n> retain at most n benign outcomes per report\n"
      << "  --format <f>     text | json  (default: text)\n"
      << "  --out <file>     write the report to <file> instead of stdout\n"
      << "  --threads <n>    worker threads (default: DFSM_THREADS)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "all";
  std::string format = "text";
  std::string out_path;
  bool list_only = false;
  dfsm::fssim::ExploreOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg == "--scenario") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        scenario_name = v;
      } else if (arg == "--list") {
        list_only = true;
      } else if (arg == "--budget") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.budget = std::stoull(v);
      } else if (arg == "--seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.seed = std::stoull(v);
      } else if (arg == "--benign-cap") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.benign_outcome_cap = std::stoul(v);
      } else if (arg == "--format") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        format = v;
      } else if (arg == "--out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        out_path = v;
      } else if (arg == "--threads") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        dfsm::runtime::ThreadPool::set_global_threads(
            static_cast<std::size_t>(std::stoul(v)));
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (format != "text" && format != "json") {
    std::cerr << "unknown format: " << format << "\n";
    return usage(argv[0]);
  }

  const auto scenarios = dfsm::apps::race_scenarios();
  if (list_only) {
    for (const auto& s : scenarios) {
      std::cout << s.name << ": " << s.description << " (expected "
                << s.expected_violating << "/" << s.expected_total
                << " violating)\n";
    }
    return 0;
  }

  std::vector<const dfsm::fssim::RaceScenario*> selected;
  for (const auto& s : scenarios) {
    if (scenario_name == "all" || s.name == scenario_name) {
      selected.push_back(&s);
    }
  }
  if (selected.empty()) {
    std::cerr << "unknown scenario: " << scenario_name
              << " (try --list)\n";
    return 2;
  }

  bool all_ok = true;
  std::string rendered;
  if (format == "json") rendered += "[";
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const auto& s = *selected[i];
    const auto report = dfsm::fssim::explore_scenario(s, options);
    if (format == "json") {
      if (i > 0) rendered += ",";
      rendered += "\n" + dfsm::fssim::emit_json(s.name, report);
    } else {
      rendered += dfsm::fssim::emit_text(s.name, report);
    }

    // Curated expectations: exhaustive runs must reproduce the exact
    // counts; sampled runs must still catch a lex-last violation (it is
    // a pinned rank and can never be legitimately missed).
    if (report.exhaustive && s.expected_total > 0 &&
        (report.explored != s.expected_total ||
         report.violating != s.expected_violating)) {
      std::cerr << "FAIL " << s.name << ": exhaustive run found "
                << report.violating << "/" << report.explored
                << " violating, expected " << s.expected_violating << "/"
                << s.expected_total << "\n";
      all_ok = false;
    }
    if (!report.exhaustive && s.last_schedule_violates &&
        !report.race_exists()) {
      std::cerr << "FAIL " << s.name
                << ": sampled run missed the pinned lex-last violation\n";
      all_ok = false;
    }
  }
  if (format == "json") rendered += "\n]\n";

  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << rendered;
    std::cerr << "dfsm_explore: wrote " << out_path << "\n";
  }
  return all_ok ? 0 : 1;
}
