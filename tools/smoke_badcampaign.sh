#!/usr/bin/env bash
# Asserts dfsm_faultinject rejects unknown --campaign values with exit 2
# AND an error message listing the valid set. ctest's
# PASS_REGULAR_EXPRESSION overrides exit-code checking, so this wrapper
# checks both explicitly.
set -u

tool="$1"

out=$("$tool" --campaign bogus 2>&1)
code=$?

if [ "$code" -ne 2 ]; then
  echo "FAIL: expected exit 2 for unknown campaign, got $code"
  exit 1
fi
if ! printf '%s' "$out" | grep -q "corpus|model|race|composed|all"; then
  echo "FAIL: error message does not list the valid campaign set:"
  printf '%s\n' "$out"
  exit 1
fi
echo "ok: unknown campaign rejected with exit 2 and the valid set listed"
exit 0
