// dfsm_faultinject — seeded fault-injection campaign driver (DESIGN.md
// §9).
//
// Runs `--trials` independent scenarios against the corpus ingest
// pipeline and/or the model analyses, each derived purely from
// (--seed, trial index), and verifies the robustness invariants: zero
// silent data loss on corpus faults, zero undetected defects on model
// faults, contextual strict errors, deterministic reports.
//
//   dfsm_faultinject --seed 1 --trials 200
//   dfsm_faultinject --campaign corpus --format json --out report.json
//   dfsm_faultinject --trials 25 --workdir /tmp/fi --threads 4
//
// Exit codes: 0 = every trial's invariant held, 1 = at least one trial
// failed, 2 = usage or setup error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "faultinject/campaign.h"
#include "runtime/thread_pool.h"
#include "staticlint/emit.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed <n>       campaign seed (default: 1)\n"
      << "  --trials <n>     number of scenarios to run (default: 200)\n"
      << "  --campaign <c>   corpus | model | race | composed | all\n"
      << "                   (default: all)\n"
      << "  --format <f>     text | json  (default: text)\n"
      << "  --out <file>     write the report to <file> instead of stdout\n"
      << "  --lint-out <f>   write the aggregated incremental-lint run of\n"
      << "                   every campaign-linted model as JSON\n"
      << "  --lint-sarif <f> write the aggregated lint run as SARIF 2.1.0\n"
      << "  --workdir <dir>  scratch directory for shard files (created if\n"
      << "                   missing; default: dfsm-faultinject.work)\n"
      << "  --threads <n>    worker threads (default: DFSM_THREADS)\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out{path};
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dfsm::faultinject::CampaignConfig config;
  config.workdir = "dfsm-faultinject.work";
  std::string format = "text";
  std::string out_path;
  std::string lint_out_path;
  std::string lint_sarif_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg == "--seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        config.seed = std::stoull(v);
      } else if (arg == "--trials") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        config.trials = std::stoul(v);
      } else if (arg == "--campaign") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        const std::string kind = v;
        if (kind == "corpus") {
          config.campaign = dfsm::faultinject::CampaignKind::kCorpus;
        } else if (kind == "model") {
          config.campaign = dfsm::faultinject::CampaignKind::kModel;
        } else if (kind == "race") {
          config.campaign = dfsm::faultinject::CampaignKind::kRace;
        } else if (kind == "composed") {
          config.campaign = dfsm::faultinject::CampaignKind::kComposed;
        } else if (kind == "all") {
          config.campaign = dfsm::faultinject::CampaignKind::kAll;
        } else {
          std::cerr << "unknown campaign: " << kind
                    << " (valid: corpus|model|race|composed|all)\n";
          return usage(argv[0]);
        }
      } else if (arg == "--format") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        format = v;
      } else if (arg == "--out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        out_path = v;
      } else if (arg == "--lint-out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        lint_out_path = v;
      } else if (arg == "--lint-sarif") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        lint_sarif_path = v;
      } else if (arg == "--workdir") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        config.workdir = v;
      } else if (arg == "--threads") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        dfsm::runtime::ThreadPool::set_global_threads(
            static_cast<std::size_t>(std::stoul(v)));
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (format != "text" && format != "json") {
    std::cerr << "unknown format: " << format << "\n";
    return usage(argv[0]);
  }

  std::error_code ec;
  std::filesystem::create_directories(config.workdir, ec);
  if (ec) {
    std::cerr << "cannot create workdir " << config.workdir << ": "
              << ec.message() << "\n";
    return 2;
  }

  dfsm::faultinject::CampaignReport report;
  try {
    report = dfsm::faultinject::run_campaign(config);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "campaign aborted: " << e.what() << "\n";
    return 2;
  }

  if (!lint_out_path.empty() &&
      !write_file(lint_out_path, dfsm::staticlint::emit_json(report.lint))) {
    return 2;
  }
  if (!lint_sarif_path.empty() &&
      !write_file(lint_sarif_path,
                  dfsm::staticlint::emit_sarif(report.lint))) {
    return 2;
  }

  const std::string rendered = format == "json"
                                   ? dfsm::faultinject::emit_json(report)
                                   : dfsm::faultinject::emit_text(report);
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << rendered;
    std::cerr << "dfsm_faultinject: wrote " << out_path << " ("
              << report.failures << " failure(s) in " << report.trials.size()
              << " trial(s))\n";
  }
  return report.ok() ? 0 : 1;
}
