#!/bin/sh
# regenerate.sh — build everything, run the full test suite and every
# benchmark binary, and capture the outputs the repository ships
# (test_output.txt, bench_output.txt, dot/*.dot).
#
#   $ tools/regenerate.sh [build-dir]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

cmake -B "$BUILD" -G Ninja -S "$ROOT"
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==================== $(basename "$b") ====================" \
    | tee -a "$ROOT/bench_output.txt"
  "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
done

"$BUILD/examples/export_dot" "$ROOT/dot"

echo
echo "Regenerated: test_output.txt, bench_output.txt, dot/*.dot"
