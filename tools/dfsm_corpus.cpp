// dfsm_corpus — the corpus service's disk-format workbench: generate a
// synthetic corpus in CSV and/or binary columnar snapshot (colsnap)
// form, convert between the two formats, emit deterministic JSON
// statistics, verify a shard set end to end, and (for negative tests)
// corrupt a snapshot in a controlled way.
//
//   dfsm_corpus gen --n 100000 --seed 42 --out /tmp/c --shards 8 --format both
//   dfsm_corpus stats --in /tmp/c.colsnap --threads 4 --out stats.json
//   dfsm_corpus convert --in /tmp/c.csv --out /tmp/c2
//   dfsm_corpus verify --in /tmp/c.colsnap
//   dfsm_corpus corrupt --in /tmp/c.colsnap --shard 1 --mode checksum
//
// `--in` names the shard base plus format extension ("<base>.csv" or
// "<base>.colsnap"); the shard count is discovered from the
// "<base>-00000-of-NNNNN.<ext>" file. Stats JSON is a pure function of
// corpus contents — same bytes at any DFSM_THREADS and from either
// format — which is what the CI corpus-snapshot job byte-compares. A
// refused load (checksum mismatch, torn publish, malformed CSV) prints
// the loader's "<file>:<column>: <reason>" and exits 1.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bugtraq/colsnap.h"
#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "bugtraq/database.h"
#include "bugtraq/stats.h"
#include "runtime/thread_pool.h"

namespace {

using namespace dfsm;
namespace fs = std::filesystem;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [options]\n"
      "commands:\n"
      "  gen      --out BASE [--n N] [--seed S] [--shards K]\n"
      "           [--format csv|colsnap|both] [--quiet]\n"
      "  convert  --in BASE.EXT --out BASE2 [--shards K] [--to csv|colsnap]\n"
      "  stats    --in BASE.EXT [--out FILE] [--threads T]\n"
      "  verify   --in BASE.EXT [--threads T]\n"
      "  corrupt  --in BASE.EXT [--shard I] [--column NAME]\n"
      "           [--mode checksum|truncate|epoch]\n"
      "EXT selects the format: .csv or .colsnap. The shard count is\n"
      "discovered from the '<base>-00000-of-NNNNN.EXT' file.\n",
      argv0);
}

[[noreturn]] void die_usage(const std::string& msg, const char* argv0) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  usage(argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0') {
    std::fprintf(stderr, "error: bad number '%s'\n", s.c_str());
    std::exit(2);
  }
  return v;
}

/// Minimal flag parser: --key value pairs after the subcommand.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int begin) {
  std::map<std::string, std::string> flags;
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) die_usage("unexpected argument '" + arg + "'", argv[0]);
    const std::string key = arg.substr(2);
    if (key == "quiet") {
      flags[key] = "1";
      continue;
    }
    if (i + 1 >= argc) die_usage("--" + key + " needs a value", argv[0]);
    flags[key] = argv[++i];
  }
  return flags;
}

std::string take(std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  std::string v = it->second;
  flags.erase(it);
  return v;
}

void reject_unknown(const std::map<std::string, std::string>& flags,
                    const char* argv0) {
  if (!flags.empty()) die_usage("unknown flag '--" + flags.begin()->first + "'", argv0);
}

enum class Format { kCsv, kColsnap };

/// Splits "<base>.csv" / "<base>.colsnap" into (base, format).
std::pair<std::string, Format> split_input(const std::string& in,
                                           const char* argv0) {
  const auto dot = in.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : in.substr(dot + 1);
  if (ext == "csv") return {in.substr(0, dot), Format::kCsv};
  if (ext == "colsnap") return {in.substr(0, dot), Format::kColsnap};
  die_usage("--in must end in .csv or .colsnap, got '" + in + "'", argv0);
}

/// Discovers the shard count from the first shard's "-of-NNNNN" suffix.
std::vector<std::string> discover_shards(const std::string& base, Format fmt) {
  const char* ext = fmt == Format::kCsv ? "csv" : "colsnap";
  // Probe "<base>-00000-of-<k>.<ext>" for the k that exists on disk by
  // scanning the base's directory for the marker prefix.
  const fs::path base_path{base};
  const fs::path dir =
      base_path.has_parent_path() ? base_path.parent_path() : fs::path{"."};
  const std::string prefix = base_path.filename().string() + "-00000-of-";
  const std::string suffix = std::string{"."} + ext;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const unsigned long long count = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || count == 0) continue;
    return fmt == Format::kCsv
               ? bugtraq::shard_paths(base, static_cast<std::size_t>(count))
               : bugtraq::colsnap_shard_paths(base,
                                              static_cast<std::size_t>(count));
  }
  std::fprintf(stderr, "error: no shard files found for '%s' (.%s)\n",
               base.c_str(), ext);
  std::exit(1);
}

bugtraq::Database load(const std::string& base, Format fmt) {
  const auto paths = discover_shards(base, fmt);
  return fmt == Format::kCsv ? bugtraq::read_csv_shards(paths)
                             : bugtraq::read_colsnap_shards(paths);
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Deterministic stats JSON: map iteration order is sorted, every count
/// is exact, and nothing here depends on the thread pool or the source
/// format — the property the CI job byte-compares.
std::string stats_json(const bugtraq::Database& db) {
  const auto snap = db.snapshot();
  std::string out = "{\n";
  out += "  \"records\": " + std::to_string(snap->size()) + ",\n";
  out += "  \"software_packages\": " + std::to_string(snap->software_count()) +
         ",\n";
  const auto object = [&out](const char* name, const auto& counts,
                             auto&& key_of, bool last = false) {
    out += std::string{"  \""} + name + "\": {";
    bool first = true;
    for (const auto& [key, n] : counts) {
      if (!first) out += ",";
      first = false;
      out += "\n    \"";
      append_json_escaped(out, key_of(key));
      out += "\": " + std::to_string(n);
    }
    out += first ? "},\n" : "\n  },\n";
    if (last) {
      out.erase(out.size() - 2, 1);  // drop the trailing comma
    }
  };
  object("by_category", snap->count_by_category(),
         [](bugtraq::Category c) { return std::string{to_string(c)}; });
  object("by_class", snap->count_by_class(),
         [](bugtraq::VulnClass c) { return std::string{to_string(c)}; });
  object("by_year", snap->count_by_year(),
         [](int year) { return std::to_string(year); });
  object("by_software", snap->count_by_software(),
         [](const std::string& name) { return name; }, /*last=*/true);
  out += "}\n";
  return out;
}

void pin_threads(const std::string& threads) {
  if (threads.empty()) return;
  runtime::ThreadPool::set_global_threads(
      static_cast<std::size_t>(parse_u64(threads)));
}

int cmd_gen(std::map<std::string, std::string> flags, const char* argv0) {
  const std::string out = take(flags, "out", "");
  const std::size_t n =
      static_cast<std::size_t>(parse_u64(take(flags, "n", "100000")));
  const std::uint64_t seed = parse_u64(take(flags, "seed", "42"));
  const std::size_t shards =
      static_cast<std::size_t>(parse_u64(take(flags, "shards", "8")));
  const std::string format = take(flags, "format", "both");
  const bool quiet = !take(flags, "quiet", "").empty();
  reject_unknown(flags, argv0);
  if (out.empty()) die_usage("gen needs --out BASE", argv0);
  if (format != "csv" && format != "colsnap" && format != "both") {
    die_usage("--format must be csv, colsnap, or both", argv0);
  }

  const auto db = bugtraq::synthetic_corpus_n(n, seed);
  std::size_t files = 0;
  if (format != "colsnap") files += bugtraq::write_csv_shards(db, out, shards).size();
  if (format != "csv") files += bugtraq::write_colsnap_shards(db, out, shards).size();
  if (!quiet) {
    std::printf("wrote %zu records as %zu %s shard files under %s\n", db.size(),
                files, format.c_str(), out.c_str());
  }
  return 0;
}

int cmd_convert(std::map<std::string, std::string> flags, const char* argv0) {
  const std::string in = take(flags, "in", "");
  const std::string out = take(flags, "out", "");
  const std::string shards_flag = take(flags, "shards", "");
  const std::string to = take(flags, "to", "");
  reject_unknown(flags, argv0);
  if (in.empty() || out.empty()) die_usage("convert needs --in and --out", argv0);

  const auto [base, fmt] = split_input(in, argv0);
  const auto in_paths = discover_shards(base, fmt);
  const std::size_t shards =
      shards_flag.empty() ? in_paths.size()
                          : static_cast<std::size_t>(parse_u64(shards_flag));
  Format target = fmt == Format::kCsv ? Format::kColsnap : Format::kCsv;
  if (to == "csv") target = Format::kCsv;
  else if (to == "colsnap") target = Format::kColsnap;
  else if (!to.empty()) die_usage("--to must be csv or colsnap", argv0);

  const auto db = fmt == Format::kCsv ? bugtraq::read_csv_shards(in_paths)
                                      : bugtraq::read_colsnap_shards(in_paths);
  const auto out_paths = target == Format::kCsv
                             ? bugtraq::write_csv_shards(db, out, shards)
                             : bugtraq::write_colsnap_shards(db, out, shards);
  std::printf("converted %zu records: %zu %s shards -> %zu %s shards\n",
              db.size(), in_paths.size(),
              fmt == Format::kCsv ? "csv" : "colsnap", out_paths.size(),
              target == Format::kCsv ? "csv" : "colsnap");
  return 0;
}

int cmd_stats(std::map<std::string, std::string> flags, const char* argv0) {
  const std::string in = take(flags, "in", "");
  const std::string out = take(flags, "out", "");
  pin_threads(take(flags, "threads", ""));
  reject_unknown(flags, argv0);
  if (in.empty()) die_usage("stats needs --in", argv0);

  const auto [base, fmt] = split_input(in, argv0);
  const auto json = stats_json(load(base, fmt));
  if (out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream f{out, std::ios::binary | std::ios::trunc};
    if (!f) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out.c_str());
      return 1;
    }
    f << json;
  }
  return 0;
}

int cmd_verify(std::map<std::string, std::string> flags, const char* argv0) {
  const std::string in = take(flags, "in", "");
  pin_threads(take(flags, "threads", ""));
  reject_unknown(flags, argv0);
  if (in.empty()) die_usage("verify needs --in", argv0);

  const auto [base, fmt] = split_input(in, argv0);
  const auto db = load(base, fmt);
  const auto snap = db.snapshot();

  // The carried histograms must equal a full columnar rebuild...
  if (bugtraq::rebuild_histograms(*snap) != snap->histograms()) {
    std::fprintf(stderr, "FAIL: carried histograms != full rebuild\n");
    return 1;
  }
  // ...and the corpus must round-trip through BOTH formats in memory.
  const auto expected = snap->to_csv();
  const auto bodies = bugtraq::encode_colsnap_shards(*snap, 4);
  const std::vector<std::string> labels(bodies.size(), "<memory>");
  if (bugtraq::decode_colsnap_shards(bodies, labels).to_csv() != expected) {
    std::fprintf(stderr, "FAIL: colsnap round-trip changed the corpus\n");
    return 1;
  }
  if (bugtraq::Database::from_csv(expected).to_csv() != expected) {
    std::fprintf(stderr, "FAIL: csv round-trip changed the corpus\n");
    return 1;
  }
  std::printf(
      "ok: %zu records, histograms exact, csv and colsnap round-trips "
      "byte-identical\n",
      db.size());
  return 0;
}

int cmd_corrupt(std::map<std::string, std::string> flags, const char* argv0) {
  const std::string in = take(flags, "in", "");
  const std::size_t shard =
      static_cast<std::size_t>(parse_u64(take(flags, "shard", "0")));
  const std::string column = take(flags, "column", "year");
  const std::string mode = take(flags, "mode", "checksum");
  reject_unknown(flags, argv0);
  if (in.empty()) die_usage("corrupt needs --in", argv0);
  const auto [base, fmt] = split_input(in, argv0);
  if (fmt != Format::kColsnap) die_usage("corrupt only edits .colsnap inputs", argv0);

  const auto paths = discover_shards(base, Format::kColsnap);
  if (shard >= paths.size()) {
    std::fprintf(stderr, "error: shard %zu out of range (%zu shards)\n", shard,
                 paths.size());
    return 2;
  }
  std::ifstream inf{paths[shard], std::ios::binary};
  std::string bytes{std::istreambuf_iterator<char>{inf},
                    std::istreambuf_iterator<char>{}};
  inf.close();

  if (mode == "epoch") {
    bytes[bugtraq::colsnap_epoch_offset()] = static_cast<char>(
        bytes[bugtraq::colsnap_epoch_offset()] + 1);
  } else {
    const auto refs = bugtraq::colsnap_block_refs(bytes);
    const bugtraq::ColsnapBlockRef* target = nullptr;
    for (const auto& r : refs) {
      if (r.name == column) target = &r;
    }
    if (target == nullptr || target->payload_len == 0) {
      std::fprintf(stderr, "error: no non-empty column '%s' in %s\n",
                   column.c_str(), paths[shard].c_str());
      return 2;
    }
    if (mode == "checksum") {
      bytes[target->payload_offset + target->payload_len / 2] ^= 0x40;
    } else if (mode == "truncate") {
      bytes.resize(target->payload_offset + target->payload_len / 2);
    } else {
      die_usage("--mode must be checksum, truncate, or epoch", argv0);
    }
  }

  std::ofstream outf{paths[shard], std::ios::binary | std::ios::trunc};
  outf << bytes;
  std::printf("corrupted %s (%s, column %s)\n", paths[shard].c_str(),
              mode.c_str(), mode == "epoch" ? "header" : column.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage(argv[0]);
    return 0;
  }
  auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(std::move(flags), argv[0]);
    if (cmd == "convert") return cmd_convert(std::move(flags), argv[0]);
    if (cmd == "stats") return cmd_stats(std::move(flags), argv[0]);
    if (cmd == "verify") return cmd_verify(std::move(flags), argv[0]);
    if (cmd == "corrupt") return cmd_corrupt(std::move(flags), argv[0]);
  } catch (const std::exception& ex) {
    // Loader refusals ("<file>:<column>: <reason>") and I/O errors.
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  die_usage("unknown command '" + cmd + "'", argv[0]);
}
