// dfsm_lint — static model verifier CLI (DESIGN.md §7).
//
// Lints the curated model registry (or a --models subset) against the
// staticlint rule set without evaluating a single object, and emits the
// findings as text, JSON, or SARIF 2.1.0 for GitHub code scanning.
//
//   dfsm_lint                          # lint everything, human-readable
//   dfsm_lint --models Sendmail,IIS    # substring-filtered subset
//   dfsm_lint --rules LM001,LM002     # Lemma-consistency rules only
//   dfsm_lint --format sarif --out dfsm_lint.sarif
//   dfsm_lint --list-rules
//
// Exit codes: 0 = clean (below the --fail-on threshold), 1 = findings
// at or above the threshold, 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "staticlint/baseline.h"
#include "staticlint/emit.h"
#include "staticlint/linter.h"
#include "staticlint/registry.h"

namespace {

using dfsm::staticlint::LintModel;
using dfsm::staticlint::LintOptions;
using dfsm::staticlint::Severity;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --models <csv>   lint only models whose name contains one of\n"
      << "                   the given substrings (default: all curated)\n"
      << "  --rules <csv>    run only the given rule ids (default: all)\n"
      << "  --format <f>     text | json | sarif  (default: text)\n"
      << "  --out <file>     write the report to <file> instead of stdout\n"
      << "  --fail-on <s>    error | warning | never  (default: warning)\n"
      << "  --baseline <f>   SARIF file of known findings; only findings\n"
      << "                   NOT in the baseline count toward --fail-on\n"
      << "  --threads <n>    worker threads (default: DFSM_THREADS)\n"
      << "  --list-rules     print the rule table and exit\n"
      << "  --list-models    print the curated model names and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_filters;
  LintOptions options;
  std::string format = "text";
  std::string out_path;
  std::string fail_on = "warning";
  std::string baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--models") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      model_filters = split_csv(v);
    } else if (arg == "--rules") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.rule_ids = split_csv(v);
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      format = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--fail-on") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fail_on = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      dfsm::runtime::ThreadPool::set_global_threads(
          static_cast<std::size_t>(std::stoul(v)));
    } else if (arg == "--list-rules") {
      for (const auto& r : dfsm::staticlint::all_rules()) {
        std::cout << r.info.id << "  [" << r.info.group << ", "
                  << to_string(r.info.severity) << "]  " << r.info.summary
                  << "\n";
      }
      return 0;
    } else if (arg == "--list-models") {
      for (const auto& m : dfsm::staticlint::curated_lint_models()) {
        std::cout << m.name << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "unknown format: " << format << "\n";
    return usage(argv[0]);
  }
  if (fail_on != "error" && fail_on != "warning" && fail_on != "never") {
    std::cerr << "unknown --fail-on value: " << fail_on << "\n";
    return usage(argv[0]);
  }

  std::vector<LintModel> models;
  for (auto& m : dfsm::staticlint::curated_lint_models()) {
    if (!model_filters.empty()) {
      bool selected = false;
      for (const auto& f : model_filters) {
        if (m.name.find(f) != std::string::npos) {
          selected = true;
          break;
        }
      }
      if (!selected) continue;
    }
    models.push_back(std::move(m));
  }
  if (models.empty()) {
    std::cerr << "no curated model matches the --models filter\n";
    return 2;
  }

  dfsm::staticlint::LintRun run;
  try {
    run = dfsm::staticlint::lint(models, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::string report;
  if (format == "json") {
    report = dfsm::staticlint::emit_json(run);
  } else if (format == "sarif") {
    report = dfsm::staticlint::emit_sarif(run);
  } else {
    report = dfsm::staticlint::emit_text(run);
  }

  if (out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << report;
    std::cerr << "dfsm_lint: wrote " << out_path << " (" << run.errors()
              << " error(s), " << run.warnings() << " warning(s))\n";
  }

  // The --fail-on gate counts fresh findings only: with a baseline,
  // known findings are reported but never fail the run.
  std::size_t gate_errors = run.errors();
  std::size_t gate_warnings = run.warnings();
  if (!baseline_path.empty()) {
    std::ifstream in{baseline_path};
    if (!in) {
      std::cerr << "cannot open baseline " << baseline_path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    dfsm::staticlint::Baseline baseline;
    try {
      baseline = dfsm::staticlint::Baseline::from_sarif(buf.str());
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad baseline " << baseline_path << ": " << e.what()
                << "\n";
      return 2;
    }
    const auto split = dfsm::staticlint::apply_baseline(run, baseline);
    gate_errors = gate_warnings = 0;
    for (const auto& d : split.fresh) {
      if (d.severity == Severity::kError) ++gate_errors;
      if (d.severity == Severity::kWarning) ++gate_warnings;
    }
    std::cerr << "dfsm_lint: baseline suppressed " << split.suppressed.size()
              << " known finding(s), " << split.fresh.size() << " fresh\n";
  }

  if (fail_on == "never") return 0;
  if (gate_errors > 0) return 1;
  if (fail_on == "warning" && gate_warnings > 0) return 1;
  return 0;
}
