#!/usr/bin/env bash
# run_benches.sh — run every bench binary with JSON output and merge the
# results into one BENCH_runtime.json at the repo root, seeding the perf
# trajectory the ROADMAP asks every PR to extend.
#
# Usage: tools/run_benches.sh [build_dir] [output.json]
#   build_dir   default: build
#   output.json default: BENCH_runtime.json
#
# Extra google-benchmark flags can be passed via DFSM_BENCH_FLAGS, e.g.
#   DFSM_BENCH_FLAGS='--benchmark_filter=BM_Corpus.*' tools/run_benches.sh
#
# Each benchmark runs DFSM_BENCH_REPETITIONS times (default 3) and only
# the aggregates (median/mean/stddev) are emitted — the regression gate
# compares medians, which shrugs off a single noisy repetition. A bench
# binary that exits non-zero is retried once before it fails the run
# (shared CI machines occasionally hiccup a process for reasons that
# have nothing to do with the code under test).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_runtime.json}"
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
  echo "error: bench dir '$bench_dir' not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

repetitions="${DFSM_BENCH_REPETITIONS:-3}"

run_one() {
  # Artifact text goes to stdout before the benchmarks; route JSON to a
  # file so the merge only sees benchmark output.
  "$1" --benchmark_format=json \
       --benchmark_out="$tmp_dir/$2.json" \
       --benchmark_out_format=json \
       --benchmark_repetitions="$repetitions" \
       --benchmark_report_aggregates_only=true \
       ${DFSM_BENCH_FLAGS:-} > "$tmp_dir/$2.artifact.txt"
}

found=0
failed=()
for bin in "$bench_dir"/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name" >&2
  # A failing binary gets one retry; a second failure must fail the
  # whole run (after every binary has had its turn) — merging partial
  # JSON would silently report a shrunken benchmark set.
  if ! run_one "$bin" "$name"; then
    echo "warning: $name exited non-zero, retrying once" >&2
    rm -f "$tmp_dir/$name.json"
    if ! run_one "$bin" "$name"; then
      echo "error: $name exited non-zero twice" >&2
      failed+=("$name")
      rm -f "$tmp_dir/$name.json"
      continue
    fi
  fi
  found=$((found + 1))
done

if [ "${#failed[@]}" -gt 0 ]; then
  echo "error: ${#failed[@]} bench binaries failed: ${failed[*]}" >&2
  echo "error: refusing to merge partial results into $out_json" >&2
  exit 1
fi

if [ "$found" -eq 0 ]; then
  echo "error: no bench_* binaries in $bench_dir" >&2
  exit 1
fi

python3 - "$out_json" "$tmp_dir"/bench_*.json <<'EOF'
import json, sys

out_path, paths = sys.argv[1], sys.argv[2:]
merged = {"context": None, "benchmarks": []}
for path in sorted(paths):
    with open(path) as f:
        text = f.read()
    if not text.strip():
        # A binary whose every benchmark was filtered out writes nothing.
        continue
    doc = json.loads(text)
    if merged["context"] is None:
        merged["context"] = doc.get("context", {})
    binary = path.rsplit("/", 1)[-1].removesuffix(".json")
    for bench in doc.get("benchmarks", []):
        bench["binary"] = binary
        merged["benchmarks"].append(bench)

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmarks "
      f"from {len(paths)} binaries")
EOF
