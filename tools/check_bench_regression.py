#!/usr/bin/env python3
"""Compare a fresh tools/run_benches.sh run against the committed baseline.

The gate watches two kinds of benchmark pairs:

* serial-vs-parallel families that run with a worker-count argument of 1
  and again with >1 workers, e.g. ``BM_CorpusSweepScaled/1/1000000`` vs
  ``BM_CorpusSweepScaled/4/1000000``;
* cross-name algorithm pairs following the suffix convention: a family
  ``<Stem><ref-suffix>`` is the reference arm and ``<Stem><eng-suffix>``
  the engine arm of the same stem, regardless of arguments. The pair
  table (``SUFFIX_PAIRS``) currently gates ``FullSweeps``/``Incremental``
  (e.g. ``BM_DefenseRankFullSweeps`` vs ``BM_DefenseRankIncremental``),
  ``Unmonitored``/``Monitored`` (the loadgen monitor-overhead pair),
  ``LintCurated``/``LintMemoized`` (the incremental-lint cache-hit pair),
  ``HistogramRebuild``/``HistogramIncremental`` (the corpus-service
  incremental-histogram pair, >= 10x floor), and
  ``CsvReload``/``SnapshotReload`` (the binary-snapshot reload pair,
  >= 5x floor).

For every pair present in both runs it compares the *speedup* (reference
median real_time / engine median real_time) — a ratio, so the check is
stable across machines of different absolute speed — and fails when a
fresh speedup drops more than ``--threshold`` (default 25%) below the
baseline's. Pairs present only in the fresh run BOOTSTRAP: they are
reported and recorded, never failed — committing the fresh JSON as the
new baseline is what arms the gate for them.

A pair spec may additionally carry an absolute ``min_speedup`` floor.
Floors encode an invariant rather than a trend — e.g. the runtime
monitor may at most double the per-request cost, so the
``Unmonitored``/``Monitored`` speedup must stay >= 0.5 — and are
enforced on every fresh run, including bootstrap runs that have no
baseline yet.

Usage:
  tools/check_bench_regression.py \
      --baseline BENCH_runtime.json --fresh BENCH_fresh.json \
      [--threshold 0.25] [--report report.md]

Exit status: 0 = no regression (or nothing comparable), 1 = regression,
2 = bad invocation/input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from collections import defaultdict


# Cross-name pairing convention: "<Stem><suffix>" benchmarks form one
# pair per stem. Each spec is (reference suffix, engine suffix,
# absolute min speedup or None). A floor, when set, is enforced on every
# fresh run — even while the pair is still bootstrapping — because it
# encodes an invariant (monitor overhead <= 2x) rather than a trend.
#
# Order matters: the first matching suffix wins, so a longer suffix that
# embeds a shorter one ("HistogramIncremental" ends with "Incremental")
# must come before the shorter spec.
SUFFIX_PAIRS = (
    # Corpus-service invariants: the incremental histogram fold beats a
    # full rebuild >= 10x at 10^6 records, and binary snapshot reload
    # beats the sharded-CSV parse >= 5x (DESIGN.md §15).
    ("HistogramRebuild", "HistogramIncremental", 10.0),
    ("CsvReload", "SnapshotReload", 5.0),
    ("FullSweeps", "Incremental", None),
    ("Unmonitored", "Monitored", 0.5),
    # Deliberately the long suffixes: a bare "Memoized" would also match
    # the thread-parameterized BM_LemmaSweepMemoized family and reroute
    # it off its serial-vs-parallel gate.
    ("LintCurated", "LintMemoized", None),
    ("ExploreExhaustive", "ExploreSampled", None),
)


def suffix_side(base):
    """Returns (stem, side, pair_spec) for a paired name, else None."""
    for spec in SUFFIX_PAIRS:
        ref, eng, _floor = spec
        for suffix, side in ((ref, "serial"), (eng, "parallel")):
            if base.endswith(suffix) and len(base) > len(suffix):
                return base[: -len(suffix)], side, spec
    return None


def load_benchmarks(path):
    """Returns {pair_key: {"serial": [times], "parallel": [times], ...}}.

    pair_key identifies a pair family: (binary, base name, non-thread
    args). For thread-parameterized families the first numeric path
    segment of a benchmark name is the worker-count argument; trailing
    non-numeric segments (real_time, process_time) are ignored. For
    suffix-convention families (see SUFFIX_PAIR) the two differently
    named arms merge under their common stem and every argument is part
    of the key. When a run carries median aggregates (run_benches.sh
    runs 3 repetitions and reports aggregates only), ONLY those medians
    feed the comparison; raw per-repetition iterations are used as the
    fallback for older single-run baselines.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")

    def side_bucket():
        return {"agg": [], "raw": []}

    groups = defaultdict(lambda: {"serial": side_bucket(),
                                  "parallel": side_bucket(), "unit": None,
                                  "floor": None})
    for bench in doc.get("benchmarks", []):
        run_type = bench.get("run_type", "iteration")
        if run_type == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            bucket = "agg"
        else:
            bucket = "raw"
        # Aggregates append "_median" to name; run_name is the bare
        # benchmark path either way.
        name = bench.get("run_name") or bench.get("name", "")
        segments = name.split("/")
        base, args = segments[0], []
        for seg in segments[1:]:
            try:
                args.append(int(seg))
            except ValueError:
                pass  # real_time / process_time suffixes
        paired = suffix_side(base)
        floor = None
        if paired is not None:
            stem, side, (ref, eng, floor) = paired
            key = (bench.get("binary", ""),
                   stem + "{" + ref + " vs " + eng + "}", tuple(args))
        else:
            if not args:
                continue  # neither thread-parameterized nor suffix-paired
            threads, rest = args[0], tuple(args[1:])
            key = (bench.get("binary", ""), base, rest)
            side = "serial" if threads == 1 else "parallel"
        groups[key][side][bucket].append(float(bench["real_time"]))
        groups[key]["unit"] = bench.get("time_unit", "ns")
        if floor is not None:
            groups[key]["floor"] = floor

    out = {}
    for key, g in groups.items():
        serial = g["serial"]["agg"] or g["serial"]["raw"]
        parallel = g["parallel"]["agg"] or g["parallel"]["raw"]
        if serial and parallel:
            out[key] = {"serial": serial, "parallel": parallel,
                        "unit": g["unit"], "floor": g["floor"]}
    return out


def speedup(group):
    return statistics.median(group["serial"]) / statistics.median(group["parallel"])


def fmt_key(key):
    binary, base, rest = key
    name = base + "".join(f"/{a}" for a in rest)
    return f"{binary}:{name}" if binary else name


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_runtime.json")
    ap.add_argument("--fresh", required=True,
                    help="freshly produced merged bench JSON")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional speedup drop (default 0.25)")
    ap.add_argument("--report", default=None,
                    help="write a markdown comparison report here")
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    common = sorted(set(baseline) & set(fresh))
    only_baseline = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))

    rows = []
    regressions = []
    for key in common:
        base_sp = speedup(baseline[key])
        fresh_sp = speedup(fresh[key])
        # Fresh speedup may not drop more than threshold below baseline.
        floor = base_sp * (1.0 - args.threshold)
        regressed = fresh_sp < floor
        rows.append((key, base_sp, fresh_sp, regressed))
        if regressed:
            regressions.append((key, base_sp, fresh_sp))

    # Absolute floors bind every fresh pair that declares one — common
    # AND bootstrapping — because they encode invariants, not trends.
    floor_failures = []
    for key in sorted(fresh):
        min_sp = fresh[key].get("floor")
        if min_sp is not None and speedup(fresh[key]) < min_sp:
            floor_failures.append((key, min_sp, speedup(fresh[key])))

    lines = ["# Bench regression report", ""]
    lines.append(f"Baseline: `{args.baseline}` — fresh: `{args.fresh}` — "
                 f"threshold: {args.threshold:.0%} speedup drop")
    lines.append("")
    if rows:
        lines.append("| benchmark pair | baseline speedup | "
                     "fresh speedup | status |")
        lines.append("|---|---|---|---|")
        for key, base_sp, fresh_sp, regressed in rows:
            status = "**REGRESSED**" if regressed else "ok"
            lines.append(f"| `{fmt_key(key)}` | {base_sp:.2f}x | "
                         f"{fresh_sp:.2f}x | {status} |")
    else:
        lines.append("No benchmark pairs common to both runs.")
    if only_baseline:
        lines.append("")
        lines.append("Only in baseline (not gated): " +
                     ", ".join(f"`{fmt_key(k)}`" for k in only_baseline))
    if only_fresh:
        # A brand-new pair has no baseline to regress against: record it,
        # don't fail (absolute floors still bind). Committing the fresh
        # JSON arms the trend gate next run.
        lines.append("")
        lines.append("Bootstrapping (new pair, recorded but not "
                     "trend-gated until a baseline is committed): " +
                     ", ".join(f"`{fmt_key(k)}` at "
                               f"{speedup(fresh[k]):.2f}x"
                               for k in only_fresh))
    if floor_failures:
        lines.append("")
        lines.append("Absolute floor violations: " +
                     ", ".join(f"`{fmt_key(k)}` at {sp:.2f}x "
                               f"(floor {fl:.2f}x)"
                               for k, fl, sp in floor_failures))
    report = "\n".join(lines) + "\n"

    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    print(report)

    if regressions:
        print(f"FAIL: {len(regressions)} pair(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for key, base_sp, fresh_sp in regressions:
            print(f"  {fmt_key(key)}: {base_sp:.2f}x -> {fresh_sp:.2f}x",
                  file=sys.stderr)
    if floor_failures:
        print(f"FAIL: {len(floor_failures)} pair(s) below their absolute "
              "speedup floor:", file=sys.stderr)
        for key, min_sp, fresh_sp in floor_failures:
            print(f"  {fmt_key(key)}: {fresh_sp:.2f}x < floor {min_sp:.2f}x",
                  file=sys.stderr)
    if regressions or floor_failures:
        return 1
    msg = f"OK: {len(rows)} benchmark pair(s) within threshold."
    if only_fresh:
        msg += (f" {len(only_fresh)} new pair(s) bootstrapping "
                "(no baseline yet).")
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
