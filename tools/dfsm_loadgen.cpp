// dfsm_loadgen — the monitored-server traffic engine CLI: drive a seeded
// benign/exploit request mix through the NULL HTTPD / GHTTPD / IIS
// replicas with the runtime predicate monitor attached per connection.
//
//   dfsm_loadgen --requests 50000 --exploit-ratio 0.05 --seed 7
//                --format json --out load.json
//
// The report (text or JSON) is a pure function of the workload — run it
// at DFSM_THREADS 0 and 4 and the bytes match, which is exactly what the
// CI load-smoke job checks. Wall-clock throughput goes to stderr only,
// so it never perturbs the byte-compared report. Exit status: 0 = ok,
// 1 = the monitor missed at least one exploit (false negative) and
// --allow-fn was not given, 2 = bad invocation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "loadgen/corpus_traffic.h"
#include "loadgen/engine.h"
#include "loadgen/report.h"
#include "runtime/thread_pool.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --requests N        total requests across all agents (default 10000)\n"
      "  --agents N          simulated concurrent agents (default 32)\n"
      "  --seed S            workload seed (default 1)\n"
      "  --exploit-ratio R   exploit share, decimal in [0,1] (default 0.05)\n"
      "  --servers LIST      comma list of nullhttpd-5774,nullhttpd-6255,\n"
      "                      ghttpd,iis — or 'all' (default all)\n"
      "  --no-monitor        detach the runtime monitor (overhead baseline)\n"
      "  --capture N         keep the first N exploit requests as samples\n"
      "  --format F          text | json (default text)\n"
      "  --out FILE          write the report to FILE instead of stdout\n"
      "  --threads T         worker threads (default: DFSM_THREADS / hardware)\n"
      "  --allow-fn          do not fail the run on false negatives\n"
      "  --quiet             suppress the stderr wall-clock summary\n"
      "  --corpus-traffic N  instead of server traffic, hammer the corpus\n"
      "                      service: ingest N records in batches while\n"
      "                      reader threads validate snapshot isolation\n"
      "                      (exit 1 on any violation)\n"
      "  --corpus-batch B    records per published batch (default 500)\n"
      "  --corpus-readers R  concurrent reader threads (default 4)\n",
      argv0);
}

std::uint64_t parse_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "error: bad number '%s'\n", s);
    std::exit(2);
  }
  return v;
}

std::vector<dfsm::loadgen::ServerKind> parse_servers(const std::string& list) {
  using dfsm::loadgen::ServerKind;
  if (list == "all") {
    return {ServerKind::kNullHttpd5774, ServerKind::kNullHttpd6255,
            ServerKind::kGhttpd, ServerKind::kIis};
  }
  std::vector<ServerKind> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? comma : comma - start);
    ServerKind kind;
    if (!dfsm::loadgen::server_from_name(name, &kind)) {
      std::fprintf(stderr, "error: unknown server '%s'\n", name.c_str());
      std::exit(2);
    }
    out.push_back(kind);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsm;

  loadgen::EngineOptions options;
  loadgen::CorpusTrafficSpec corpus_spec;
  bool corpus_mode = false;
  std::string format = "text";
  std::string out_path;
  bool allow_fn = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--requests") {
        options.workload.requests = parse_u64(value());
      } else if (arg == "--agents") {
        options.workload.agents = parse_u64(value());
      } else if (arg == "--seed") {
        options.workload.seed = parse_u64(value());
      } else if (arg == "--exploit-ratio") {
        options.workload.exploit_ratio = loadgen::parse_ratio(value());
      } else if (arg == "--servers") {
        options.workload.servers = parse_servers(value());
      } else if (arg == "--no-monitor") {
        options.monitor = false;
      } else if (arg == "--capture") {
        options.capture = static_cast<std::size_t>(parse_u64(value()));
      } else if (arg == "--format") {
        format = value();
        if (format != "text" && format != "json") {
          std::fprintf(stderr, "error: --format wants text|json\n");
          return 2;
        }
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--threads") {
        runtime::ThreadPool::set_global_threads(
            static_cast<std::size_t>(parse_u64(value())));
      } else if (arg == "--corpus-traffic") {
        corpus_mode = true;
        corpus_spec.records = static_cast<std::size_t>(parse_u64(value()));
      } else if (arg == "--corpus-batch") {
        corpus_spec.batch = static_cast<std::size_t>(parse_u64(value()));
      } else if (arg == "--corpus-readers") {
        corpus_spec.readers = static_cast<std::size_t>(parse_u64(value()));
      } else if (arg == "--allow-fn") {
        allow_fn = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
        usage(argv[0]);
        return 2;
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  if (corpus_mode) {
    corpus_spec.seed = options.workload.seed;  // --seed applies here too
    loadgen::CorpusTrafficReport report;
    const auto wall_start = std::chrono::steady_clock::now();
    try {
      report = loadgen::run_corpus_traffic(corpus_spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
    const std::string rendered = loadgen::render_corpus_traffic(report);
    if (out_path.empty()) {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(out_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
        return 2;
      }
      std::fwrite(rendered.data(), 1, rendered.size(), f);
      std::fclose(f);
    }
    if (!quiet) {
      const double secs = static_cast<double>(wall) / 1e6;
      std::fprintf(stderr, "wall: %.2fs for %zu record(s), %zu acquire(s)\n",
                   secs, report.records, report.acquires);
    }
    return report.ok() ? 0 : 1;
  }

  loadgen::LoadReport report;
  const auto wall_start = std::chrono::steady_clock::now();
  try {
    report = loadgen::run_load(options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

  const std::string rendered = format == "json" ? loadgen::render_json(report)
                                                : loadgen::render_text(report);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
      return 2;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
  }

  if (!quiet) {
    // Wall-clock stays OUT of the report so the report bytes are pure.
    const double secs = static_cast<double>(wall) / 1e6;
    std::fprintf(stderr,
                 "wall: %.2fs for %llu requests (%.0f req/s real)\n", secs,
                 static_cast<unsigned long long>(report.total.requests),
                 secs > 0 ? static_cast<double>(report.total.requests) / secs
                          : 0.0);
  }

  if (options.monitor && report.total.false_negatives > 0 && !allow_fn) {
    std::fprintf(stderr,
                 "FAIL: monitor missed %llu exploit request(s) "
                 "(false negatives)\n",
                 static_cast<unsigned long long>(report.total.false_negatives));
    return 1;
  }
  return 0;
}
