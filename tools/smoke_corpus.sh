#!/usr/bin/env bash
# End-to-end smoke of the dfsm_corpus workbench, mirrored by the CI
# corpus-snapshot job: generate a corpus in both formats, byte-compare
# stats JSON across formats AND across thread counts, verify round
# trips, then corrupt one snapshot byte and require the loader to refuse
# with exit 1 and a "<file>:<column>:" message.
set -u

tool="$1"
work="$2"

rm -rf "$work"
mkdir -p "$work"

fail() {
  echo "FAIL: $1"
  exit 1
}

"$tool" gen --n 20000 --seed 42 --out "$work/c" --shards 4 --format both \
  --quiet || fail "gen exited $?"

"$tool" stats --in "$work/c.csv" --out "$work/stats-csv.json" \
  || fail "stats over csv exited $?"
"$tool" stats --in "$work/c.colsnap" --out "$work/stats-snap.json" \
  || fail "stats over colsnap exited $?"
"$tool" stats --in "$work/c.colsnap" --threads 0 \
  --out "$work/stats-t0.json" || fail "stats at --threads 0 exited $?"
"$tool" stats --in "$work/c.colsnap" --threads 4 \
  --out "$work/stats-t4.json" || fail "stats at --threads 4 exited $?"

cmp -s "$work/stats-csv.json" "$work/stats-snap.json" \
  || fail "stats differ between csv and colsnap loads"
cmp -s "$work/stats-t0.json" "$work/stats-t4.json" \
  || fail "stats differ between --threads 0 and --threads 4"

"$tool" verify --in "$work/c.colsnap" >/dev/null || fail "verify exited $?"

# Negative arm: one flipped payload byte must be refused, loudly.
"$tool" corrupt --in "$work/c.colsnap" --shard 1 --mode checksum \
  --column year >/dev/null || fail "corrupt exited $?"
out=$("$tool" stats --in "$work/c.colsnap" 2>&1)
code=$?
if [ "$code" -ne 1 ]; then
  fail "expected exit 1 on corrupt snapshot, got $code"
fi
if ! printf '%s' "$out" | grep -q ":year: checksum mismatch"; then
  echo "$out"
  fail "refusal message does not name the file, column, and reason"
fi

echo "ok: formats agree, thread counts agree, corruption refused with exit 1"
exit 0
