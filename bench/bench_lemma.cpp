// bench_lemma — the §6 Lemma, machine-checked: the full 2^k check-mask
// sweep over every case study (60 configurations), the per-study mask
// tables, and the ablation DESIGN.md §6 calls out (per-activity checks vs
// a single perimeter check); then benchmarks the sweep engine.
#include "bench_common.h"

#include "analysis/chain_analyzer.h"
#include "analysis/defense_matrix.h"
#include "analysis/report.h"
#include "core/table.h"

namespace {

using namespace dfsm;

std::string single_check_ablation(const std::vector<analysis::LemmaReport>& reports) {
  // How many of the k single-check placements already foil the exploit?
  // The paper's Observation 1 says every elementary activity is a
  // checking opportunity; this quantifies how many actually suffice.
  core::TextTable t{{"Case study", "Checks", "Single checks that foil",
                     "Cheapest sufficient set"}};
  t.title("Ablation: per-activity single checks vs the exploit");
  for (const auto& r : reports) {
    // Find the smallest mask (by popcount) that foils.
    std::size_t best_popcount = r.checks.size() + 1;
    std::string best_mask = "-";
    for (const auto& row : r.results) {
      if (row.exploit.exploited) continue;
      std::size_t pop = 0;
      std::string mask;
      for (bool b : row.mask) {
        pop += b ? 1u : 0u;
        mask += b ? '1' : '0';
      }
      if (pop < best_popcount) {
        best_popcount = pop;
        best_mask = mask;
      }
    }
    t.add_row({r.study_name, std::to_string(r.checks.size()),
               std::to_string(r.foiling_single_checks.size()) + "/" +
                   std::to_string(r.checks.size()),
               best_mask + " (" + std::to_string(best_popcount) + " checks)"});
  }
  return t.to_string();
}

void print_artifacts() {
  const auto reports = analysis::sweep_all();
  bench::print_artifact("Lemma verification (all case studies)",
                        analysis::render_lemma(reports));
  bench::print_artifact("Ablation: minimal sufficient check sets",
                        single_check_ablation(reports));
  bench::print_artifact(
      "Defense matrix (§6: StackGuard covers one reference-inconsistency "
      "family; consistency checks cover them all)",
      analysis::render_defense_matrix(analysis::defense_matrix()));
  for (const auto& r : reports) {
    bench::print_artifact("Mask table: " + r.study_name,
                          analysis::render_mask_table(r));
  }
}

void BM_SweepOneStudy(benchmark::State& state) {
  const auto studies = apps::all_case_studies();
  const auto& study = *studies[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto report = analysis::sweep(study);
    benchmark::DoNotOptimize(report.lemma2_holds);
  }
  state.SetLabel(study.name());
}
BENCHMARK(BM_SweepOneStudy)->DenseRange(0, 10)->Unit(benchmark::kMillisecond);

void BM_SweepAll(benchmark::State& state) {
  for (auto _ : state) {
    auto reports = analysis::sweep_all();
    benchmark::DoNotOptimize(reports.size());
  }
  state.SetItemsProcessed(state.iterations() * 72);  // 72 mask configurations
}
BENCHMARK(BM_SweepAll)->Unit(benchmark::kMillisecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
