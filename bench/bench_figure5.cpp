// bench_figure5 — regenerates Figure 5 (the xterm log-file race): the
// model, the exhaustive interleaving enumeration, and a race-window-width
// sweep quantifying how the TOCTOU exposure grows with the gap between
// the check and the open; then benchmarks the interleaving engine.
#include "bench_common.h"

#include "apps/xterm.h"
#include "core/render.h"
#include "core/table.h"

namespace {

using namespace dfsm;

std::string window_sweep(apps::XtermChecks checks) {
  apps::XtermLogger app{checks};
  core::TextTable t{{"Window steps", "Schedules", "Violating", "Fraction"}};
  for (std::size_t w = 0; w <= 6; ++w) {
    const auto r = app.run_race(w);
    char frac[16];
    std::snprintf(frac, sizeof frac, "%.1f%%",
                  100.0 * r.report.violation_fraction());
    t.add_row({std::to_string(w), std::to_string(r.report.total_schedules),
               std::to_string(r.report.violating_schedules), frac});
  }
  return t.to_string();
}

void print_artifacts() {
  bench::print_artifact("Figure 5: xterm Log File Race Condition model",
                        core::to_ascii(apps::XtermLogger::figure5_model()));

  bench::print_artifact(
      "Race-window sweep, vulnerable xterm (pFSM1 secure, pFSM2 hidden path)",
      window_sweep(apps::XtermChecks{}));

  bench::print_artifact(
      "Race-window sweep with the atomic-binding fix (pFSM2 secured)",
      window_sweep(apps::XtermChecks{.write_permission = true,
                                     .atomic_binding = true}));

  // Ablation: a stronger attacker who swaps a pre-staged symlink over the
  // log file with ONE atomic rename — the window only has to admit a
  // single step.
  {
    apps::XtermLogger app;
    core::TextTable t{{"Window steps", "Schedules", "Violating", "Fraction"}};
    for (std::size_t w = 0; w <= 6; ++w) {
      const auto r = app.run_race_atomic(w);
      char frac[16];
      std::snprintf(frac, sizeof frac, "%.1f%%",
                    100.0 * r.report.violation_fraction());
      t.add_row({std::to_string(w), std::to_string(r.report.total_schedules),
                 std::to_string(r.report.violating_schedules), frac});
    }
    bench::print_artifact(
        "Ablation: single-step rename(2) attacker (pre-staged symlink)",
        t.to_string());
  }

  // The one violating schedule, narrated.
  apps::XtermLogger app;
  const auto r = app.run_race(0);
  for (const auto& o : r.report.outcomes) {
    if (!o.violated) continue;
    std::string order;
    for (const auto& s : o.order) order += "  " + s + "\n";
    bench::print_artifact("The violating schedule (window 0)", order);
    break;
  }
}

void BM_RaceEnumeration(benchmark::State& state) {
  apps::XtermLogger app;
  const auto w = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = app.run_race(w);
    benchmark::DoNotOptimize(r.report.violating_schedules);
  }
  apps::XtermLogger probe;
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(probe.run_race(w).report.total_schedules));
  state.counters["schedules"] =
      static_cast<double>(probe.run_race(w).report.total_schedules);
}
BENCHMARK(BM_RaceEnumeration)->Arg(0)->Arg(3)->Arg(6)
    ->Unit(benchmark::kMicrosecond);

void BM_FileSystemFork(benchmark::State& state) {
  apps::XtermLogger app;
  const auto world = app.initial_world();
  for (auto _ : state) {
    auto copy = world;
    benchmark::DoNotOptimize(copy.stat("/etc/passwd").ok());
  }
}
BENCHMARK(BM_FileSystemFork);

void BM_BenignLogging(benchmark::State& state) {
  apps::XtermLogger app;
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.run_benign());
  }
}
BENCHMARK(BM_BenignLogging)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
