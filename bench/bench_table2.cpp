// bench_table2 — regenerates Table 2 (the classification of every pFSM by
// generic type across the seven case studies), generated live from the
// registered models; then benchmarks the table generation path.
#include "bench_common.h"

#include "analysis/report.h"
#include "apps/models.h"
#include "core/table.h"

namespace {

using namespace dfsm;

void print_artifacts() {
  const auto models = apps::standard_models();
  bench::print_artifact("Table 2: Types of pFSMs", analysis::render_table2(models));

  // The secure/vulnerable declaration audit behind the table.
  core::TextTable t{{"Model", "pFSMs", "Declared vulnerable", "Declared secure"}};
  t.title("Implementation-status audit per model");
  for (const auto& m : models) {
    t.add_row({m.name(), std::to_string(m.pfsm_count()),
               std::to_string(m.declared_vulnerable_count()),
               std::to_string(m.pfsm_count() - m.declared_vulnerable_count())});
  }
  bench::print_artifact("Audit", t.to_string());
}

void BM_RenderTable2(benchmark::State& state) {
  const auto models = apps::standard_models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::render_table2(models).size());
  }
}
BENCHMARK(BM_RenderTable2)->Unit(benchmark::kMicrosecond);

void BM_RenderTable1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::render_table1().size());
  }
}
BENCHMARK(BM_RenderTable1)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
