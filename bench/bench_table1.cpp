// bench_table1 — regenerates Table 1 (the category-ambiguity table for
// the three signed-integer-overflow reports) plus an ambiguity census
// over the curated records, then benchmarks the classifier.
#include "bench_common.h"

#include "analysis/report.h"
#include "bugtraq/classifier.h"
#include "bugtraq/corpus.h"
#include "bugtraq/curated.h"
#include "core/table.h"

namespace {

using namespace dfsm;

void print_artifacts() {
  bench::print_artifact("Table 1: Ambiguity among vulnerability categories",
                        analysis::render_table1());

  // Extension: ambiguity census across every curated record.
  const auto db = bugtraq::curated_records();
  core::TextTable t{{"Record", "Plausible categories", "Ambiguous"}};
  t.title("Activity-level ambiguity across the curated paper records");
  for (const auto& r : db.records()) {
    std::string cats;
    for (const auto c : bugtraq::plausible_categories(r)) {
      if (!cats.empty()) cats += "; ";
      cats += to_string(c);
    }
    t.add_row({(r.id != 0 ? "#" + std::to_string(r.id) + " " : "") + r.software,
               cats.empty() ? "-" : cats,
               bugtraq::classification_ambiguous(r) ? "yes" : "no"});
  }
  bench::print_artifact("Ambiguity census", t.to_string());
}

void BM_ClassifyActivity(benchmark::State& state) {
  const auto rows = bugtraq::table1_records();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = rows[i++ % rows.size()];
    benchmark::DoNotOptimize(bugtraq::category_for_activity(
        r.activities[static_cast<std::size_t>(r.reference_activity)]));
  }
}
BENCHMARK(BM_ClassifyActivity);

void BM_PlausibleCategories(benchmark::State& state) {
  const auto db = bugtraq::curated_records();
  for (auto _ : state) {
    for (const auto& r : db.records()) {
      auto cats = bugtraq::plausible_categories(r);
      benchmark::DoNotOptimize(cats.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_PlausibleCategories)->Unit(benchmark::kMicrosecond);

void BM_ConsistencyCheckOverCorpus(benchmark::State& state) {
  auto db = bugtraq::synthetic_corpus();
  db.merge(bugtraq::curated_records());
  for (auto _ : state) {
    std::size_t consistent = 0;
    for (const auto& r : db.records()) {
      if (bugtraq::classification_consistent(r)) ++consistent;
    }
    benchmark::DoNotOptimize(consistent);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_ConsistencyCheckOverCorpus)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
