// bench_figure1 — regenerates Figure 1 (the breakdown of the 5925 Bugtraq
// vulnerabilities over the 12 categories) and the §1 "studied classes are
// 22% of the database" claim, then benchmarks the corpus generator and
// the statistics engine.
#include "bench_common.h"

#include "bugtraq/corpus.h"
#include "bugtraq/stats.h"
#include "core/table.h"

namespace {

using namespace dfsm;

void print_artifacts() {
  const auto db = bugtraq::synthetic_corpus();
  bench::print_artifact(
      "Figure 1: Breakdown of Vulnerabilities (Bugtraq, 2002-11-30)",
      bugtraq::render_figure1(db));

  const auto share = bugtraq::studied_share(db);
  core::TextTable t{{"Studied class", "Count", "Share of database"}};
  t.title("Coverage of the studied vulnerability classes (paper claim: 22%)");
  for (const auto& c : share.classes) {
    t.add_row({to_string(c.vuln_class), std::to_string(c.count),
               core::pct(static_cast<double>(c.count),
                         static_cast<double>(share.total))});
  }
  t.add_row({"TOTAL (studied)", std::to_string(share.studied_count),
             core::pct(static_cast<double>(share.studied_count),
                       static_cast<double>(share.total))});
  bench::print_artifact("Studied-class coverage", t.to_string());

  const auto split = bugtraq::remote_local_split(db);
  std::printf("Remote/local split: %zu remote, %zu local\n\n", split.remote,
              split.local);

  // Longitudinal + per-software cuts (the follow-on analyses §7 suggests).
  core::TextTable years{{"Year", "Reports"}};
  years.title("Reports per discovery year");
  for (const auto& y : bugtraq::by_year(db)) {
    years.add_row({std::to_string(y.year), std::to_string(y.count)});
  }
  bench::print_artifact("By-year cut", years.to_string());

  core::TextTable top{{"Software", "Reports"}};
  top.title("Most-reported software (top 8)");
  for (const auto& s : bugtraq::top_software(db, 8)) {
    top.add_row({s.software, std::to_string(s.count)});
  }
  bench::print_artifact("Per-software cut", top.to_string());
}

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto db = bugtraq::synthetic_corpus(static_cast<std::uint64_t>(state.iterations()));
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bugtraq::kBugtraqSize2002));
}
BENCHMARK(BM_CorpusGeneration)->Unit(benchmark::kMillisecond);

void BM_CategoryBreakdown(benchmark::State& state) {
  const auto db = bugtraq::synthetic_corpus();
  for (auto _ : state) {
    auto shares = bugtraq::category_breakdown(db);
    benchmark::DoNotOptimize(shares.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_CategoryBreakdown)->Unit(benchmark::kMicrosecond);

void BM_StudiedShare(benchmark::State& state) {
  const auto db = bugtraq::synthetic_corpus();
  for (auto _ : state) {
    auto share = bugtraq::studied_share(db);
    benchmark::DoNotOptimize(share.percent);
  }
}
BENCHMARK(BM_StudiedShare)->Unit(benchmark::kMicrosecond);

void BM_CsvRoundTrip(benchmark::State& state) {
  const auto db = bugtraq::synthetic_corpus();
  const auto csv = db.to_csv();
  for (auto _ : state) {
    auto restored = bugtraq::Database::from_csv(csv);
    benchmark::DoNotOptimize(restored.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(csv.size()));
}
BENCHMARK(BM_CsvRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
