// bench_figure7 — regenerates Figure 7 (IIS superfluous filename
// decoding): the model, an encoded-payload corpus showing exactly which
// probes pass the shipped check and escape the CGI root, the fix matrix,
// and the rpc.statd format-string companion rows; then benchmarks the
// decoder and the statd exploit.
#include "bench_common.h"

#include "apps/fmtfamily.h"
#include "apps/iis.h"
#include "apps/rpcstatd.h"
#include "core/render.h"
#include "core/table.h"
#include "libcsim/format.h"
#include "netsim/decode.h"

namespace {

using namespace dfsm;

std::string probe_corpus() {
  core::TextTable t{{"Encoded filepath", "After 1st decode", "After 2nd decode",
                     "Shipped IIS", "Single decode", "Re-check"}};
  t.title("Encoded path probes against the three configurations");
  const char* probes[] = {
      "hello.cgi",
      "../../winnt/system32/cmd.exe",
      "..%2f..%2fwinnt/system32/cmd.exe",
      "..%252f..%252fwinnt/system32/cmd.exe",
      "..%255cwinnt/system32/cmd.exe",
      "%2e%2e%2fwinnt/system32/cmd.exe",
  };
  for (const char* probe : probes) {
    std::string outcomes[3];
    const apps::IisChecks configs[3] = {
        {}, {.single_decode = true}, {.recheck_after_decode = true}};
    for (int i = 0; i < 3; ++i) {
      apps::IisDecoder app{configs[i]};
      auto fs = app.initial_world();
      const auto r = app.handle_cgi_request(fs, probe);
      outcomes[i] = r.rejected ? "rejected"
                   : r.executed && r.outside_scripts ? "ESCAPED"
                   : r.executed ? "served"
                                : "not found";
    }
    t.add_row({probe, netsim::percent_decode(probe),
               netsim::percent_decode_twice(probe), outcomes[0], outcomes[1],
               outcomes[2]});
  }
  return t.to_string();
}

std::string statd_rows() {
  core::TextTable t{{"Input", "pFSM1 filter", "pFSM2 ret check", "Outcome"}};
  t.title("Companion: rpc.statd #1480 format string (Table 2 row)");
  struct Case {
    const char* label;
    bool exploit;
  } cases[] = {{"/var/lib/nfs/state", false}, {"%x %x %x", false},
               {"<%n exploit payload>", true}};
  for (const auto& c : cases) {
    for (const bool f1 : {false, true}) {
      for (const bool f2 : {false, true}) {
        apps::RpcStatd app{apps::RpcStatdChecks{f1, f2}};
        const std::string input = c.exploit ? app.build_exploit() : c.label;
        const auto r = app.handle_mon_request(input);
        t.add_row({c.label, f1 ? "on" : "off", f2 ? "on" : "off",
                   r.mcode_executed ? "EXPLOITED"
                                    : (r.rejected ? "foiled (" + r.rejected_by + ")"
                                                  : "logged")});
      }
    }
  }
  return t.to_string();
}

std::string fmt_family_rows() {
  // §3.2's point, live: the same root cause (user data as format string)
  // lands in three Bugtraq categories because the analysts anchored on
  // three different elementary activities — and the three profiles really
  // do have different exploit mechanics and different effective fixes.
  core::TextTable t{{"Profile", "Paper category", "Exploit mechanics",
                     "Directive filter", "Bounded expansion",
                     "Ret consistency"}};
  t.title("Format-string family (#1387 / #2210 / #2264)");
  for (const auto p : {apps::FmtProfile::kWuFtpd, apps::FmtProfile::kSplitvt,
                       apps::FmtProfile::kIcecast}) {
    auto outcome = [&p](apps::FmtFamilyChecks checks) {
      apps::FmtFamilyVictim app{p, checks};
      const auto r = app.handle_input(app.build_exploit());
      return std::string(r.mcode_executed ? "EXPLOITED"
                         : r.rejected     ? "foiled"
                                          : "ineffective");
    };
    t.add_row({to_string(p), apps::FmtFamilyVictim::paper_category(p),
               p == apps::FmtProfile::kIcecast ? "literal expansion overflow"
                                               : "%n arbitrary write",
               outcome({.no_format_directives = true}),
               outcome({.bounded_expansion = true}),
               outcome({.ret_consistency = true})});
  }
  return t.to_string();
}

void print_artifacts() {
  bench::print_artifact(
      "Figure 7: IIS Decodes Filenames Superfluously after Applying Security "
      "Checks",
      core::to_ascii(apps::IisDecoder::figure7_model()));
  bench::print_artifact("Probe corpus", probe_corpus());
  bench::print_artifact("rpc.statd companion", statd_rows());
  bench::print_artifact("Format-string family companion", fmt_family_rows());
}

void BM_PercentDecode(benchmark::State& state) {
  const std::string payload = apps::IisDecoder::nimda_payload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::percent_decode(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_PercentDecode);

void BM_IisRequestEndToEnd(benchmark::State& state) {
  apps::IisDecoder app;
  auto fs = app.initial_world();
  for (auto _ : state) {
    auto r = app.handle_cgi_request(fs, apps::IisDecoder::nimda_payload());
    benchmark::DoNotOptimize(r.outside_scripts);
  }
}
BENCHMARK(BM_IisRequestEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_StatdExploitEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    apps::RpcStatd app;
    auto r = app.handle_mon_request(app.build_exploit());
    benchmark::DoNotOptimize(r.mcode_executed);
  }
}
BENCHMARK(BM_StatdExploitEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_FormatEngineOnStatdPayload(benchmark::State& state) {
  apps::RpcStatd app;
  const std::string payload = app.build_exploit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        libcsim::FormatEngine::contains_directives(payload));
  }
}
BENCHMARK(BM_FormatEngineOnStatdPayload);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
