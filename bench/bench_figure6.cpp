// bench_figure6 — regenerates Figure 6 (the Solaris rwall arbitrary file
// corruption): the model and the attack under each check configuration,
// plus a utmp-entry sweep showing which targets the type check saves;
// then benchmarks the daemon.
#include "bench_common.h"

#include "apps/rwall.h"
#include "core/render.h"
#include "core/table.h"

namespace {

using namespace dfsm;

std::string check_matrix() {
  core::TextTable t{{"utmp root-only (pFSM1)", "terminal check (pFSM2)",
                     "utmp tampered", "passwd corrupted"}};
  t.title("rwall: the attack under each check configuration");
  for (const bool c1 : {false, true}) {
    for (const bool c2 : {false, true}) {
      apps::RwallDaemon app{apps::RwallChecks{c1, c2}};
      auto fs = app.initial_world();
      const auto r = app.run_attack(fs, "../etc/passwd",
                                    "evil::0:0::/:/bin/sh\n");
      t.add_row({c1 ? "on" : "off", c2 ? "on" : "off",
                 r.utmp_tampered ? "yes" : "no",
                 r.passwd_corrupted ? "YES" : "no"});
    }
  }
  return t.to_string();
}

std::string entry_sweep() {
  core::TextTable t{{"utmp entry", "resolves to", "no checks", "with pFSM2"}};
  t.title("utmp entry sweep: what the daemon writes to");
  const char* entries[] = {"pts/25", "../etc/passwd", "../etc/shadow",
                           "pts/does-not-exist", "../dev/pts/25"};
  for (const char* entry : entries) {
    std::string unchecked_result = "-";
    std::string checked_result = "-";
    std::string resolved = "-";
    {
      apps::RwallDaemon app;
      auto fs = app.initial_world();
      const auto r = app.run_attack(fs, entry, "msg\n");
      for (const auto& w : r.wrote_to) {
        if (w != "/dev/pts/25" || std::string(entry) == "pts/25" ||
            std::string(entry) == "../dev/pts/25") {
          resolved = w;
        }
      }
      unchecked_result = std::to_string(r.wrote_to.size()) + " writes";
    }
    {
      apps::RwallDaemon app{apps::RwallChecks{false, true}};
      auto fs = app.initial_world();
      const auto r = app.run_attack(fs, entry, "msg\n");
      checked_result = std::to_string(r.wrote_to.size()) + " writes, " +
                       std::to_string(r.skipped.size()) + " refused";
    }
    t.add_row({entry, resolved, unchecked_result, checked_result});
  }
  return t.to_string();
}

void print_artifacts() {
  bench::print_artifact("Figure 6: Solaris Rwall Arbitrary File Corruption model",
                        core::to_ascii(apps::RwallDaemon::figure6_model()));
  bench::print_artifact("Check matrix", check_matrix());
  bench::print_artifact("Entry sweep", entry_sweep());
}

void BM_RwallAttackEndToEnd(benchmark::State& state) {
  apps::RwallDaemon app;
  for (auto _ : state) {
    auto fs = app.initial_world();
    auto r = app.run_attack(fs, "../etc/passwd", "evil\n");
    benchmark::DoNotOptimize(r.passwd_corrupted);
  }
}
BENCHMARK(BM_RwallAttackEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_RwallBenignWall(benchmark::State& state) {
  apps::RwallDaemon app;
  for (auto _ : state) {
    auto fs = app.initial_world();
    auto r = app.run_benign(fs, "system maintenance\n");
    benchmark::DoNotOptimize(r.wrote_to.size());
  }
}
BENCHMARK(BM_RwallBenignWall)->Unit(benchmark::kMicrosecond);

void BM_WorldConstruction(benchmark::State& state) {
  apps::RwallDaemon app;
  for (auto _ : state) {
    auto fs = app.initial_world();
    benchmark::DoNotOptimize(fs.stat("/etc/utmp").ok());
  }
}
BENCHMARK(BM_WorldConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
