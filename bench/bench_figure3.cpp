// bench_figure3 — regenerates Figure 3 (the Sendmail #3163 signed-integer
// overflow model): the model rendering, the exploit walk through the
// pFSMs, the check-matrix showing each elementary activity foils the
// exploit, plus the GHTTPD stack-smash companion rows; then benchmarks
// the sandboxed exploit end-to-end.
#include "bench_common.h"

#include "analysis/monitor.h"
#include "apps/ghttpd.h"
#include "apps/sendmail.h"
#include "core/render.h"
#include "core/table.h"

namespace {

using namespace dfsm;

void print_check_matrix() {
  core::TextTable t{{"pFSM1 (type)", "pFSM2 (range)", "pFSM3 (GOT)",
                     "Exploit outcome", "Detail"}};
  t.title("Sendmail #3163: the published exploit under each check mask");
  for (unsigned mask = 0; mask < 8; ++mask) {
    apps::SendmailChecks checks;
    checks.input_representable = mask & 1;
    checks.index_full_range = mask & 2;
    checks.got_unchanged = mask & 4;
    apps::SendmailTTflag app{checks};
    const auto e = app.build_exploit();
    const auto r = app.run_debug_command(e.str_x, e.str_i);
    t.add_row({checks.input_representable ? "on" : "off",
               checks.index_full_range ? "on" : "off",
               checks.got_unchanged ? "on" : "off",
               r.mcode_executed ? "EXPLOITED" : (r.rejected ? "foiled" : "other"),
               r.detail.substr(0, 52)});
  }
  bench::print_artifact("Per-activity check matrix (Figure 3 semantics)",
                        t.to_string());
}

void print_exploit_walk() {
  apps::SendmailTTflag app;
  const auto e = app.build_exploit();
  analysis::RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  (void)app.run_debug_command(e.str_x, e.str_i);
  (void)monitor.observe(analysis::sendmail_observation(
      e.str_x, e.str_i, app.process().got().unchanged("setuid")));
  bench::print_artifact("Exploit walk through the Figure 3 FSM (trace)",
                        monitor.trace().to_text());
}

void print_ghttpd_rows() {
  core::TextTable t{{"Request length", "Checks", "Outcome"}};
  t.title("Companion: GHTTPD #5960 stack smash (same modeling, Table 2 row)");
  for (const std::size_t len : {20u, 200u, 203u}) {
    for (const bool guard : {false, true}) {
      apps::Ghttpd app{apps::GhttpdChecks{false, guard}};
      const auto payload =
          len == 203 ? app.build_exploit() : std::string(len, 'a');
      const auto r = app.serve(payload);
      t.add_row({std::to_string(payload.size()),
                 guard ? "StackGuard" : "none",
                 r.mcode_executed ? "EXPLOITED"
                                  : (r.rejected ? "foiled" : "served/crash")});
    }
  }
  bench::print_artifact("GHTTPD length sweep", t.to_string());
}

void print_artifacts() {
  bench::print_artifact(
      "Figure 3: Sendmail Debugging Function Signed Integer Overflow",
      core::to_ascii(apps::SendmailTTflag::figure3_model()));
  print_exploit_walk();
  print_check_matrix();
  print_ghttpd_rows();
}

void BM_SendmailExploitEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    apps::SendmailTTflag app;
    const auto e = app.build_exploit();
    auto r = app.run_debug_command(e.str_x, e.str_i);
    benchmark::DoNotOptimize(r.mcode_executed);
  }
}
BENCHMARK(BM_SendmailExploitEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_SendmailBenignCommand(benchmark::State& state) {
  apps::SendmailTTflag app;
  for (auto _ : state) {
    auto r = app.run_debug_command("7", "3");
    benchmark::DoNotOptimize(r.wrote);
  }
}
BENCHMARK(BM_SendmailBenignCommand);

void BM_SendmailModelObservation(benchmark::State& state) {
  analysis::RuntimeMonitor monitor{apps::SendmailTTflag::figure3_model()};
  for (auto _ : state) {
    auto r = monitor.observe(
        analysis::sendmail_observation("4294958848", "7842561", false));
    benchmark::DoNotOptimize(r.exploited());
    monitor.reset();
  }
}
BENCHMARK(BM_SendmailModelObservation);

void BM_GhttpdExploitEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    apps::Ghttpd app;
    auto r = app.serve(app.build_exploit());
    benchmark::DoNotOptimize(r.mcode_executed);
  }
}
BENCHMARK(BM_GhttpdExploitEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
