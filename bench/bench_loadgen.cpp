// bench_loadgen — the monitored-server traffic engine (src/loadgen/):
// what does attaching the runtime predicate monitor to every connection
// cost relative to the bare replicas? Prints a sample load report, then
// benchmarks the monitored and unmonitored arms of the identical
// workload plus the engine's serial-vs-parallel scaling.
#include "bench_common.h"

#include <algorithm>
#include <cstdint>

#include "loadgen/engine.h"
#include "loadgen/report.h"
#include "runtime/thread_pool.h"

namespace {

using namespace dfsm;

/// The CI smoke workload scaled for steady iteration: 20k requests at
/// the 5% exploit mix across all four server replicas.
loadgen::EngineOptions bench_options(bool monitor) {
  loadgen::EngineOptions options;
  options.workload.seed = 7;
  options.workload.agents = 32;
  options.workload.requests = 20000;
  options.workload.exploit_ratio = {5, 100};
  options.monitor = monitor;
  return options;
}

// DFSM_THREADS pins the parallel arm (the CI bench-regression job sets 4
// so runs compare like-for-like); unset falls back to the hardware.
const int kParallelThreads = static_cast<int>(
    std::max<std::size_t>(2, runtime::ThreadPool::default_threads()));

void set_pool_threads(std::int64_t threads) {
  runtime::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
}

void restore_pool() {
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
}

// --- Monitor-overhead pair ---------------------------------------------
//
// Both arms run the identical workload pinned to ONE pool worker, so the
// ratio isolates the per-request monitor cost from pool scaling.
// check_bench_regression.py pairs the two names by their suffixes and
// holds the Unmonitored/Monitored speedup to an absolute floor of 0.5 —
// i.e. the monitor may at most halve throughput (<= 2x overhead) — in
// addition to the usual no-regression-vs-baseline check.

void BM_LoadgenUnmonitored(benchmark::State& state) {
  set_pool_threads(1);
  const auto options = bench_options(/*monitor=*/false);
  for (auto _ : state) {
    auto report = loadgen::run_load(options);
    benchmark::DoNotOptimize(report.total.requests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.workload.requests));
  restore_pool();
}
BENCHMARK(BM_LoadgenUnmonitored)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LoadgenMonitored(benchmark::State& state) {
  set_pool_threads(1);
  const auto options = bench_options(/*monitor=*/true);
  for (auto _ : state) {
    auto report = loadgen::run_load(options);
    benchmark::DoNotOptimize(report.total.false_negatives);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.workload.requests));
  restore_pool();
}
BENCHMARK(BM_LoadgenMonitored)->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Engine scaling (serial pool vs hardware) --------------------------
//
// Arg(1) pins the pool to serial fallback, Arg(kParallelThreads) uses
// the hardware; tests/loadgen/ asserts the reports are byte-identical,
// so this pair measures pure agent-partition speedup.

void BM_LoadgenEngine(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto options = bench_options(/*monitor=*/true);
  for (auto _ : state) {
    auto report = loadgen::run_load(options);
    benchmark::DoNotOptimize(report.total.detected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.workload.requests));
  restore_pool();
}
BENCHMARK(BM_LoadgenEngine)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void print_artifacts() {
  const auto report = loadgen::run_load(bench_options(/*monitor=*/true));
  bench::print_artifact(
      "dfsm_loadgen sample report (20k requests, 5% exploits, seed 7)",
      loadgen::render_text(report));
}

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
