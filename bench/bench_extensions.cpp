// bench_extensions — the layers built on top of the paper's model (its §7
// future work and the §2 related-work baselines): the automatic analysis
// tool, METF quantification, trace anomaly detection, and attack-graph
// generation. Prints the artifacts, then benchmarks each engine.
#include "bench_common.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/attack_graph.h"
#include "analysis/autotool.h"
#include "analysis/chain_analyzer.h"
#include "analysis/defense_matrix.h"
#include "analysis/discovery.h"
#include "analysis/hidden_path.h"
#include "analysis/metf.h"
#include "analysis/predicates.h"
#include "apps/models.h"
#include "apps/nullhttpd.h"
#include "apps/synthetic.h"
#include "apps/xterm.h"
#include "core/chain.h"
#include "bugtraq/colsnap.h"
#include "bugtraq/corpus.h"
#include "bugtraq/csv_shards.h"
#include "bugtraq/database.h"
#include "core/table.h"
#include "fssim/explore.h"
#include "runtime/thread_pool.h"
#include "staticlint/linter.h"
#include "staticlint/memo.h"
#include "staticlint/registry.h"

namespace {

using namespace dfsm;
using namespace dfsm::analysis;

std::string metf_table() {
  core::TextTable t{{"Model", "Barriers", "Hardening", "P(attempt)",
                     "E[attempts]", "E[actions] (METF)"}};
  t.title("METF over the FSM models (Ortalo-style quantification)");
  const auto models = apps::standard_models();
  apps::XtermLogger xterm;
  const double race_fraction = xterm.run_race(1).report.violation_fraction();
  for (const auto& m : models) {
    for (const double pass : {1.0, 0.5, 0.1}) {
      std::vector<std::pair<std::string, double>> overrides;
      if (m.name().find("xterm") != std::string::npos) {
        overrides = {{"pFSM1", 1.0}, {"pFSM2", race_fraction * pass}};
      }
      const auto r = metf(barriers_from_model(m, pass, overrides));
      char p_buf[32], att[32], act[32];
      std::snprintf(p_buf, sizeof p_buf, "%.4f", r.attempt_success_probability);
      if (r.secure) {
        std::snprintf(att, sizeof att, "inf");
        std::snprintf(act, sizeof act, "inf (secure)");
      } else {
        std::snprintf(att, sizeof att, "%.1f", r.expected_attempts);
        std::snprintf(act, sizeof act, "%.1f", r.expected_actions);
      }
      char hard[48];
      std::snprintf(hard, sizeof hard, "pass prob %.1f/pFSM", pass);
      t.add_row({m.name().substr(0, 40), std::to_string(m.pfsm_count()), hard,
                 p_buf, att, act});
    }
  }
  return t.to_string();
}

std::string anomaly_table() {
  AnomalyDetector d{2};
  for (const std::size_t n : {0u, 100u, 1024u, 2048u, 5000u}) {
    apps::NullHttpd app;
    d.train(app.handle_post(static_cast<std::int32_t>(n), std::string(n, 'b')).events);
  }
  core::TextTable t{{"Run", "Events", "Anomaly score", "Verdict"}};
  t.title("Trace anomaly detection (Michael & Ghosh baseline) on NULL HTTPD");
  {
    apps::NullHttpd app;
    const auto r = app.handle_post(3000, std::string(3000, 'x'));
    char s[16];
    std::snprintf(s, sizeof s, "%.3f", d.score(r.events));
    t.add_row({"benign POST (3000 bytes)", std::to_string(r.events.size()), s,
               d.anomalous(r.events) ? "ANOMALY" : "normal"});
  }
  {
    const auto info = apps::NullHttpd::scout(-800);
    apps::NullHttpd app;
    const auto body = apps::NullHttpd::build_overflow_body(info);
    const auto r = app.handle_post(-800, std::string(body.begin(), body.end()));
    char s[16];
    std::snprintf(s, sizeof s, "%.3f", d.score(r.events));
    t.add_row({"#5774 exploit", std::to_string(r.events.size()), s,
               d.anomalous(r.events) ? "ANOMALY" : "normal"});
  }
  return t.to_string();
}

std::string attack_graph_summary() {
  const std::vector<Host> hosts = {
      {"attacker", {}, {"web"}},
      {"web", {"ghttpd", "sendmail"}, {"nfs"}},
      {"nfs", {"rpc.statd"}, {}},
  };
  const auto g = AttackGraph::build(hosts, standard_rules(),
                                    {Fact{"attacker", Privilege::kRoot}});
  std::string out = g.to_text();
  out += "\nShortest path to (nfs, root):\n";
  for (const auto& e : g.path_to(Fact{"nfs", Privilege::kRoot})) {
    out += "  " + e.from.host + " -> " + e.to.host + " via " + e.rule + "\n";
  }
  return out;
}

void print_artifacts() {
  bench::print_artifact("Automatic analysis tool (paper §7 future work)",
                        AutoTool::analyze(sendmail_spec()).to_text());
  bench::print_artifact("METF quantification", metf_table());
  bench::print_artifact("Trace anomaly detection", anomaly_table());
  bench::print_artifact("Attack-graph generation (Sheyner baseline)",
                        attack_graph_summary());
}

void BM_AutoToolAnalyze(benchmark::State& state) {
  const auto spec = sendmail_spec();
  for (auto _ : state) {
    auto report = AutoTool::analyze(spec);
    benchmark::DoNotOptimize(report.vulnerable());
  }
}
BENCHMARK(BM_AutoToolAnalyze)->Unit(benchmark::kMicrosecond);

void BM_Metf(benchmark::State& state) {
  const auto barriers =
      barriers_from_model(apps::standard_models()[1], 0.5);
  for (auto _ : state) {
    auto r = metf(barriers);
    benchmark::DoNotOptimize(r.expected_actions);
  }
}
BENCHMARK(BM_Metf);

void BM_AnomalyTrain(benchmark::State& state) {
  apps::NullHttpd app;
  const auto trace = app.handle_post(2048, std::string(2048, 'b')).events;
  for (auto _ : state) {
    AnomalyDetector d{2};
    d.train(trace);
    benchmark::DoNotOptimize(d.known_windows());
  }
}
BENCHMARK(BM_AnomalyTrain);

void BM_AnomalyScore(benchmark::State& state) {
  AnomalyDetector d{2};
  apps::NullHttpd trainer;
  d.train(trainer.handle_post(2048, std::string(2048, 'b')).events);
  apps::NullHttpd probe_app;
  const auto probe = probe_app.handle_post(1024, std::string(1024, 'x')).events;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.score(probe));
  }
}
BENCHMARK(BM_AnomalyScore);

// --- Serial-vs-parallel pairs over the runtime (src/runtime/) ----------
//
// Each benchmark takes the worker count as its argument: Arg(1) pins the
// global pool to serial fallback, Arg(kParallelThreads) uses the
// hardware. The workloads are the three wired hot paths; equivalence
// tests (tests/runtime/) assert the outputs are byte-identical, so these
// measure pure speedup. UseRealTime: the work happens on pool workers,
// so wall clock is the honest metric.

// DFSM_THREADS pins the parallel arm (the CI bench-regression job sets 4
// so runs compare like-for-like); unset falls back to the hardware.
const int kParallelThreads = static_cast<int>(
    std::max<std::size_t>(2, runtime::ThreadPool::default_threads()));

void set_pool_threads(std::int64_t threads) {
  runtime::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
}

void restore_pool() {
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());
}

/// A probe-hunt campaign an order of magnitude heavier than the paper's
/// specs: `activities` boundary-checked activities, each hunted over a
/// dense integer domain of `domain` objects.
VulnerabilitySpec bench_campaign_spec(std::size_t activities,
                                      std::int64_t domain) {
  VulnerabilitySpec spec;
  spec.name = "bench probe-hunt campaign";
  spec.bugtraq_ids = {99992};  // synthetic report id for the bench spec
  spec.vulnerability_class = "Integer Overflow";
  spec.software = "bench";
  spec.consequence = "n/a";
  OperationSpec op;
  op.name = "sweep every bounds-checked input";
  op.object_description = "input integers";
  op.gate_condition = "n/a";
  for (std::size_t i = 0; i < activities; ++i) {
    const std::string pname = "pFSM" + std::to_string(i + 1);
    op.activities.push_back(ActivitySpec{
        pname, core::PfsmType::kContentAttributeCheck, "bounds-check x",
        predicates::int_in_range("x", 0, 100), ActivitySpec::Impl::kCustom,
        predicates::int_at_most("x", 100), "use x"});
    spec.probe_domains[pname] =
        int_range_domain("x", "x", -domain / 2, domain / 2);
  }
  spec.operations = {std::move(op)};
  return spec;
}

void BM_AutoToolProbeHunt(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto spec = bench_campaign_spec(/*activities=*/16, /*domain=*/1 << 13);
  for (auto _ : state) {
    auto report = AutoTool::analyze(spec);
    benchmark::DoNotOptimize(report.vulnerable());
  }
  restore_pool();
}
BENCHMARK(BM_AutoToolProbeHunt)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CorpusSweep(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto db = bugtraq::synthetic_corpus();
  for (auto _ : state) {
    // The templated hot path: a content scan over all 5925 records.
    auto n = db.count([](const bugtraq::VulnRecord& r) {
      return r.remote && r.description.find("overflow") != std::string::npos;
    });
    benchmark::DoNotOptimize(n);
  }
  restore_pool();
}
BENCHMARK(BM_CorpusSweep)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- Million-record corpus scaling (ROADMAP "corpus scaling") ----------
//
// Serial-vs-parallel ingest/sweep pairs at 10^4 / 10^5 / 10^6 records:
// Args are {workers, corpus size}. Corpora and their CSV serializations
// are generated once per size and cached for the whole binary run —
// the timed region is only the sharded reader (CSV parse + bulk
// add_batch) or the columnar sweep.

const bugtraq::Database& scaled_corpus(std::size_t n) {
  static std::map<std::size_t, bugtraq::Database> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, bugtraq::synthetic_corpus_n(n, /*seed=*/42)).first;
  }
  return it->second;
}

const std::string& scaled_corpus_csv(std::size_t n) {
  static std::map<std::size_t, std::string> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, scaled_corpus(n).to_csv()).first;
  }
  return it->second;
}

void BM_CorpusIngestScaled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::string& csv = scaled_corpus_csv(n);
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    auto db = bugtraq::Database::from_csv(csv);
    benchmark::DoNotOptimize(db.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(csv.size()));
}
BENCHMARK(BM_CorpusIngestScaled)
    ->Args({1, 10'000})
    ->Args({kParallelThreads, 10'000})
    ->Args({1, 100'000})
    ->Args({kParallelThreads, 100'000})
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CorpusSweepScaled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto& db = scaled_corpus(n);
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    auto hits = db.count([](const bugtraq::VulnRecord& r) {
      return r.remote && r.title.find("overflow") != std::string::npos;
    });
    benchmark::DoNotOptimize(hits);
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CorpusSweepScaled)
    ->Args({1, 10'000})
    ->Args({kParallelThreads, 10'000})
    ->Args({1, 100'000})
    ->Args({kParallelThreads, 100'000})
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Corpus service: incremental histograms + snapshot reload ----------
//
// Two suffix-paired gates (tools/check_bench_regression.py): the
// incremental fold must beat the full histogram rebuild by >= 10x at
// 10^6 records, and binary snapshot reload must beat the sharded-CSV
// parse by >= 5x. Both arms of a pair run at matching {workers, corpus
// size} arguments so the gate compares like-for-like medians.

void BM_CorpusHistogramRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto snap = scaled_corpus(n).snapshot();
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    // What every batch publish cost before the incremental fold: a full
    // columnar sweep over the whole epoch.
    auto hist = bugtraq::rebuild_histograms(*snap);
    benchmark::DoNotOptimize(hist.by_year.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CorpusHistogramRebuild)
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_CorpusHistogramIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kBatch = 100;
  // One pre-generated unique-id batch per iteration and arena headroom
  // reserved up front, so the timed region is exactly one add_batch
  // publish (append + delta fold + epoch swap) — never an arena growth
  // and never a rebuild. Iterations is pinned to keep the pre-generated
  // batch pool (and the appended tail) a bounded size.
  bugtraq::Database db{scaled_corpus(n)};
  const auto iters = static_cast<std::size_t>(state.max_iterations);
  db.reserve(n + iters * kBatch);
  std::vector<std::vector<bugtraq::VulnRecord>> batches(iters);
  int next_id = 10'000'000;  // synthetic corpus ids stop near 1.1M
  for (auto& batch : batches) {
    batch.reserve(kBatch);
    for (std::size_t k = 0; k < kBatch; ++k) {
      bugtraq::VulnRecord r;
      r.id = next_id++;
      r.software = "BenchSoft";
      r.title = "incremental ingest #" + std::to_string(r.id);
      r.year = 1999 + (r.id & 3);
      r.remote = (r.id & 1) != 0;
      r.description = "bench batch record";
      batch.push_back(std::move(r));
    }
  }
  set_pool_threads(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    db.add_batch(std::move(batches[i++]));
    benchmark::DoNotOptimize(db.snapshot()->histograms().by_year.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CorpusHistogramIncremental)
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->Iterations(200)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Pre-written shard files for the reload pair, generated once per
// binary run into a scratch directory: the timed region is only the
// read path (open + parse/verify + bulk ingest), identical for both
// formats.
const std::vector<std::string>& reload_shards(std::size_t n, bool colsnap) {
  static std::map<std::pair<std::size_t, bool>, std::vector<std::string>>
      cache;
  const auto key = std::make_pair(n, colsnap);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("dfsm-bench-reload-" + std::to_string(n));
    std::filesystem::create_directories(dir);
    const std::string base = (dir / "corpus").string();
    const auto& db = scaled_corpus(n);
    it = cache
             .emplace(key, colsnap ? bugtraq::write_colsnap_shards(db, base, 8)
                                   : bugtraq::write_csv_shards(db, base, 8))
             .first;
  }
  return it->second;
}

void BM_CsvReload(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto& paths = reload_shards(n, /*colsnap=*/false);
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    auto db = bugtraq::read_csv_shards(paths);
    benchmark::DoNotOptimize(db.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CsvReload)
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotReload(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto& paths = reload_shards(n, /*colsnap=*/true);
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    auto db = bugtraq::read_colsnap_shards(paths);
    benchmark::DoNotOptimize(db.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SnapshotReload)
    ->Args({1, 1'000'000})
    ->Args({kParallelThreads, 1'000'000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Chain evaluation engine (DESIGN.md §10) ---------------------------
//
// Serial-vs-parallel pairs over the memoized Lemma sweep (k = 12/16/20
// on the synthetic wide-chain fixture), the direct sweep, batch chain
// evaluation, and the model scan — plus the cross-engine pair the
// regression gate holds: BM_LemmaSweepEngineK16's "serial" arm is the
// DIRECT 2^k enumeration and its "parallel" arm is the default MEMOIZED
// engine, so its reported speedup is this engine's end-to-end gain.

const apps::CaseStudy& sweep_study(std::size_t operations,
                                   std::size_t checks_per_operation) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<apps::CaseStudy>>
      cache;
  const auto key = std::make_pair(operations, checks_per_operation);
  auto it = cache.find(key);
  if (it == cache.end()) {
    apps::SyntheticStudyConfig config;
    config.operations = operations;
    config.checks_per_operation = checks_per_operation;
    it = cache.emplace(key, apps::make_synthetic_wide_study(config)).first;
  }
  return *it->second;
}

void BM_LemmaSweepMemoized(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto& study = sweep_study(k / 4, 4);
  for (auto _ : state) {
    auto report = sweep(study);
    benchmark::DoNotOptimize(report.lemma2_holds);
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << k));  // masks composed
}
BENCHMARK(BM_LemmaSweepMemoized)
    ->Args({1, 12})
    ->Args({kParallelThreads, 12})
    ->Args({1, 16})
    ->Args({kParallelThreads, 16})
    ->Args({1, 20})
    ->Args({kParallelThreads, 20})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LemmaSweepDirect(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto& study = sweep_study(k / 4, 4);
  SweepOptions direct;
  direct.mode = SweepMode::kDirect;
  for (auto _ : state) {
    auto report = sweep(study, direct);
    benchmark::DoNotOptimize(report.lemma2_holds);
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * (std::int64_t{1} << k));
}
BENCHMARK(BM_LemmaSweepDirect)
    ->Args({1, 16})
    ->Args({kParallelThreads, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LemmaSweepEngineK16(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto& study = sweep_study(4, 4);
  SweepOptions opts;
  opts.mode = state.range(0) == 1 ? SweepMode::kDirect : SweepMode::kMemoized;
  for (auto _ : state) {
    auto report = sweep(study, opts);
    benchmark::DoNotOptimize(report.lemma2_holds);
  }
  restore_pool();
}
BENCHMARK(BM_LemmaSweepEngineK16)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

core::ExploitChain batch_bench_chain(std::size_t operations) {
  core::ExploitChain chain{"bench batch chain"};
  for (std::size_t i = 0; i < operations; ++i) {
    core::Operation op{"op" + std::to_string(i), "request field"};
    op.add(core::Pfsm::unchecked(
        "p" + std::to_string(i), core::PfsmType::kContentAttributeCheck,
        "bounds-check the field",
        core::Predicate{"ok", [](const core::Object& o) {
                          return o.attr_bool("ok").value_or(false);
                        }}));
    chain.add(std::move(op),
              core::PropagationGate{"gate " + std::to_string(i)});
  }
  return chain;
}

void BM_ChainEvaluateBatch(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto chain = batch_bench_chain(/*operations=*/8);
  constexpr std::size_t kBatch = 4096;
  std::vector<std::vector<std::vector<core::Object>>> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    std::vector<std::vector<core::Object>> inputs;
    inputs.reserve(chain.size());
    for (std::size_t op = 0; op < chain.size(); ++op) {
      inputs.push_back({core::Object{"o"}.with("ok", (i + op) % 3 == 0)});
    }
    batch.push_back(std::move(inputs));
  }
  for (auto _ : state) {
    auto results = chain.evaluate_batch(batch);
    benchmark::DoNotOptimize(results.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ChainEvaluateBatch)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_HiddenPathScanModel(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto model = sweep_study(5, 4).model();  // 20 pFSMs
  const auto domain = int_range_domain("x", "x", -4096, 4096);
  std::map<std::string, std::vector<core::Object>> domains;
  for (const auto& op : model.chain().operations()) {
    for (const auto& pfsm : op.pfsms()) domains[pfsm.name()] = domain;
  }
  for (auto _ : state) {
    auto reports = scan_model(model, domains);
    benchmark::DoNotOptimize(reports.size());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(domains.size()));
}
BENCHMARK(BM_HiddenPathScanModel)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryCampaign(benchmark::State& state) {
  set_pool_threads(state.range(0));
  for (auto _ : state) {
    auto report = probe_nullhttpd_v051();
    benchmark::DoNotOptimize(report.found_new_vulnerability);
  }
  restore_pool();
}
BENCHMARK(BM_DiscoveryCampaign)
    ->Arg(1)
    ->Arg(kParallelThreads)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_AttackGraphBuild(benchmark::State& state) {
  // A larger synthetic enterprise: a chain of n subnets.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Host> hosts;
  hosts.push_back({"attacker", {}, {"host0"}});
  for (std::size_t i = 0; i < n; ++i) {
    Host h;
    h.name = "host" + std::to_string(i);
    h.services = {"ghttpd", "sendmail"};
    if (i + 1 < n) h.reaches = {"host" + std::to_string(i + 1)};
    hosts.push_back(std::move(h));
  }
  const std::vector<Fact> start = {Fact{"attacker", Privilege::kRoot}};
  for (auto _ : state) {
    auto g = AttackGraph::build(hosts, standard_rules(), start);
    benchmark::DoNotOptimize(g.facts().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AttackGraphBuild)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// --- patch-candidate ranking: k candidates for the price of one sweep --
//
// A cross-name pair the regression gate holds (suffix convention:
// "...FullSweeps" is the reference arm, "...Incremental" the shared-
// store arm of the same stem). Ranking every operation of the k = 16
// synthetic study: the reference runs one full sweep per candidate plus
// the unpatched base (17 sweeps, each materialising 2^16 rows); the
// incremental path pays ONE cache fill and answers every candidate by
// combinatorial composition. Both arms pin the pool to one worker — the
// gated speedup is algorithmic, not parallelism.

void BM_DefenseRankFullSweeps(benchmark::State& state) {
  set_pool_threads(1);
  const auto& study = sweep_study(16, 1);  // k = 16, 16 candidates
  for (auto _ : state) {
    auto ranking = rank_patch_candidates(study, RankStrategy::kFullSweeps);
    benchmark::DoNotOptimize(ranking.candidates.data());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * 17);  // sweeps per ranking
}
BENCHMARK(BM_DefenseRankFullSweeps)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DefenseRankIncremental(benchmark::State& state) {
  set_pool_threads(1);
  const auto& study = sweep_study(16, 1);
  for (auto _ : state) {
    auto ranking = rank_patch_candidates(study, RankStrategy::kIncremental);
    benchmark::DoNotOptimize(ranking.candidates.data());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * 17);
}
BENCHMARK(BM_DefenseRankIncremental)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- incremental lint: re-lint for the price of a fingerprint --------
//
// Second gate-held pair (suffix convention: "...Curated" is the
// from-scratch arm, "...Memoized" the warmed-store arm of the same
// stem). Both arms lint the full curated registry; the memoized arm
// goes through a pre-warmed LintMemoStore, so every (model, rule) cell
// is a fingerprint-keyed cache hit and zero rules execute. Single
// worker in both arms — the gated speedup is the memo, not parallelism.

void BM_LintCurated(benchmark::State& state) {
  set_pool_threads(1);
  const auto models = staticlint::curated_lint_models();
  for (auto _ : state) {
    auto run = staticlint::lint(models);
    benchmark::DoNotOptimize(run.findings.data());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(models.size()));
}
BENCHMARK(BM_LintCurated)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_LintMemoized(benchmark::State& state) {
  set_pool_threads(1);
  const auto models = staticlint::curated_lint_models();
  staticlint::LintMemoStore memo;
  staticlint::LintOptions options;
  options.memo = &memo;
  benchmark::DoNotOptimize(staticlint::lint(models, options));  // warm
  for (auto _ : state) {
    auto run = staticlint::lint(models, options);
    benchmark::DoNotOptimize(run.findings.data());
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(models.size()));
}
BENCHMARK(BM_LintMemoized)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// Interleaving exploration (fssim/explore.h): one synthetic 9x6 scenario
// (C(15,6) = 5005 schedules), explored exhaustively vs with pinned +
// strided sampling at budget 256. Gate pair (check_bench_regression.py
// SUFFIX_PAIRS): ExploreExhaustive is the reference arm, ExploreSampled
// the engine arm — sampling must keep its edge over the full walk.

fssim::RaceScenario bench_race_scenario() {
  fssim::RaceScenario s;
  s.name = "bench-9x6";
  s.world = [] {
    fssim::FileSystem fs;
    const auto root = fssim::Cred::root();
    fs.mkdir(root, "/var");
    fs.create(root, "/var/log", fssim::Mode::world_writable());
    return fs;
  };
  const auto root = fssim::Cred::root();
  const auto append = [root](const char* tag) {
    return [root, tag](fssim::FileSystem& fs, fssim::RaceContext&) {
      auto h = fs.open(root, "/var/log",
                       fssim::OpenFlags{.write = true, .append = true});
      if (h.ok()) fs.write(h.value, tag);
    };
  };
  for (int i = 0; i < 9; ++i) {
    s.victim.push_back(
        fssim::CtxStep{"victim " + std::to_string(i), append("v")});
  }
  for (int i = 0; i < 6; ++i) {
    s.attacker.push_back(
        fssim::CtxStep{"attacker " + std::to_string(i), append("a")});
  }
  // Violated iff the attacker ran entirely first — the lex-last schedule.
  s.violated = [](const fssim::FileSystem& fs, const fssim::RaceContext&) {
    auto log = fs.read("/var/log");
    return log.ok() && log.value.rfind("aaaaaa", 0) == 0;
  };
  return s;
}

void BM_ExploreExhaustive(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto scenario = bench_race_scenario();
  fssim::ExploreOptions opts;
  opts.budget = 8192;  // C(15,6) = 5005 fits: exhaustive
  for (auto _ : state) {
    auto report = fssim::explore_scenario(scenario, opts);
    benchmark::DoNotOptimize(report.violating);
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * 5005);
}
BENCHMARK(BM_ExploreExhaustive)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ExploreSampled(benchmark::State& state) {
  set_pool_threads(state.range(0));
  const auto scenario = bench_race_scenario();
  fssim::ExploreOptions opts;
  opts.budget = 256;  // pinned first/last + strided interior ranks
  opts.seed = 11;
  for (auto _ : state) {
    auto report = fssim::explore_scenario(scenario, opts);
    benchmark::DoNotOptimize(report.violating);
  }
  restore_pool();
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ExploreSampled)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
