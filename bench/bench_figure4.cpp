// bench_figure4 — regenerates Figure 4 (the NULL HTTPD heap overflow
// model), the #5774/#6255 exploit matrix, and the discovery campaign
// that rediscovers #6255 (the paper's headline anecdote); also ablates
// the heap-layout sensitivity called out in DESIGN.md §6. Then benchmarks
// the server, the exploit, and the discovery probes.
#include "bench_common.h"

#include "analysis/discovery.h"
#include "analysis/report.h"
#include "apps/nullhttpd.h"
#include "core/render.h"
#include "core/table.h"

namespace {

using namespace dfsm;

std::string run_matrix() {
  core::TextTable t{{"Exploit", "pFSM1", "pFSM2", "pFSM3", "pFSM4", "Outcome"}};
  t.title("NULL HTTPD: both exploits under each single-check configuration");
  for (const bool use_6255 : {false, true}) {
    for (int check = -1; check < 4; ++check) {
      apps::NullHttpdChecks checks;
      checks.content_len_nonneg = (check == 0);
      checks.bounded_read_loop = (check == 1);
      checks.heap_safe_unlink = (check == 2);
      checks.got_free_unchanged = (check == 3);
      const std::int32_t cl = use_6255 ? 0 : -800;
      apps::NullHttpd app{checks};
      std::string outcome;
      try {
        const auto info = apps::NullHttpd::scout(cl, checks);
        const auto body = apps::NullHttpd::build_overflow_body(info);
        const auto r = app.handle_post(cl, std::string(body.begin(), body.end()));
        outcome = r.mcode_executed ? "EXPLOITED"
                                   : (r.rejected ? "foiled (" + r.rejected_by + ")"
                                                 : "ineffective");
      } catch (const std::exception& e) {
        outcome = std::string("error: ") + e.what();
      }
      auto onoff = [check](int i) { return check == i ? "on" : "off"; };
      t.add_row({use_6255 ? "#6255 (cl=0, long body)" : "#5774 (cl=-800)",
                 onoff(0), onoff(1), onoff(2), onoff(3), outcome});
    }
  }
  return t.to_string();
}

std::string layout_ablation() {
  // DESIGN.md §6: the unlink write-what-where needs a free chunk adjacent
  // to PostData. Sweep contentLen (hence buffer size) to show the exploit
  // tracks the scouted layout rather than a fixed offset.
  core::TextTable t{{"contentLen", "buffer", "B chunk", "Outcome"}};
  t.title("Heap-layout sensitivity: the exploit re-derived per layout");
  for (const std::int32_t cl : {-1000, -800, -512, -128, 0, 512}) {
    try {
      const auto info = apps::NullHttpd::scout(cl);
      apps::NullHttpd app;
      const auto body = apps::NullHttpd::build_overflow_body(info);
      const auto r = app.handle_post(cl, std::string(body.begin(), body.end()));
      char b[32];
      std::snprintf(b, sizeof b, "0x%llx",
                    static_cast<unsigned long long>(info.following_chunk));
      t.add_row({std::to_string(cl), std::to_string(info.postdata_usable), b,
                 r.mcode_executed ? "EXPLOITED" : (r.crashed ? "crash" : "no")});
    } catch (const std::exception&) {
      t.add_row({std::to_string(cl), "-", "-", "calloc fails"});
    }
  }
  return t.to_string();
}

void print_artifacts() {
  bench::print_artifact("Figure 4: NULL HTTPD Heap Overflow model",
                        core::to_ascii(apps::NullHttpd::figure4_model()));
  bench::print_artifact("Exploit/check matrix", run_matrix());
  bench::print_artifact(
      "Discovery campaign on v0.5.1 (rediscovers Bugtraq #6255)",
      analysis::render_discovery(analysis::probe_nullhttpd_v051()));
  bench::print_artifact(
      "Control: the '&&'-fixed server under the same campaign",
      analysis::render_discovery(analysis::probe_nullhttpd_fixed()));
  bench::print_artifact("Heap-layout ablation", layout_ablation());
}

void BM_BenignPost(benchmark::State& state) {
  const std::string body(static_cast<std::size_t>(state.range(0)), 'b');
  for (auto _ : state) {
    apps::NullHttpd app;
    auto r = app.handle_post(static_cast<std::int32_t>(body.size()), body);
    benchmark::DoNotOptimize(r.served);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_BenignPost)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);

void BM_Exploit5774EndToEnd(benchmark::State& state) {
  const auto info = apps::NullHttpd::scout(-800);
  const auto body_bytes = apps::NullHttpd::build_overflow_body(info);
  const std::string body(body_bytes.begin(), body_bytes.end());
  for (auto _ : state) {
    apps::NullHttpd app;
    auto r = app.handle_post(-800, body);
    benchmark::DoNotOptimize(r.mcode_executed);
  }
}
BENCHMARK(BM_Exploit5774EndToEnd)->Unit(benchmark::kMicrosecond);

void BM_ScoutLayout(benchmark::State& state) {
  for (auto _ : state) {
    auto info = apps::NullHttpd::scout(-800);
    benchmark::DoNotOptimize(info.following_chunk);
  }
}
BENCHMARK(BM_ScoutLayout)->Unit(benchmark::kMicrosecond);

void BM_DiscoveryCampaign(benchmark::State& state) {
  for (auto _ : state) {
    auto report = analysis::probe_nullhttpd_v051();
    benchmark::DoNotOptimize(report.found_new_vulnerability);
  }
}
BENCHMARK(BM_DiscoveryCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
