// bench_common.h — shared scaffolding for the per-figure benchmark
// binaries: every binary first prints the paper artifact it regenerates
// (table rows / figure series), then runs its google-benchmark
// microbenchmarks on the engines involved.
#ifndef DFSM_BENCH_COMMON_H
#define DFSM_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace dfsm::bench {

inline void print_artifact(const std::string& header, const std::string& body) {
  std::printf("\n############################################################\n");
  std::printf("## %s\n", header.c_str());
  std::printf("############################################################\n\n");
  std::printf("%s\n", body.c_str());
}

}  // namespace dfsm::bench

/// Standard main: print the artifact(s), then run the microbenchmarks.
#define DFSM_BENCH_MAIN(print_artifacts_fn)                   \
  int main(int argc, char** argv) {                           \
    print_artifacts_fn();                                     \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    return 0;                                                 \
  }

#endif  // DFSM_BENCH_COMMON_H
