// bench_figure8 — regenerates Figure 8 (the three generic pFSM types and
// their census across all modeled vulnerabilities) together with the §6
// observations, then benchmarks model construction and census queries.
#include "bench_common.h"

#include "analysis/report.h"
#include "apps/models.h"
#include "core/render.h"
#include "core/table.h"

namespace {

using namespace dfsm;

void print_artifacts() {
  const auto models = apps::standard_models();
  bench::print_artifact("Figure 8 / §6: generic pFSM type census",
                        analysis::render_figure8(models));

  // Per-model type breakdown (the data behind the census).
  core::TextTable t{{"Model", "Object Type", "Content/Attribute",
                     "Reference Consistency"}};
  t.title("Per-model pFSM type counts");
  for (const auto& m : models) {
    const auto c = m.type_census();
    t.add_row({m.name(), std::to_string(c[0]), std::to_string(c[1]),
               std::to_string(c[2])});
  }
  bench::print_artifact("Census detail", t.to_string());

  // §6's qualitative claims, checked and narrated.
  const auto census = core::census(models);
  std::string narration;
  narration += "Content/Attribute checks dominate: " +
               std::to_string(census.of(core::PfsmType::kContentAttributeCheck)) +
               " of " + std::to_string(census.total) + " pFSMs.\n";
  narration += "Reference-consistency gaps are the runner-up: " +
               std::to_string(
                   census.of(core::PfsmType::kReferenceConsistencyCheck)) +
               " pFSMs (GOT entries, free-chunk links, return addresses, "
               "file-name bindings).\n";
  narration += "Object-type checks: " +
               std::to_string(census.of(core::PfsmType::kObjectTypeCheck)) +
               " (Sendmail's long-vs-int, rwall's terminal-vs-file).\n";
  bench::print_artifact("§6 observations", narration);
}

void BM_BuildAllModels(benchmark::State& state) {
  for (auto _ : state) {
    auto models = apps::standard_models();
    benchmark::DoNotOptimize(models.size());
  }
}
BENCHMARK(BM_BuildAllModels)->Unit(benchmark::kMicrosecond);

void BM_TypeCensus(benchmark::State& state) {
  const auto models = apps::standard_models();
  for (auto _ : state) {
    auto c = core::census(models);
    benchmark::DoNotOptimize(c.total);
  }
}
BENCHMARK(BM_TypeCensus);

void BM_ModelSummaries(benchmark::State& state) {
  const auto models = apps::standard_models();
  for (auto _ : state) {
    for (const auto& m : models) {
      auto s = m.summaries();
      benchmark::DoNotOptimize(s.size());
    }
  }
}
BENCHMARK(BM_ModelSummaries)->Unit(benchmark::kMicrosecond);

void BM_RenderDot(benchmark::State& state) {
  const auto models = apps::standard_models();
  for (auto _ : state) {
    for (const auto& m : models) {
      benchmark::DoNotOptimize(core::to_dot(m).size());
    }
  }
}
BENCHMARK(BM_RenderDot)->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
