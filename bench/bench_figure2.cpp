// bench_figure2 — regenerates Figure 2 (the primitive FSM definition and
// its exhaustive outcome table), then benchmarks the pFSM evaluation
// engine itself: single-machine walks, operation chains, and hidden-path
// domain scans.
#include "bench_common.h"

#include "analysis/hidden_path.h"
#include "analysis/report.h"
#include "core/pfsm.h"
#include "core/render.h"

namespace {

using namespace dfsm;
using core::Object;
using core::Pfsm;
using core::PfsmType;
using core::Predicate;

Pfsm range_pfsm() {
  return Pfsm{"pFSM2", PfsmType::kContentAttributeCheck, "write tTvect[x]",
              Predicate{"0 <= x <= 100",
                        [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v >= 0 && *v <= 100;
                        }},
              Predicate{"x <= 100", [](const Object& o) {
                          const auto v = o.attr_int("x");
                          return v && *v <= 100;
                        }}};
}

void print_artifacts() {
  bench::print_artifact("Figure 2: the primitive FSM (pFSM)",
                        analysis::render_figure2());
  bench::print_artifact("A concrete pFSM instance (Sendmail pFSM2)",
                        core::to_ascii(range_pfsm()));
}

void BM_PfsmEvaluate(benchmark::State& state) {
  const auto p = range_pfsm();
  const auto o = Object{"x"}.with("x", std::int64_t{-8448});
  for (auto _ : state) {
    auto out = p.evaluate(o);
    benchmark::DoNotOptimize(out.result);
  }
}
BENCHMARK(BM_PfsmEvaluate);

void BM_PfsmHiddenPathQuery(benchmark::State& state) {
  const auto p = range_pfsm();
  const auto o = Object{"x"}.with("x", std::int64_t{-8448});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.hidden_path_for(o));
  }
}
BENCHMARK(BM_PfsmHiddenPathQuery);

void BM_OperationFlow(benchmark::State& state) {
  core::Operation op{"op", "x"};
  for (int i = 0; i < 4; ++i) {
    op.add(Pfsm::unchecked("p" + std::to_string(i),
                           PfsmType::kContentAttributeCheck, "a",
                           Predicate::accept_all()));
  }
  const auto o = Object{"x"}.with("x", std::int64_t{1});
  for (auto _ : state) {
    auto r = op.flow(o);
    benchmark::DoNotOptimize(r.outcomes.size());
  }
}
BENCHMARK(BM_OperationFlow);

void BM_HiddenPathScan(benchmark::State& state) {
  const auto p = range_pfsm();
  const auto domain = analysis::int_range_domain(
      "x", "x", -state.range(0), state.range(0));
  for (auto _ : state) {
    auto report = analysis::detect_hidden_path(p, domain);
    benchmark::DoNotOptimize(report.witnesses.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(domain.size()));
}
BENCHMARK(BM_HiddenPathScan)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DFSM_BENCH_MAIN(print_artifacts)
